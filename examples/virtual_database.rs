//! The R-GMA "virtual database" in action: the Grid looks like one big
//! relational database. Generators `INSERT` rows; clients run continuous,
//! latest, and history `SELECT`s — the three query flavours the paper
//! credits R-GMA for (§II.A, §V).
//!
//! ```sh
//! cargo run --release --example virtual_database
//! ```

use gridmon::rgma::{
    ConsumerControl, ConsumerServlet, ProducerControl, ProducerHandle, ProducerServlet, QueryType,
    RegistryActor, RgmaClientSet, RgmaConfig, RgmaEvent, RgmaTimer,
};
use gridmon::simcore::{Actor, Context, Payload, SimDuration, SimTime, Simulation};
use gridmon::simnet::{Delivery, Endpoint, FabricConfig, NetworkFabric};
use gridmon::simos::{NodeSpec, OsModel, ProcessSpec, VmstatLog};
use gridmon::telemetry::RttCollector;
use std::cell::RefCell;
use std::rc::Rc;

const TABLE_SQL: &str = "CREATE TABLE generator (\
    id INTEGER, power DOUBLE PRECISION, site CHAR(20))";

#[derive(Default)]
struct Results {
    continuous: usize,
    latest: Vec<String>,
    history: usize,
}

struct Db {
    producer_ep: Endpoint,
    consumer_ep: Endpoint,
    cfg: RgmaConfig,
    set: Option<RgmaClientSet>,
    producers: Vec<ProducerHandle>,
    results: Rc<RefCell<Results>>,
}

struct InsertTick(usize, u32);
struct RunQueries;

impl Actor for Db {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = RgmaClientSet::new(self.cfg.clone(), gridmon::simos::NodeId(1));
        // A continuous query with a content filter — "power > 700".
        set.create_subscriber(
            ctx,
            self.consumer_ep,
            "SELECT * FROM generator WHERE power > 700.0",
        );
        for _ in 0..4 {
            self.producers
                .push(set.create_producer(ctx, self.producer_ep, "generator"));
        }
        self.set = Some(set);
        ctx.timer(SimDuration::from_secs(45), RunQueries);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        RgmaEvent::ProducerReady(h) => {
                            let ix = self.producers.iter().position(|&x| x == h).unwrap();
                            ctx.timer(SimDuration::from_secs(10), InsertTick(ix, 4));
                        }
                        RgmaEvent::Polled(_, n) => self.results.borrow_mut().continuous += n,
                        RgmaEvent::QueryCompleted(q, entries) => {
                            let mut r = self.results.borrow_mut();
                            if q.0 == 5 {
                                // Latest: format the rows.
                                for (_, t) in &entries {
                                    r.latest.push(
                                        t.values
                                            .iter()
                                            .map(ToString::to_string)
                                            .collect::<Vec<_>>()
                                            .join(", "),
                                    );
                                }
                            } else {
                                r.history = entries.len();
                            }
                        }
                        RgmaEvent::QueryFailed(_, e) => panic!("query failed: {e}"),
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RgmaTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InsertTick>() {
            Ok(t) => {
                let InsertTick(ix, remaining) = *t;
                if remaining == 0 {
                    return;
                }
                // Generator power ramps each period; half the fleet stays
                // below the continuous query's 700 kW filter.
                let power = if ix % 2 == 0 { 650.0 } else { 710.0 } + f64::from(remaining);
                let sql = format!(
                    "INSERT INTO generator (id, power, site) VALUES ({ix}, {power:.1}, 'site-{ix}')"
                );
                set.insert(ctx, self.producers[ix], sql);
                ctx.timer(SimDuration::from_secs(8), InsertTick(ix, remaining - 1));
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<RunQueries>().is_ok() {
            println!(
                "t={:>5.1}s  issuing one-time LATEST and HISTORY queries…",
                ctx.now().as_secs_f64()
            );
            set.one_time_query(
                ctx,
                self.consumer_ep,
                "SELECT id, power FROM generator",
                QueryType::Latest,
            );
            set.one_time_query(
                ctx,
                self.consumer_ep,
                "SELECT * FROM generator",
                QueryType::History,
            );
        }
    }
}

fn main() {
    let mut sim = Simulation::new(7);
    let mut os = OsModel::new();
    let server = os.add_node(NodeSpec::hydra("hydra1", 0.0005));
    let client = os.add_node(NodeSpec::hydra("hydra2", 0.0001));
    let proc = os.add_process(server, ProcessSpec::jvm_1g());
    let _ = client;
    sim.add_service(os);
    sim.add_service(NetworkFabric::new(FabricConfig::default(), 2));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());

    let cfg = RgmaConfig::glite_3_0();
    let reg = sim.add_actor(RegistryActor::new(cfg.clone(), server, proc));
    let reg_ep = Endpoint::new(server, reg);
    let prod = sim.add_actor(ProducerServlet::new(cfg.clone(), server, proc, reg_ep));
    let cons = sim.add_actor(ConsumerServlet::new(cfg.clone(), server, proc, reg_ep));
    sim.schedule(
        SimDuration::ZERO,
        prod,
        Box::new(ProducerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );
    sim.schedule(
        SimDuration::ZERO,
        cons,
        Box::new(ConsumerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );

    let results: Rc<RefCell<Results>> = Default::default();
    sim.add_actor(Db {
        producer_ep: Endpoint::new(server, prod),
        consumer_ep: Endpoint::new(server, cons),
        cfg,
        set: None,
        producers: Vec::new(),
        results: results.clone(),
    });

    sim.run_until(SimTime::from_secs(90));
    let r = results.borrow();
    println!("\n— virtual database results —");
    println!(
        "continuous query (power > 700): {} rows streamed to the subscriber",
        r.continuous
    );
    println!("latest query (one row per live producer):");
    for row in &r.latest {
        println!("  [{row}]");
    }
    println!(
        "history query: {} rows within the retention window",
        r.history
    );

    assert_eq!(r.latest.len(), 4, "one latest row per producer");
    assert!(r.continuous > 0 && r.continuous < r.history + r.latest.len() * 4);
    assert!(r.history >= r.latest.len());
}
