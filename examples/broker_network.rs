//! The Distributed Broker Network study: scale past a single broker's
//! connection ceiling, and quantify the v1.1.3 broadcast deficiency
//! against subscription-aware routing (the fix the paper anticipated).
//!
//! Also demonstrates the BNM shortest-path machinery on the full-mesh
//! topology.
//!
//! ```sh
//! cargo run --release --example broker_network
//! ```

use gridmon::core::{run_experiment, scenarios, ExperimentSpec, SystemUnderTest};
use gridmon::narada::network::shortest_paths;

fn main() {
    let msgs = 10;

    // 1. A single broker refuses 4000 connections (native memory).
    let single = run_experiment(&scenarios::narada_single_4000(msgs));
    println!(
        "single broker at 4000 connections: {} accepted, {} refused (out of native memory)",
        single.connected, single.refused
    );

    // 2. The DBN accepts them all.
    let dbn = run_experiment(
        &ExperimentSpec::paper_default(
            "example/dbn/4000",
            SystemUnderTest::NaradaDbn { brokers: 3 },
            4000,
        )
        .scaled(msgs),
    );
    println!(
        "3-broker DBN at 4000 connections:  {} accepted, {} refused, mean RTT {:.1} ms",
        dbn.connected, dbn.refused, dbn.summary.rtt_mean_ms
    );

    // 3. Broadcast (v1.1.3) vs routed forwarding.
    println!("\nbroadcast deficiency ablation (2000 connections):");
    for spec in scenarios::dbn_routing_ablation(msgs, 2000) {
        let r = run_experiment(&spec);
        println!(
            "  {:<28} RTT {:>6.2} ms, inter-broker messages {:>7}, broker idle {:>5.1}%",
            r.name.trim_start_matches("ablation/"),
            r.summary.rtt_mean_ms,
            r.broker_forwards,
            r.server_idle * 100.0
        );
    }

    // 4. BNM routing sanity: the full mesh is single-hop everywhere.
    let n = 3;
    let adj: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|i| (0..n).filter(|&j| j != i).map(|j| (j, 150)).collect())
        .collect();
    println!("\nBNM shortest paths (µs) over the full mesh:");
    for src in 0..n {
        println!("  from broker {src}: {:?}", shortest_paths(&adj, src));
    }

    assert!(single.refused > 0);
    assert_eq!(dbn.refused, 0);
}
