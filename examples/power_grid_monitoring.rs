//! The paper's motivating scenario (§I): soft real-time monitoring of a
//! large fleet of dispersed renewable generators.
//!
//! Requirements from the introduction: most monitoring data must arrive
//! within a predefined limit (e.g. 5 seconds), with a small tolerated
//! delay fraction (e.g. under 0.5 %). This example runs a 750-generator
//! fleet — the paper's standard per-node load — against both middlewares
//! and evaluates those requirements.
//!
//! ```sh
//! cargo run --release --example power_grid_monitoring
//! ```

use gridmon::core::{run_experiment, ExperimentSpec, SystemUnderTest};

const BUDGET_FRACTION: f64 = 0.995; // ≥ 99.5 % must arrive in time

fn main() {
    let generators = 750;
    let msgs = 30; // 5 simulated minutes per generator

    println!("power-grid monitoring acceptance test: {generators} generators");
    println!(
        "requirement: ≥ {:.1}% of telemetry within 5 s\n",
        BUDGET_FRACTION * 100.0
    );

    let narada = run_experiment(
        &ExperimentSpec::paper_default(
            "powergrid/narada",
            SystemUnderTest::NaradaSingle,
            generators,
        )
        .scaled(msgs),
    );
    let rgma = run_experiment(
        &ExperimentSpec::paper_default(
            "powergrid/rgma",
            SystemUnderTest::RgmaDistributed,
            generators,
        )
        .scaled(msgs),
    );

    for (name, r) in [("NaradaBrokering", &narada), ("R-GMA (distributed)", &rgma)] {
        let s = &r.summary;
        let timely = s.within_5s * (1.0 - s.loss_rate);
        let verdict = if timely >= BUDGET_FRACTION {
            "MEETS the soft real-time requirement"
        } else {
            "does NOT meet the requirement"
        };
        println!("{name}:");
        println!(
            "  mean RTT        : {:.1} ms (p100 {:.1} ms)",
            s.rtt_mean_ms,
            s.percentiles_ms.last().map(|p| p.1).unwrap_or(0.0)
        );
        println!("  loss            : {:.3}%", s.loss_rate * 100.0);
        println!(
            "  within 5 s      : {:.3}% of delivered",
            s.within_5s * 100.0
        );
        println!("  within 100 ms   : {:.3}%", s.within_100ms * 100.0);
        println!("  server CPU idle : {:.0}%", r.server_idle * 100.0);
        println!("  → {verdict}\n");
    }

    // The paper's conclusion at this scale: both deliver within 5 s, but
    // only Narada leaves real-time headroom (99.8 % within 100 ms).
    assert!(narada.summary.within_5s * (1.0 - narada.summary.loss_rate) >= BUDGET_FRACTION);
    assert!(narada.summary.within_100ms > 0.99);
    assert!(rgma.summary.rtt_mean_ms > narada.summary.rtt_mean_ms * 10.0);
}
