//! Quickstart: stand up a simulated two-node cluster, run one Narada
//! broker, publish telemetry from a handful of generators, and print the
//! measured round-trip statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gridmon::core::{run_experiment, ExperimentSpec, SystemUnderTest};

fn main() {
    // One broker, 10 generator connections, 12 messages each — the
    // smallest end-to-end run that exercises connect → subscribe →
    // publish → match → deliver → acknowledge.
    let spec =
        ExperimentSpec::paper_default("quickstart", SystemUnderTest::NaradaSingle, 10).scaled(12);

    println!(
        "running: {} generators, {} messages each…",
        spec.generators, 12
    );
    let result = run_experiment(&spec);
    let s = &result.summary;

    println!("\n— results —");
    println!("connections accepted : {}", result.connected);
    println!("messages sent        : {}", s.sent);
    println!("messages received    : {}", s.received);
    println!("loss rate            : {:.4}%", s.loss_rate * 100.0);
    println!("mean RTT             : {:.2} ms", s.rtt_mean_ms);
    println!("RTT stddev           : {:.2} ms", s.rtt_stddev_ms);
    for (p, v) in &s.percentiles_ms {
        println!("p{p:<3}                 : {v:.2} ms");
    }
    println!(
        "decomposition        : PRT {:.2} + PT {:.2} + SRT {:.2} ms",
        s.prt_mean_ms, s.pt_mean_ms, s.srt_mean_ms
    );
    println!(
        "soft real-time       : {:.2}% within 100 ms, {:.2}% within 5 s",
        s.within_100ms * 100.0,
        s.within_5s * 100.0
    );
    assert_eq!(s.sent, s.received, "quickstart should be lossless");
}
