//! Side-by-side middleware comparison — the core of the study — at a
//! chosen connection count, with the fig-15-style RTT decomposition
//! showing *where* R-GMA loses its time.
//!
//! ```sh
//! cargo run --release --example middleware_comparison [connections]
//! ```

use gridmon::core::{run_experiment, ExperimentSpec, SystemUnderTest};
use gridmon::telemetry::Table;

fn main() {
    let connections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let msgs = 25;

    println!("comparing middlewares at {connections} concurrent connections…\n");
    let narada = run_experiment(
        &ExperimentSpec::paper_default("cmp/narada", SystemUnderTest::NaradaSingle, connections)
            .scaled(msgs),
    );
    let rgma = run_experiment(
        &ExperimentSpec::paper_default("cmp/rgma", SystemUnderTest::RgmaSingle, connections)
            .scaled(msgs),
    );

    let mut t = Table::new(
        format!("NaradaBrokering vs R-GMA at {connections} connections"),
        &["metric", "Narada", "R-GMA"],
    );
    let f = |v: f64| format!("{v:.2}");
    let n = &narada.summary;
    let r = &rgma.summary;
    t.push_row(vec![
        "mean RTT (ms)".into(),
        f(n.rtt_mean_ms),
        f(r.rtt_mean_ms),
    ]);
    t.push_row(vec![
        "RTT stddev (ms)".into(),
        f(n.rtt_stddev_ms),
        f(r.rtt_stddev_ms),
    ]);
    for (p, label) in [(95, "p95 (ms)"), (99, "p99 (ms)"), (100, "p100 (ms)")] {
        let get = |s: &gridmon::telemetry::RttSummary| {
            s.percentiles_ms
                .iter()
                .find(|x| x.0 == p)
                .map(|x| format!("{:.1}", x.1))
                .unwrap_or_default()
        };
        t.push_row(vec![label.into(), get(n), get(r)]);
    }
    t.push_row(vec![
        "loss".into(),
        format!("{:.3}%", n.loss_rate * 100.0),
        format!("{:.3}%", r.loss_rate * 100.0),
    ]);
    t.push_row(vec![
        "PRT mean (ms)".into(),
        f(n.prt_mean_ms),
        f(r.prt_mean_ms),
    ]);
    t.push_row(vec![
        "PT mean (ms)".into(),
        f(n.pt_mean_ms),
        f(r.pt_mean_ms),
    ]);
    t.push_row(vec![
        "SRT mean (ms)".into(),
        f(n.srt_mean_ms),
        f(r.srt_mean_ms),
    ]);
    t.push_row(vec![
        "server CPU idle".into(),
        format!("{:.0}%", narada.server_idle * 100.0),
        format!("{:.0}%", rgma.server_idle * 100.0),
    ]);
    t.push_row(vec![
        "server memory (MB)".into(),
        format!("{:.0}", narada.server_mem_mb),
        format!("{:.0}", rgma.server_mem_mb),
    ]);
    println!("{}", t.render());

    println!(
        "The paper's fig 15 in one line: R-GMA's Publishing and Subscribing\n\
         Response Times are short, but its middleware Process Time ({:.0} ms\n\
         here) dwarfs Narada's entire round trip ({:.1} ms).",
        r.pt_mean_ms, n.rtt_mean_ms
    );
    assert!(r.pt_mean_ms > n.rtt_mean_ms);
}
