//! Trace anatomy: run one tiny Narada scenario and one tiny R-GMA
//! scenario with `simtrace` lifecycle tracing enabled, then print each
//! message's hop-by-hop decomposition — where every microsecond of its
//! round trip went.
//!
//! ```sh
//! cargo run --release --example trace_anatomy
//! ```
//!
//! The same data is what `repro --trace` exports as JSONL and Chrome
//! `trace_event` files; here it is reconstructed in-process to show the
//! anatomy of a single message in each middleware.

use gridmon::core::{run_experiment, ExperimentSpec, SystemUnderTest, TraceArtifacts};

fn main() {
    for (label, system) in [
        ("Narada (TCP broker)", SystemUnderTest::NaradaSingle),
        ("R-GMA (HTTP + SQL)", SystemUnderTest::RgmaSingle),
    ] {
        let spec = ExperimentSpec::paper_default(format!("anatomy/{label}"), system, 3)
            .scaled(3)
            .traced();
        let result = run_experiment(&spec);
        let trace = result.trace.as_ref().expect("tracing was enabled");
        print_anatomy(label, trace);
        if !trace.disagreements.is_empty() {
            eprintln!("cross-check FAILED: {:?}", trace.disagreements);
            std::process::exit(1);
        }
    }
    println!("trace/RttCollector cross-check: clean on both systems");
}

fn print_anatomy(label: &str, trace: &TraceArtifacts) {
    println!("=== {label} ===");
    println!(
        "{} events recorded ({} probes tracked, {} evicted)",
        trace.summary.total_events,
        trace.summary.probes.len(),
        trace.summary.evicted_events,
    );
    println!(
        "{:>6}  {:>10} {:>10} {:>10} {:>10}  {:>5}",
        "probe", "PRT µs", "PT µs", "SRT µs", "RTT µs", "hops"
    );
    for (id, probe) in &trace.summary.probes {
        if !probe.complete() {
            println!("{:>6}  (incomplete — lost or still in flight)", id.0);
            continue;
        }
        let (prt, pt, srt, rtt) = (
            probe.prt().unwrap(),
            probe.pt().unwrap(),
            probe.srt().unwrap(),
            probe.rtt().unwrap(),
        );
        println!(
            "{:>6}  {prt:>10} {pt:>10} {srt:>10} {rtt:>10}  {:>5}",
            id.0, probe.hops
        );
        assert_eq!(prt + pt + srt, rtt, "decomposition must telescope");
    }
    // One line of the machine-readable export, to show its shape.
    if let Some(line) = trace.jsonl.lines().find(|l| l.contains("\"trace\":0")) {
        println!("first traced JSONL event: {line}");
    }
    println!();
}
