#![warn(missing_docs)]
//! # gridmon — umbrella crate
//!
//! Re-exports the full public API of the IPPS 2007 pub/sub study
//! reproduction. See the workspace README for the architecture overview.

pub use gma;
pub use gridmon_core as core;
pub use jms;
pub use minisql;
pub use narada;
pub use powergrid;
pub use rgma;
pub use simcore;
pub use simfault;
pub use simnet;
pub use simos;
pub use simprof;
pub use simscope;
pub use simslo;
pub use simtrace;
pub use telemetry;
pub use wire;
