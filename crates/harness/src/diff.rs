//! `bench_diff` forensics: compare two [`BenchReport`]s (and optional
//! `gridmon-hotpath` reports) and explain *where* a wall-time change
//! came from — per-scenario wall/events-per-sec deltas, kernel event-mix
//! shifts, per-site wall-clock attribution, and workload-drift flags.
//! Turns `bench_gate`'s pass/fail into an explanation.

use crate::bench::{BenchReport, BenchRow};
use std::fmt::Write as _;
use telemetry::Table;

/// One scenario's comparison.
#[derive(Debug, Clone)]
pub struct ScenarioDiff {
    /// Scenario name.
    pub name: String,
    /// Baseline / candidate wall seconds.
    pub wall: (f64, f64),
    /// Baseline / candidate events per wall second.
    pub events_per_sec: (f64, f64),
    /// Deterministic-count mismatches (`metric old→new`); non-empty
    /// means the two runs measured different workloads.
    pub drift: Vec<String>,
    /// Queue-depth high-watermark, when both sides carry kernel stats.
    pub peak_depth: Option<(u64, u64)>,
    /// Timer share of scheduled events, when both sides carry kernel
    /// stats.
    pub timer_share: Option<(f64, f64)>,
    /// Largest per-event-type executed-count shifts (`type old→new`).
    pub type_shifts: Vec<String>,
    /// SLO compliance (baseline, candidate), when both sides carry the
    /// v3 freshness rows.
    pub slo_compliance: Option<(f64, f64)>,
    /// Delivery-latency p99 ms (baseline, candidate), v3 rows only.
    pub slo_p99_ms: Option<(f64, f64)>,
    /// Deadline misses late+lost (baseline, candidate), v3 rows only.
    pub slo_misses: Option<(u64, u64)>,
}

impl ScenarioDiff {
    /// Wall-time change as a fraction of baseline (+0.2 = 20 % slower).
    pub fn wall_delta_frac(&self) -> f64 {
        if self.wall.0 > 0.0 {
            (self.wall.1 - self.wall.0) / self.wall.0
        } else {
            0.0
        }
    }
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Set when one side is an older schema: names what is unavailable.
    pub schema_note: Option<String>,
    /// Scenarios present in the baseline but not the candidate.
    pub missing: Vec<String>,
    /// Scenarios present in the candidate but not the baseline.
    pub added: Vec<String>,
    /// Per-scenario comparisons, baseline order.
    pub scenarios: Vec<ScenarioDiff>,
    /// Baseline / candidate total wall seconds.
    pub total_wall: (f64, f64),
    /// Regression-flag threshold (fractional).
    pub tolerance: f64,
}

fn timer_share(row: &BenchRow) -> Option<f64> {
    let k = row.kernel.as_ref()?;
    if k.scheduled_total == 0 {
        return None;
    }
    Some(k.timer_scheduled as f64 / k.scheduled_total as f64)
}

/// Compare `baseline` against `candidate`.
pub fn diff(baseline: &BenchReport, candidate: &BenchReport, tolerance: f64) -> DiffReport {
    // The schema tags order lexically ("…/1" < "…/2" < "…/3"), so the
    // older side is the one missing rows newer schemas added (kernel
    // event accounting in v2, freshness/SLO in v3).
    let schema_note = if baseline.schema == candidate.schema {
        None
    } else {
        let (older_side, older, newer) = if baseline.schema < candidate.schema {
            ("baseline", &baseline.schema, &candidate.schema)
        } else {
            ("candidate", &candidate.schema, &baseline.schema)
        };
        Some(format!(
            "{older_side} is {older}: rows added by newer schemas (kernel event \
             accounting, freshness/SLO) unavailable for it (the other side is {newer})"
        ))
    };
    let mut scenarios = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.experiments {
        let Some(c) = candidate.experiments.iter().find(|c| c.name == b.name) else {
            missing.push(b.name.clone());
            continue;
        };
        let mut drift = Vec::new();
        for (metric, old, new) in [
            ("sent", b.sent, c.sent),
            ("received", b.received, c.received),
            ("events", b.events, c.events),
        ] {
            if old != new {
                drift.push(format!("{metric} {old}→{new}"));
            }
        }
        let (peak_depth, type_shifts) = match (&b.kernel, &c.kernel) {
            (Some(bk), Some(ck)) => {
                // Largest absolute executed-count shifts across the union
                // of type names.
                let mut shifts: Vec<(u64, String)> = Vec::new();
                let mut names: Vec<&str> = bk.event_types.iter().map(|t| t.name.as_str()).collect();
                for t in &ck.event_types {
                    if !names.contains(&t.name.as_str()) {
                        names.push(&t.name);
                    }
                }
                for name in names {
                    let old = bk
                        .event_types
                        .iter()
                        .find(|t| t.name == name)
                        .map_or(0, |t| t.executed);
                    let new = ck
                        .event_types
                        .iter()
                        .find(|t| t.name == name)
                        .map_or(0, |t| t.executed);
                    if old != new {
                        shifts.push((old.abs_diff(new), format!("{name} {old}→{new}")));
                    }
                }
                shifts.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                (
                    Some((bk.peak_queue_depth, ck.peak_queue_depth)),
                    shifts.into_iter().take(3).map(|(_, s)| s).collect(),
                )
            }
            _ => (None, Vec::new()),
        };
        let slo = b.slo.as_ref().zip(c.slo.as_ref());
        scenarios.push(ScenarioDiff {
            name: b.name.clone(),
            wall: (b.wall_secs, c.wall_secs),
            events_per_sec: (b.events_per_sec(), c.events_per_sec()),
            drift,
            peak_depth,
            timer_share: timer_share(b).zip(timer_share(c)),
            type_shifts,
            slo_compliance: slo.map(|(x, y)| (x.compliance, y.compliance)),
            slo_p99_ms: slo.map(|(x, y)| (x.delivery_p99_ms, y.delivery_p99_ms)),
            slo_misses: slo.map(|(x, y)| (x.late + x.lost, y.late + y.lost)),
        });
    }
    let added = candidate
        .experiments
        .iter()
        .filter(|c| !baseline.experiments.iter().any(|b| b.name == c.name))
        .map(|c| c.name.clone())
        .collect();
    DiffReport {
        schema_note,
        missing,
        added,
        scenarios,
        total_wall: (baseline.total_wall_secs, candidate.total_wall_secs),
        tolerance,
    }
}

fn pct_str(old: f64, new: f64) -> String {
    if old > 0.0 {
        format!("{:+.1}%", (new - old) / old * 100.0)
    } else {
        "n/a".into()
    }
}

/// Render the comparison as a markdown attribution report.
pub fn render_markdown(d: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## bench_diff — baseline vs candidate\n");
    let _ = writeln!(
        out,
        "Total wall: {:.3}s → {:.3}s ({}); regression flag at +{:.0}%.\n",
        d.total_wall.0,
        d.total_wall.1,
        pct_str(d.total_wall.0, d.total_wall.1),
        d.tolerance * 100.0
    );
    if let Some(note) = &d.schema_note {
        let _ = writeln!(out, "> **schema:** {note}\n");
    }
    for name in &d.missing {
        let _ = writeln!(out, "> **missing from candidate:** {name}\n");
    }
    for name in &d.added {
        let _ = writeln!(out, "> **new in candidate:** {name}\n");
    }

    let mut t = Table::new(
        "Per-scenario wall time",
        &[
            "scenario",
            "wall s (old→new)",
            "Δ wall",
            "events/s (old→new)",
            "Δ ev/s",
            "flags",
        ],
    );
    for s in &d.scenarios {
        let frac = s.wall_delta_frac();
        let mut flags = Vec::new();
        if !s.drift.is_empty() {
            flags.push(format!("WORKLOAD DRIFT: {}", s.drift.join(", ")));
        }
        if frac > d.tolerance {
            flags.push("REGRESSION".into());
        } else if frac < -d.tolerance {
            flags.push("improvement".into());
        }
        t.push_row(vec![
            s.name.clone(),
            format!("{:.3} → {:.3}", s.wall.0, s.wall.1),
            pct_str(s.wall.0, s.wall.1),
            format!("{:.0} → {:.0}", s.events_per_sec.0, s.events_per_sec.1),
            pct_str(s.events_per_sec.0, s.events_per_sec.1),
            flags.join("; "),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let with_kernel: Vec<&ScenarioDiff> = d
        .scenarios
        .iter()
        .filter(|s| s.peak_depth.is_some())
        .collect();
    if !with_kernel.is_empty() {
        let mut k = Table::new(
            "Kernel event accounting",
            &[
                "scenario",
                "peak queue depth (old→new)",
                "timer share (old→new)",
                "largest executed-count shifts",
            ],
        );
        for s in with_kernel {
            let (po, pn) = s.peak_depth.unwrap();
            let ts = s.timer_share.map_or("n/a".to_owned(), |(o, n)| {
                format!("{:.1}% → {:.1}%", o * 100.0, n * 100.0)
            });
            k.push_row(vec![
                s.name.clone(),
                format!("{po} → {pn}"),
                ts,
                if s.type_shifts.is_empty() {
                    "none".into()
                } else {
                    s.type_shifts.join("; ")
                },
            ]);
        }
        out.push_str(&k.to_markdown());
        out.push('\n');
    }

    let with_slo: Vec<&ScenarioDiff> = d
        .scenarios
        .iter()
        .filter(|s| s.slo_compliance.is_some())
        .collect();
    if !with_slo.is_empty() {
        let mut f = Table::new(
            "Freshness / SLO",
            &[
                "scenario",
                "compliance (old→new)",
                "delivery p99 ms (old→new)",
                "Δ p99",
                "misses (old→new)",
                "flags",
            ],
        );
        for s in with_slo {
            let (co, cn) = s.slo_compliance.unwrap();
            let (po, pn) = s.slo_p99_ms.unwrap();
            let (mo, mn) = s.slo_misses.unwrap();
            let mut flags = Vec::new();
            // Virtual-clock metrics: any compliance drop is readings
            // newly missing their deadline, not measurement noise.
            if cn + 1e-6 < co {
                flags.push("COMPLIANCE DROP".to_owned());
            }
            if po > 0.0 && (pn - po) / po > d.tolerance {
                flags.push("P99 REGRESSION".to_owned());
            }
            f.push_row(vec![
                s.name.clone(),
                format!("{:.4} → {:.4}", co, cn),
                format!("{:.3} → {:.3}", po, pn),
                pct_str(po, pn),
                format!("{mo} → {mn}"),
                flags.join("; "),
            ]);
        }
        out.push_str(&f.to_markdown());
        out.push('\n');
    }
    out
}

/// Render a per-site wall-clock attribution table comparing two
/// `gridmon-hotpath/1` reports (same run name, two builds).
pub fn hotpath_markdown(
    baseline: &simscope::HotpathReport,
    candidate: &simscope::HotpathReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Hot-path attribution — {} (probe overhead {} → {} ns/op)\n",
        candidate.run, baseline.probe_overhead_ns, candidate.probe_overhead_ns
    );
    let mut names: Vec<&str> = baseline.sites.iter().map(|s| s.site.as_str()).collect();
    for s in &candidate.sites {
        if !names.contains(&s.site.as_str()) {
            names.push(&s.site);
        }
    }
    let total_abs_delta: f64 = names
        .iter()
        .map(|n| {
            let old = baseline.site(n).map_or(0, |s| s.nanos) as f64;
            let new = candidate.site(n).map_or(0, |s| s.nanos) as f64;
            (new - old).abs()
        })
        .sum();
    let mut t = Table::new(
        "",
        &[
            "site",
            "old ms",
            "new ms",
            "Δ ms",
            "Δ %",
            "share of |Δ|",
            "ns/op (old→new)",
        ],
    );
    for name in names {
        let (old_ns, old_count) = baseline.site(name).map_or((0, 0), |s| (s.nanos, s.count));
        let (new_ns, new_count) = candidate.site(name).map_or((0, 0), |s| (s.nanos, s.count));
        let delta_ms = (new_ns as f64 - old_ns as f64) / 1e6;
        let per_op = |ns: u64, count: u64| {
            if count > 0 {
                format!("{:.0}", ns as f64 / count as f64)
            } else {
                "-".into()
            }
        };
        t.push_row(vec![
            name.to_owned(),
            format!("{:.1}", old_ns as f64 / 1e6),
            format!("{:.1}", new_ns as f64 / 1e6),
            format!("{delta_ms:+.1}"),
            pct_str(old_ns as f64, new_ns as f64),
            if total_abs_delta > 0.0 {
                format!(
                    "{:.0}%",
                    (new_ns as f64 - old_ns as f64).abs() / total_abs_delta * 100.0
                )
            } else {
                "-".into()
            },
            format!(
                "{} → {}",
                per_op(old_ns, old_count),
                per_op(new_ns, new_count)
            ),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{EventTypeRow, KernelRow, SloRow, SCHEMA, SCHEMA_V1};

    fn row(name: &str, wall: f64, executed: u64) -> BenchRow {
        BenchRow {
            name: name.into(),
            generators: 800,
            sent: 16000,
            received: 16000,
            events: executed,
            sim_secs: 600.0,
            rtt_mean_ms: 1.0,
            rtt_p95_ms: 2.0,
            rtt_p99_ms: 3.0,
            rtt_max_ms: 4.0,
            peak_rss_mb: 50.0,
            kernel: Some(KernelRow {
                peak_queue_depth: 800,
                scheduled_total: executed,
                timer_scheduled: executed / 4,
                message_scheduled: executed - executed / 4,
                event_types: vec![EventTypeRow {
                    name: "Delivery".into(),
                    scheduled: executed,
                    executed,
                    dropped: 0,
                    timers: 0,
                }],
            }),
            slo: Some(SloRow {
                deadline_ms: 5000.0,
                target: 0.99,
                on_time: 15995,
                late: 5,
                lost: 0,
                compliance: 0.999_687_5,
                worst_burn: 0.1,
                delivery_p50_ms: 1.0,
                delivery_p99_ms: 3.0,
            }),
            wall_secs: wall,
        }
    }

    fn report(rows: Vec<BenchRow>) -> BenchReport {
        let total = rows.iter().map(|r| r.wall_secs).sum();
        BenchReport {
            schema: SCHEMA.into(),
            scale: 20,
            threads: 2,
            shards: 1,
            experiments: rows,
            total_wall_secs: total,
        }
    }

    #[test]
    fn regression_is_flagged_with_scenario_name() {
        let base = report(vec![row("bench/a", 1.0, 1000), row("bench/b", 1.0, 1000)]);
        let cand = report(vec![row("bench/a", 1.6, 1000), row("bench/b", 1.0, 1000)]);
        let d = diff(&base, &cand, 0.15);
        let md = render_markdown(&d);
        assert!(md.contains("REGRESSION"));
        assert!(md.contains("bench/a"));
        assert!(d.scenarios[0].wall_delta_frac() > 0.5);
        assert!(d.scenarios[1].drift.is_empty());
    }

    #[test]
    fn v1_baseline_gets_schema_note_and_no_kernel_table() {
        let mut base = report(vec![row("bench/a", 1.0, 1000)]);
        base.schema = SCHEMA_V1.into();
        for e in &mut base.experiments {
            e.kernel = None;
        }
        let cand = report(vec![row("bench/a", 1.0, 1000)]);
        let d = diff(&base, &cand, 0.15);
        assert!(d.schema_note.as_deref().unwrap().contains(SCHEMA_V1));
        assert!(d.scenarios[0].peak_depth.is_none());
        let md = render_markdown(&d);
        assert!(md.contains("**schema:**"));
        assert!(!md.contains("Kernel event accounting"));
    }

    #[test]
    fn drift_and_missing_are_reported() {
        let base = report(vec![
            row("bench/a", 1.0, 1000),
            row("bench/gone", 1.0, 1000),
        ]);
        let mut changed = row("bench/a", 1.0, 1200);
        changed.sent = 17000;
        let cand = report(vec![changed, row("bench/new", 1.0, 1000)]);
        let d = diff(&base, &cand, 0.15);
        assert_eq!(d.missing, vec!["bench/gone"]);
        assert_eq!(d.added, vec!["bench/new"]);
        let md = render_markdown(&d);
        assert!(md.contains("WORKLOAD DRIFT"));
        assert!(md.contains("sent 16000→17000"));
        assert!(md.contains("Delivery 1000→1200"));
    }

    #[test]
    fn freshness_regressions_are_attributed() {
        let base = report(vec![row("bench/a", 1.0, 1000), row("bench/b", 1.0, 1000)]);
        let mut cand = report(vec![row("bench/a", 1.0, 1000), row("bench/b", 1.0, 1000)]);
        {
            let s = cand.experiments[0].slo.as_mut().unwrap();
            s.delivery_p99_ms = 9.0;
        }
        {
            let s = cand.experiments[1].slo.as_mut().unwrap();
            s.on_time -= 7;
            s.lost += 7;
            s.compliance = 0.999_25;
        }
        let d = diff(&base, &cand, 0.15);
        assert_eq!(d.scenarios[0].slo_p99_ms, Some((3.0, 9.0)));
        assert_eq!(d.scenarios[1].slo_misses, Some((5, 12)));
        let md = render_markdown(&d);
        assert!(md.contains("Freshness / SLO"), "{md}");
        assert!(md.contains("P99 REGRESSION"), "{md}");
        assert!(md.contains("COMPLIANCE DROP"), "{md}");
        // SLO-less sides (v2 files) skip the freshness table entirely.
        let mut v2 = base.clone();
        v2.schema = crate::bench::SCHEMA_V2.into();
        for e in &mut v2.experiments {
            e.slo = None;
        }
        let d = diff(&v2, &cand, 0.15);
        assert!(d.scenarios[0].slo_compliance.is_none());
        assert!(!render_markdown(&d).contains("Freshness / SLO"));
    }

    #[test]
    fn hotpath_table_attributes_deltas() {
        let mk = |dispatch: u64| {
            let mut r = simscope::HotpathReport {
                schema: simscope::SCHEMA.into(),
                run: "bench/a".into(),
                probe_overhead_ns: 25,
                wall_secs: 1.0,
                sites: Vec::new(),
            };
            r.push(
                "kernel.dispatch",
                simcore::WallAccum {
                    nanos: dispatch,
                    count: 1000,
                },
            );
            r.push(
                "jms.match",
                simcore::WallAccum {
                    nanos: 100_000_000,
                    count: 500,
                },
            );
            r
        };
        let md = hotpath_markdown(&mk(500_000_000), &mk(900_000_000));
        assert!(md.contains("kernel.dispatch"));
        assert!(md.contains("+400.0"));
        assert!(md.contains("100%"));
        assert!(md.contains("| jms.match | 100.0 | 100.0 | +0.0 |"));
    }
}
