//! Builders that turn experiment results into the paper's tables and
//! figures.

use crate::campaign::Campaign;
use gridmon_core::{scenarios, ExperimentResult};
use telemetry::{trim_float, Figure, Table};

fn ms(v: f64) -> String {
    trim_float((v * 100.0).round() / 100.0)
}

fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

fn p99(r: &ExperimentResult) -> f64 {
    r.summary
        .percentiles_ms
        .iter()
        .find(|p| p.0 == 99)
        .map(|p| p.1)
        .unwrap_or(0.0)
}

/// gridlog single-broker scalability — the third contender's analogue
/// of the fig 6/7 series: RTT, loss, and server cost at 500–2000
/// connections (8 partitions, 2-member consumer group).
pub fn gridlog_scaling(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::gridlog_single_specs(msgs));
    let mut t = Table::new(
        "gridlog single-broker scalability (8 partitions, 2-member consumer group)",
        &[
            "conns",
            "sent",
            "received",
            "loss",
            "RTT mean ms",
            "stddev ms",
            "p99 ms",
            "CPU idle",
            "mem MB",
        ],
    );
    for r in &results {
        t.push_row(vec![
            r.generators.to_string(),
            r.summary.sent.to_string(),
            r.summary.received.to_string(),
            pct(r.summary.loss_rate),
            ms(r.summary.rtt_mean_ms),
            ms(r.summary.rtt_stddev_ms),
            ms(p99(r)),
            pct(r.server_idle),
            format!("{:.1}", r.server_mem_mb),
        ]);
    }
    t
}

/// Three-contender comparison: Narada vs R-GMA vs gridlog on the
/// identical 400-generator workload and seed, fault-free and under each
/// contender's analogous mid-run outage (broker crash; servlet stall
/// for R-GMA, which has no broker). The gridlog CLIENT row maps
/// CLIENT_ACKNOWLEDGE onto committed-offset resume, so its consumer
/// group replays the crash window from the durable log.
pub fn three_way(campaign: &mut Campaign, msgs: u32) -> Table {
    let clean = campaign.ensure(&scenarios::three_way_specs(msgs));
    let outage = campaign.ensure(&scenarios::three_way_outage_specs(msgs));
    let mut t = Table::new(
        "Three-contender comparison — identical workload and seed, 400 generators",
        &[
            "contender",
            "RTT mean ms",
            "stddev ms",
            "p99 ms",
            "loss",
            "outage",
            "outage loss",
            "reconnects",
            "recovered",
        ],
    );
    // (label, fault-free run index, outage run index, outage scenario).
    let rows: [(&str, Option<usize>, usize, &str); 4] = [
        ("Narada (AUTO)", Some(0), 0, "broker-crash"),
        ("R-GMA (AUTO)", Some(1), 1, "servlet-stall"),
        ("gridlog (AUTO → latest)", Some(2), 2, "broker-crash"),
        ("gridlog (CLIENT → committed)", None, 3, "broker-crash"),
    ];
    for (label, ci, oi, scenario) in rows {
        let o = &outage[oi];
        let fs = o.fault_stats.unwrap_or_default();
        let (mean, sd, p, loss) = match ci {
            Some(i) => {
                let c = &clean[i];
                (
                    ms(c.summary.rtt_mean_ms),
                    ms(c.summary.rtt_stddev_ms),
                    ms(p99(c)),
                    pct(c.summary.loss_rate),
                )
            }
            // The committed-offset variant only differs once a fault
            // makes offsets matter; its fault-free numbers are the AUTO
            // row's.
            None => ("—".into(), "—".into(), "—".into(), "—".into()),
        };
        t.push_row(vec![
            label.into(),
            mean,
            sd,
            p,
            loss,
            scenario.into(),
            pct(o.summary.loss_rate),
            fs.reconnects.to_string(),
            fs.recovered.to_string(),
        ]);
    }
    t
}

/// Three-contender freshness comparison (the `--slo` companion to
/// [`three_way`]): deadline compliance, windowed delivery-latency
/// percentiles and error-budget burn for the same fault-free and
/// outage runs — degradation reported as SLO burn rather than raw
/// loss. Rows without SLO artifacts (campaign ran without `--slo`)
/// render as dashes instead of re-running anything.
pub fn three_way_slo(campaign: &mut Campaign, msgs: u32) -> Table {
    let clean = campaign.ensure(&scenarios::three_way_specs(msgs));
    let outage = campaign.ensure(&scenarios::three_way_outage_specs(msgs));
    let cols = gridmon_core::SloReport::table_columns();
    let mut t = Table::new(
        "Three-contender freshness — deadline-SLO compliance, identical workload and seed",
        cols,
    );
    for r in clean.iter().chain(outage.iter()) {
        match &r.slo {
            Some(s) => t.push_row(s.report.table_row(&r.name)),
            None => t.push_row(
                std::iter::once(r.name.clone())
                    .chain(std::iter::repeat_n("—".to_string(), cols.len() - 1))
                    .collect(),
            ),
        }
    }
    t
}

/// Table I — hardware specifications and software versions (documented
/// constants of the calibration).
pub fn table1() -> Table {
    let mut t = Table::new(
        "TABLE I — hardware specifications and software versions (simulated testbed)",
        &[
            "CPU and memory",
            "OS and JVM (modelled)",
            "Middleware (reproduced)",
        ],
    );
    t.push_row(vec![
        "PentiumIII 866MHz (single core), 2GB".into(),
        "Linux 2.4-era scheduler model, JVM thread-per-connection".into(),
        "narada crate (NaradaBrokering v1.1.3 behaviour), rgma crate (R-GMA gLite 3.0 behaviour)"
            .into(),
    ]);
    t.push_row(vec![
        "8-node isolated 100Mbps switched LAN".into(),
        "effective 7.5 MB/s, 150us switch latency".into(),
        "Narada JVM -Xms1024m -Xmx1024m; Tomcat -Xmx1024m".into(),
    ]);
    t
}

/// Table II — comparison test settings plus measured totals/loss
/// (§III.E.1 reports the loss rates in prose).
pub fn table2(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::table2_specs(msgs));
    let mut t = Table::new(
        "TABLE II — comparison test settings and measured outcomes",
        &[
            "test",
            "transport",
            "ACK mode",
            "comment",
            "sent",
            "received",
            "loss",
        ],
    );
    let meta = [
        ("Test1 (UDP)", "UDP", "AUTO", ""),
        ("Test2 (UDP CLI)", "UDP", "CLIENT", ""),
        ("Test3 (NIO)", "NIO", "AUTO", ""),
        ("Test4 (TCP)", "TCP", "AUTO", ""),
        ("Test5 (Triple)", "TCP", "AUTO", "Triple payload"),
        ("Test6 (80)", "TCP", "AUTO", "80 connections"),
    ];
    for ((name, transport, ack, comment), r) in meta.iter().zip(&results) {
        t.push_row(vec![
            (*name).into(),
            (*transport).into(),
            (*ack).into(),
            (*comment).into(),
            r.summary.sent.to_string(),
            r.summary.received.to_string(),
            pct(r.summary.loss_rate),
        ]);
    }
    t
}

/// Fig 3 — Narada comparison tests: RTT and standard deviation.
pub fn fig3(campaign: &mut Campaign, msgs: u32) -> Figure {
    let results = campaign.ensure(&scenarios::table2_specs(msgs));
    let mut f = Figure::new(
        "fig3",
        "Narada comparison tests: round-trip time and standard deviation",
        "test",
        "millisecond",
    );
    // X positions follow the paper's bar order: UDP, UDP CLI, NIO, Triple, TCP, 80.
    let order = [0usize, 1, 2, 4, 3, 5];
    let rtt: Vec<(f64, f64)> = order
        .iter()
        .enumerate()
        .map(|(x, &i)| (x as f64, results[i].summary.rtt_mean_ms))
        .collect();
    let sd: Vec<(f64, f64)> = order
        .iter()
        .enumerate()
        .map(|(x, &i)| (x as f64, results[i].summary.rtt_stddev_ms))
        .collect();
    f.push_series("RTT", rtt);
    f.push_series("STDDEV", sd);
    f
}

/// Fig 4 — comparison tests, percentile of RTT (95–100 %).
pub fn fig4(campaign: &mut Campaign, msgs: u32) -> Figure {
    let results = campaign.ensure(&scenarios::table2_specs(msgs));
    let mut f = Figure::new(
        "fig4",
        "Narada comparison tests, percentile of RTT",
        "percentile",
        "millisecond",
    );
    // The paper plots NIO, TCP, UDP, Triple, 80 (UDP CLI omitted).
    for &(label, ix) in &[
        ("NIO", 2usize),
        ("TCP", 3),
        ("UDP", 0),
        ("Triple", 4),
        ("80", 5),
    ] {
        let pts = results[ix]
            .summary
            .percentiles_ms
            .iter()
            .map(|&(p, v)| (f64::from(p), v))
            .collect();
        f.push_series(label, pts);
    }
    f
}

/// Fig 5 — the distributed architecture (topology description).
pub fn fig5() -> Table {
    let mut t = Table::new(
        "Fig 5 — distributed broker architecture (as deployed)",
        &["role", "nodes", "detail"],
    );
    t.push_row(vec![
        "publishing brokers".into(),
        "2".into(),
        "accept generator connections (≤ m per broker)".into(),
    ]);
    t.push_row(vec![
        "subscribing broker".into(),
        "1".into(),
        "serves the receiving programs (throughput ≤ n)".into(),
    ]);
    t.push_row(vec![
        "unit controller (BDN)".into(),
        "1".into(),
        "assigns broker addresses; full TCP mesh between brokers".into(),
    ]);
    t.push_row(vec![
        "v1.1.3 behaviour".into(),
        "-".into(),
        "messages are flooded to every broker regardless of subscriptions".into(),
    ]);
    t
}

fn narada_scalability(
    campaign: &mut Campaign,
    msgs: u32,
) -> (Vec<ExperimentResult>, Vec<ExperimentResult>) {
    let single = campaign.ensure(&scenarios::narada_single_specs(msgs));
    let dbn = campaign.ensure(&scenarios::narada_dbn_specs(msgs));
    (single, dbn)
}

/// Fig 6 — Narada CPU idle and memory consumption vs connections.
pub fn fig6(campaign: &mut Campaign, msgs: u32) -> Figure {
    let (single, dbn) = narada_scalability(campaign, msgs);
    let mut f = Figure::new(
        "fig6",
        "Narada tests, CPU idle (%) and memory (MB); CPU/MEM single server, CPU2/MEM2 DBN",
        "concurrent connections",
        "CPU idle % / memory (MB)",
    );
    f.push_series(
        "CPU",
        single
            .iter()
            .map(|r| (r.generators as f64, (r.server_idle * 100.0).round()))
            .collect(),
    );
    f.push_series(
        "CPU2",
        dbn.iter()
            .map(|r| (r.generators as f64, (r.server_idle * 100.0).round()))
            .collect(),
    );
    f.push_series(
        "MEM",
        single
            .iter()
            .map(|r| (r.generators as f64, r.server_mem_mb.round()))
            .collect(),
    );
    f.push_series(
        "MEM2",
        dbn.iter()
            .map(|r| (r.generators as f64, r.server_mem_mb.round()))
            .collect(),
    );
    f
}

/// Fig 7 — Narada RTT and STDDEV vs connections (single vs DBN).
pub fn fig7(campaign: &mut Campaign, msgs: u32) -> Figure {
    let (single, dbn) = narada_scalability(campaign, msgs);
    let mut f = Figure::new(
        "fig7",
        "Narada tests, round-trip time and standard deviation; RTT/STDDEV single, RTT2/STDDEV2 DBN",
        "concurrent connections",
        "millisecond",
    );
    f.push_series(
        "RTT",
        single
            .iter()
            .map(|r| (r.generators as f64, r.summary.rtt_mean_ms))
            .collect(),
    );
    f.push_series(
        "STDDEV",
        single
            .iter()
            .map(|r| (r.generators as f64, r.summary.rtt_stddev_ms))
            .collect(),
    );
    f.push_series(
        "RTT2",
        dbn.iter()
            .map(|r| (r.generators as f64, r.summary.rtt_mean_ms))
            .collect(),
    );
    f.push_series(
        "STDDEV2",
        dbn.iter()
            .map(|r| (r.generators as f64, r.summary.rtt_stddev_ms))
            .collect(),
    );
    f
}

/// Fig 8 — Narada single-server percentile of RTT per connection count.
pub fn fig8(campaign: &mut Campaign, msgs: u32) -> Figure {
    let single = campaign.ensure(&scenarios::narada_single_specs(msgs));
    let mut f = Figure::new(
        "fig8",
        "Narada single server tests, percentile of RTT (500–3000 connections)",
        "percentile",
        "millisecond",
    );
    for r in &single {
        f.push_series(
            r.generators.to_string(),
            r.summary
                .percentiles_ms
                .iter()
                .map(|&(p, v)| (f64::from(p), v))
                .collect(),
        );
    }
    f
}

/// Fig 9 — Narada DBN percentile of RTT per connection count.
pub fn fig9(campaign: &mut Campaign, msgs: u32) -> Figure {
    let dbn = campaign.ensure(&scenarios::narada_dbn_specs(msgs));
    let mut f = Figure::new(
        "fig9",
        "Narada DBN tests, percentile of RTT (2000–4000 connections)",
        "percentile",
        "millisecond",
    );
    for r in &dbn {
        f.push_series(
            r.generators.to_string(),
            r.summary
                .percentiles_ms
                .iter()
                .map(|&(p, v)| (f64::from(p), v))
                .collect(),
        );
    }
    f
}

/// Fig 10 — R-GMA Primary + Secondary Producer percentile of RTT
/// (seconds, as in the paper).
pub fn fig10(campaign: &mut Campaign, msgs: u32) -> Figure {
    let results = campaign.ensure(&scenarios::rgma_secondary_specs(msgs));
    let mut f = Figure::new(
        "fig10",
        "R-GMA Primary and Secondary Producer tests, percentile of RTT (50–200 connections)",
        "percentile",
        "second",
    );
    for r in results.iter().rev() {
        f.push_series(
            r.generators.to_string(),
            r.summary
                .percentiles_ms
                .iter()
                .map(|&(p, v)| (f64::from(p), (v / 100.0).round() / 10.0))
                .collect(),
        );
    }
    f
}

fn rgma_scalability(
    campaign: &mut Campaign,
    msgs: u32,
) -> (Vec<ExperimentResult>, Vec<ExperimentResult>) {
    let single = campaign.ensure(&scenarios::rgma_single_specs(msgs));
    let dist = campaign.ensure(&scenarios::rgma_distributed_specs(msgs));
    (single, dist)
}

/// Fig 11 — R-GMA RTT and STDDEV vs connections (single vs distributed).
pub fn fig11(campaign: &mut Campaign, msgs: u32) -> Figure {
    let (single, dist) = rgma_scalability(campaign, msgs);
    let mut f = Figure::new(
        "fig11",
        "R-GMA Primary Producer and Consumer tests; RTT/STDDEV single server, RTT2/STDDEV2 distributed",
        "concurrent connections",
        "millisecond",
    );
    f.push_series(
        "RTT",
        single
            .iter()
            .map(|r| (r.generators as f64, r.summary.rtt_mean_ms.round()))
            .collect(),
    );
    f.push_series(
        "STDDEV",
        single
            .iter()
            .map(|r| (r.generators as f64, r.summary.rtt_stddev_ms.round()))
            .collect(),
    );
    f.push_series(
        "RTT2",
        dist.iter()
            .map(|r| (r.generators as f64, r.summary.rtt_mean_ms.round()))
            .collect(),
    );
    f.push_series(
        "STDDEV2",
        dist.iter()
            .map(|r| (r.generators as f64, r.summary.rtt_stddev_ms.round()))
            .collect(),
    );
    f
}

/// Fig 12 — R-GMA single-server percentile of RTT per connection count.
pub fn fig12(campaign: &mut Campaign, msgs: u32) -> Figure {
    let single = campaign.ensure(&scenarios::rgma_single_specs(msgs));
    let mut f = Figure::new(
        "fig12",
        "R-GMA Primary Producer and Consumer single server tests, percentile of RTT (100–600)",
        "percentile",
        "millisecond",
    );
    for r in &single {
        f.push_series(
            r.generators.to_string(),
            r.summary
                .percentiles_ms
                .iter()
                .map(|&(p, v)| (f64::from(p), v.round()))
                .collect(),
        );
    }
    f
}

/// Fig 13 — R-GMA CPU idle and memory (single vs distributed).
pub fn fig13(campaign: &mut Campaign, msgs: u32) -> Figure {
    let (single, dist) = rgma_scalability(campaign, msgs);
    let mut f = Figure::new(
        "fig13",
        "R-GMA Consumer tests, CPU idle (%) and memory (MB); CPU/MEM single, CPU2/MEM2 distributed",
        "concurrent connections",
        "CPU idle % / memory (MB)",
    );
    f.push_series(
        "CPU",
        single
            .iter()
            .map(|r| (r.generators as f64, (r.server_idle * 100.0).round()))
            .collect(),
    );
    f.push_series(
        "CPU2",
        dist.iter()
            .map(|r| (r.generators as f64, (r.server_idle * 100.0).round()))
            .collect(),
    );
    f.push_series(
        "MEM",
        single
            .iter()
            .map(|r| (r.generators as f64, r.server_mem_mb.round()))
            .collect(),
    );
    f.push_series(
        "MEM2",
        dist.iter()
            .map(|r| (r.generators as f64, r.server_mem_mb.round()))
            .collect(),
    );
    f
}

/// Fig 14 — R-GMA distributed percentile of RTT per connection count.
pub fn fig14(campaign: &mut Campaign, msgs: u32) -> Figure {
    let dist = campaign.ensure(&scenarios::rgma_distributed_specs(msgs));
    let mut f = Figure::new(
        "fig14",
        "R-GMA distributed network tests, percentile of RTT (400–1000)",
        "percentile",
        "millisecond",
    );
    for r in &dist {
        f.push_series(
            r.generators.to_string(),
            r.summary
                .percentiles_ms
                .iter()
                .map(|&(p, v)| (f64::from(p), v.round()))
                .collect(),
        );
    }
    f
}

/// Fig 15 — RTT decomposition (PRT / PT / SRT), cumulative phase plot.
pub fn fig15(campaign: &mut Campaign, msgs: u32) -> Figure {
    let results = campaign.ensure(&scenarios::fig15_specs(msgs));
    let mut f = Figure::new(
        "fig15",
        "RTT decomposition: cumulative time at each phase boundary",
        "phase (0=before_sending 1=after_sending 2=before_receiving 3=after_receiving)",
        "millisecond",
    );
    for (label, r) in [("Narada", &results[0]), ("RGMA", &results[1])] {
        let s = &r.summary;
        let pts = vec![
            (0.0, 0.0),
            (1.0, s.prt_mean_ms),
            (2.0, s.prt_mean_ms + s.pt_mean_ms),
            (3.0, s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms),
        ];
        f.push_series(label, pts);
    }
    f
}

/// Table III — qualitative comparison, derived from the measured data.
pub fn table3(campaign: &mut Campaign, msgs: u32) -> Table {
    let (nsingle, ndbn) = narada_scalability(campaign, msgs);
    let (rsingle, rdist) = rgma_scalability(campaign, msgs);
    let grade_rtt = |ms: f64| {
        if ms < 50.0 {
            "Very good"
        } else if ms < 1000.0 {
            "Good"
        } else {
            "Average"
        }
    };
    // Scalability: how much extra capacity the distributed deployment
    // adds, and at what cost.
    let narada_rtt = nsingle.last().map(|r| r.summary.rtt_mean_ms).unwrap_or(0.0);
    let rgma_rtt = rsingle.last().map(|r| r.summary.rtt_mean_ms).unwrap_or(0.0);
    let narada_scal = if ndbn.iter().all(|r| r.refused == 0)
        && ndbn.last().map(|r| r.summary.rtt_mean_ms).unwrap_or(0.0) <= narada_rtt * 1.5
    {
        "Average" // more connections, but no RTT benefit and wasted CPU
    } else {
        "Poor"
    };
    let rgma_scal = if rdist.iter().all(|r| r.refused == 0)
        && rdist
            .last()
            .map(|r| r.summary.rtt_mean_ms)
            .unwrap_or(f64::MAX)
            < rgma_rtt
    {
        "Very good"
    } else {
        "Good"
    };
    let mut t = Table::new(
        "TABLE III — R-GMA and NaradaBrokering comparison (derived from measurements)",
        &[
            "",
            "Real-time performance",
            "Concurrent connections & throughput",
            "Scalability",
        ],
    );
    t.push_row(vec![
        "R-GMA".into(),
        grade_rtt(rgma_rtt).into(),
        format!(
            "Average (single server refuses near 800; mean RTT {} ms at 600)",
            ms(rgma_rtt)
        ),
        rgma_scal.into(),
    ]);
    t.push_row(vec![
        "Narada".into(),
        grade_rtt(narada_rtt).into(),
        format!("Very good ({} ms at 3000 connections)", ms(narada_rtt)),
        narada_scal.into(),
    ]);
    t
}

/// §III.F warm-up loss study: loss with and without the warm-up wait.
pub fn rgma_warmup(campaign: &mut Campaign, msgs: u32) -> Table {
    let no_warm = campaign.ensure(&[scenarios::rgma_no_warmup_spec(msgs)]);
    let warm = campaign.ensure(&scenarios::rgma_single_specs(msgs));
    let mut t = Table::new(
        "§III.F — R-GMA warm-up loss (400 generators)",
        &["configuration", "sent", "received", "loss"],
    );
    let r = &no_warm[0];
    t.push_row(vec![
        "publish immediately".into(),
        r.summary.sent.to_string(),
        r.summary.received.to_string(),
        pct(r.summary.loss_rate),
    ]);
    let r400 = warm
        .iter()
        .find(|r| r.generators == 400)
        .expect("400 in series");
    t.push_row(vec![
        "wait 10-20s before publishing".into(),
        r400.summary.sent.to_string(),
        r400.summary.received.to_string(),
        pct(r400.summary.loss_rate),
    ]);
    t
}

/// Ablation: DBN broadcast (v1.1.3) vs subscription-aware routing.
pub fn ablation_routing(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::dbn_routing_ablation(msgs, 2000));
    let mut t = Table::new(
        "Ablation — DBN forwarding: v1.1.3 broadcast flood vs subscription-aware routing",
        &[
            "mode",
            "RTT (ms)",
            "inter-broker messages",
            "broker CPU idle",
        ],
    );
    for r in &results {
        t.push_row(vec![
            if r.name.contains("broadcast") {
                "broadcast (v1.1.3)".into()
            } else {
                "routed (fixed)".into()
            },
            ms(r.summary.rtt_mean_ms),
            r.broker_forwards.to_string(),
            pct(r.server_idle),
        ]);
    }
    t
}

/// Ablation: the Secondary Producer's deliberate 30 s delay.
pub fn ablation_secondary(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::secondary_delay_ablation(msgs));
    let mut t = Table::new(
        "Ablation — Secondary Producer deliberate batch delay",
        &["flush", "mean RTT (ms)", "p100 (ms)"],
    );
    for r in &results {
        t.push_row(vec![
            if r.name.contains("30s") {
                "30 s (gLite 3.0)".into()
            } else {
                "0.5 s".into()
            },
            ms(r.summary.rtt_mean_ms),
            ms(r.summary.percentiles_ms.last().map(|p| p.1).unwrap_or(0.0)),
        ]);
    }
    t
}

/// Ablation: subscriber poll period.
pub fn ablation_poll(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::poll_period_ablation(msgs));
    let mut t = Table::new(
        "Ablation — subscriber poll period (the paper's 100 ms quantization)",
        &["poll period", "mean RTT (ms)", "mean SRT (ms)"],
    );
    for r in &results {
        let label = r.name.trim_start_matches("ablation/poll-").to_owned();
        t.push_row(vec![
            label,
            ms(r.summary.rtt_mean_ms),
            ms(r.summary.srt_mean_ms),
        ]);
    }
    t
}

/// Ablation: sender-side message aggregation (related work: IBM RMM).
pub fn ablation_aggregation(campaign: &mut Campaign, msgs: u32) -> Table {
    let results = campaign.ensure(&scenarios::aggregation_ablation(msgs, 800));
    let mut t = Table::new(
        "Ablation — message aggregation at constant byte rate (RMM, related work §IV)",
        &[
            "readings per message",
            "wire messages",
            "mean RTT (ms)",
            "broker CPU idle",
        ],
    );
    for r in &results {
        let k = r.name.trim_start_matches("ablation/aggregate-").to_owned();
        t.push_row(vec![
            k,
            r.summary.sent.to_string(),
            ms(r.summary.rtt_mean_ms),
            pct(r.server_idle),
        ]);
    }
    t
}

/// Paper-facts summary checked against measurements (the EXPERIMENTS.md
/// rows). Returns (claim, paper value, measured value, holds?).
pub fn headline_checks(campaign: &mut Campaign, msgs: u32) -> Vec<(String, String, String, bool)> {
    let t2 = campaign.ensure(&scenarios::table2_specs(msgs));
    let (nsingle, ndbn) = narada_scalability(campaign, msgs);
    let (rsingle, rdist) = rgma_scalability(campaign, msgs);
    let n4000 = campaign.ensure(&[scenarios::narada_single_4000(msgs)]);
    let r800 = campaign.ensure(&[scenarios::rgma_single_800(msgs)]);
    let sec = campaign.ensure(&scenarios::rgma_secondary_specs(msgs));
    let mut checks = Vec::new();

    let udp = &t2[0].summary;
    let tcp = &t2[3].summary;
    checks.push((
        "UDP slower than TCP (fig 3)".into(),
        "12 ms vs 4 ms".into(),
        format!("{} ms vs {} ms", ms(udp.rtt_mean_ms), ms(tcp.rtt_mean_ms)),
        udp.rtt_mean_ms > tcp.rtt_mean_ms * 1.3,
    ));
    checks.push((
        "UDP AUTO loss ≈ 0.06 %".into(),
        "0.06 %".into(),
        pct(udp.loss_rate),
        udp.loss_rate > 0.0001 && udp.loss_rate < 0.002,
    ));
    checks.push((
        "TCP loss zero".into(),
        "0".into(),
        pct(tcp.loss_rate),
        tcp.loss_rate == 0.0,
    ));
    let within = nsingle
        .iter()
        .map(|r| r.summary.within_100ms)
        .fold(f64::INFINITY, f64::min);
    checks.push((
        "99.8 % of Narada messages within 100 ms".into(),
        "99.8 %".into(),
        pct(within),
        within > 0.99,
    ));
    let growth =
        nsingle.last().unwrap().summary.rtt_mean_ms / nsingle.first().unwrap().summary.rtt_mean_ms;
    checks.push((
        "smooth RTT increase with connections (fig 7)".into(),
        "~5x from 500→3000".into(),
        format!("{:.1}x", growth),
        growth > 2.0 && growth < 10.0,
    ));
    checks.push((
        "single broker cannot accept 4000 connections".into(),
        "refused".into(),
        format!("{} refused", n4000[0].refused),
        n4000[0].refused > 0,
    ));
    checks.push((
        "DBN accepts 4000+ connections".into(),
        "accepted".into(),
        format!("{} refused", ndbn.last().unwrap().refused),
        ndbn.last().unwrap().refused == 0,
    ));
    checks.push((
        "DBN no faster than single server (broadcast deficiency)".into(),
        "RTT2 ≥ RTT".into(),
        format!(
            "{} ms vs {} ms at 3000",
            ms(ndbn[1].summary.rtt_mean_ms),
            ms(nsingle[3].summary.rtt_mean_ms)
        ),
        ndbn[1].summary.rtt_mean_ms > nsingle[3].summary.rtt_mean_ms * 0.5,
    ));
    let rgma600 = rsingle.last().unwrap();
    checks.push((
        "R-GMA RTT ≫ Narada RTT".into(),
        "seconds vs milliseconds".into(),
        format!(
            "{} ms vs {} ms",
            ms(rgma600.summary.rtt_mean_ms),
            ms(nsingle[1].summary.rtt_mean_ms)
        ),
        rgma600.summary.rtt_mean_ms > 50.0 * nsingle[1].summary.rtt_mean_ms,
    ));
    checks.push((
        "99 % of R-GMA messages within 4000 ms".into(),
        "p99 ≤ ~4000 ms".into(),
        format!(
            "p99 = {} ms at 600",
            ms(rgma600
                .summary
                .percentiles_ms
                .iter()
                .find(|p| p.0 == 99)
                .map(|p| p.1)
                .unwrap_or(0.0))
        ),
        rgma600
            .summary
            .percentiles_ms
            .iter()
            .find(|p| p.0 == 99)
            .map(|p| p.1)
            .unwrap_or(f64::MAX)
            < 8000.0,
    ));
    checks.push((
        "one R-GMA server cannot accept 800 connections".into(),
        "refused".into(),
        format!("{} refused", r800[0].refused),
        r800[0].refused > 0,
    ));
    checks.push((
        "distributed R-GMA accepts 1000 and outperforms single".into(),
        "RTT2 < RTT, no refusals".into(),
        format!(
            "{} ms vs {} ms, {} refused",
            ms(rdist.last().unwrap().summary.rtt_mean_ms),
            ms(rgma600.summary.rtt_mean_ms),
            rdist.last().unwrap().refused
        ),
        rdist.last().unwrap().refused == 0
            && rdist.last().unwrap().summary.rtt_mean_ms < rgma600.summary.rtt_mean_ms,
    ));
    checks.push((
        "Secondary Producer delays up to ~35 s (fig 10)".into(),
        "25-35 s".into(),
        format!(
            "p100 = {:.1} s",
            sec.last()
                .unwrap()
                .summary
                .percentiles_ms
                .last()
                .map(|p| p.1 / 1000.0)
                .unwrap_or(0.0)
        ),
        {
            let p100 = sec
                .last()
                .unwrap()
                .summary
                .percentiles_ms
                .last()
                .map(|p| p.1)
                .unwrap_or(0.0);
            (25_000.0..45_000.0).contains(&p100)
        },
    ));
    let fig15 = campaign.ensure(&scenarios::fig15_specs(msgs));
    let rg = &fig15[1].summary;
    checks.push((
        "R-GMA Process Time dominates RTT (fig 15)".into(),
        "PT ≫ PRT, SRT".into(),
        format!(
            "PRT {} / PT {} / SRT {} ms",
            ms(rg.prt_mean_ms),
            ms(rg.pt_mean_ms),
            ms(rg.srt_mean_ms)
        ),
        rg.pt_mean_ms > rg.prt_mean_ms && rg.pt_mean_ms > rg.srt_mean_ms,
    ));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_and_fig5_are_static() {
        assert!(table1().render().contains("PentiumIII"));
        assert!(fig5().render().contains("unit controller"));
    }

    #[test]
    fn gridlog_and_three_way_artifacts_build() {
        let mut c = Campaign::new(0);
        let g = gridlog_scaling(&mut c, 1);
        assert_eq!(g.rows.len(), 3);
        let t = three_way(&mut c, 1);
        assert_eq!(t.rows.len(), 4);
        // 3 scaling runs + 3 fault-free + 4 outage runs, no rerun overlap.
        assert_eq!(c.runs(), 10);
        // Every outage row carries its scenario name.
        assert!(t.render().contains("broker-crash"));
        assert!(t.render().contains("servlet-stall"));
    }

    #[test]
    fn artifacts_build_at_tiny_scale() {
        let mut c = Campaign::new(0);
        let t2 = table2(&mut c, 2);
        assert_eq!(t2.rows.len(), 6);
        let f3 = fig3(&mut c, 2);
        assert_eq!(f3.series.len(), 2);
        let f4 = fig4(&mut c, 2);
        assert_eq!(f4.series.len(), 5);
        // fig3/fig4 reuse the table2 runs.
        assert_eq!(c.runs(), 6);
        let f15 = fig15(&mut c, 2);
        assert_eq!(f15.series.len(), 2);
        // Cumulative phases are non-decreasing.
        for s in &f15.series {
            for w in s.points.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }
}
