#![warn(missing_docs)]
//! # harness — regenerating the paper's tables and figures
//!
//! A [`Campaign`] runs the experiment specs (once each, in parallel,
//! memoized by name) and the `artifacts` module turns results into the
//! exact rows/series each paper artifact reports.

pub mod artifacts;
pub mod bench;
pub mod campaign;
pub mod diff;

pub use campaign::Campaign;
