//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale=N] [--threads=N] [--shards=N] [--out=DIR | --no-csv]
//!       [--trace[=DIR]] [--faults=SCENARIO] [--profile[=DIR]]
//!       [--scope[=DIR]] [--slo[=DIR]] [--bench-json=FILE] <artifact>...
//!
//! artifacts: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!            fig10 fig11 fig12 fig13 fig14 fig15 rgma-warmup
//!            ablation-routing ablation-secondary ablation-poll
//!            ablation-aggregation gridlog compare checks bench all
//!
//! Every value-taking option accepts both `--opt value` and
//! `--opt=value`. Unknown options are rejected with the valid list;
//! unknown artifact / fault-scenario names suggest the nearest match.
//! `--list-scenarios` prints every named scenario (artifacts, fault
//! schedules, bench + gridlog experiment specs) with a one-line
//! description.
//!
//! --scale N        messages per generator (default 180 = the paper's
//!                  30 min)
//! --threads N      worker threads (default: all cores)
//! --shards N       run every experiment on N conservative parallel
//!                  shards (simshard LBTS lockstep; default 1 = the
//!                  serial event loop). Results and artifacts are
//!                  byte-identical at any shard count — this only
//!                  trades threads-across-runs for threads-within-runs
//! --out DIR        also write CSV files under DIR (default: results/)
//! --no-csv         do not write CSV files
//! --trace[=DIR]    record per-message lifecycle traces for every run
//!                  and write `<run>.trace.jsonl` + `<run>.trace.json`
//!                  (Chrome trace_event) under DIR (default:
//!                  results/trace/)
//! --faults SCENARIO  inject a named fault scenario into every run and
//!                  report the per-cause degradation accounting
//!                  (scenarios: broker-crash registry-restart link-burst
//!                  partition servlet-stall slowdown chaos)
//! --profile[=DIR]  attribute simulated CPU time to components with the
//!                  virtual-time profiler, print each run's self-time
//!                  table, and write `<run>.selftime.txt`,
//!                  `<run>.collapsed.txt` (flamegraph collapsed stacks),
//!                  `<run>.prom.txt` (Prometheus text exposition) and
//!                  `<run>.metrics.csv` under DIR (default:
//!                  results/prof/)
//! --scope[=DIR]    attribute real wall-clock time to kernel hot paths
//!                  (queue push/pop, dispatch, fabric delivery, OS
//!                  metering, JMS selector matching) with `simscope`,
//!                  print each run's hot-path + kernel event-accounting
//!                  tables, and write `<run>.hotpath.json`
//!                  (gridmon-hotpath/1) and `<run>.hotpath.collapsed.txt`
//!                  (flamegraph collapsed stacks) under DIR (default:
//!                  results/scope/); instrumented runs stay byte-identical
//!                  to plain ones at the same seed
//! --slo[=DIR]      measure data freshness (Age-of-Information) and
//!                  deadline compliance against the grid default SLO
//!                  (5 s deadline, 99% target) on every run, print the
//!                  compliance table, and write `<run>.slo.csv` (AoI
//!                  sawtooth + burn-window time series) plus
//!                  `compliance.md` under DIR (default: results/slo/);
//!                  the publish stamps ride out-of-band, so measured
//!                  runs stay byte-identical to plain ones on every
//!                  other artifact
//! --bench-json FILE  run the perf-baseline suite (`bench`) and write a
//!                  schema-versioned machine-readable report
//!                  (gridmon-bench/3, with per-event-type kernel
//!                  accounting and freshness/SLO rows) to FILE; compare
//!                  against a committed baseline with `bench_gate` or
//!                  `bench_diff`
//! ```

use harness::{artifacts, Campaign};
use std::io::Write;

const VALID_OPTIONS: &str = "--scale --threads --shards --out --no-csv --trace[=DIR] \
     --faults --profile[=DIR] --scope[=DIR] --slo[=DIR] --bench-json --list-scenarios --help";

struct Options {
    scale: u32,
    threads: usize,
    shards: usize,
    out: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    profile: Option<std::path::PathBuf>,
    scope: Option<std::path::PathBuf>,
    slo: Option<std::path::PathBuf>,
    bench_json: Option<std::path::PathBuf>,
    faults: Option<gridmon_core::FaultSchedule>,
    artifacts: Vec<String>,
}

fn parse_fault_scenario(name: &str) -> Result<gridmon_core::FaultSchedule, String> {
    gridmon_core::FaultSchedule::scenario(name).ok_or_else(|| {
        format!(
            "unknown fault scenario {name:?} (one of: {}){}",
            gridmon_core::FaultSchedule::SCENARIOS.join(" "),
            suggestion(name, gridmon_core::FaultSchedule::SCENARIOS.iter().copied())
        )
    })
}

/// Edit distance between two ASCII-ish names (full Levenshtein; the
/// candidate lists are tiny, so the O(a·b) table is irrelevant).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// ` — did you mean "X"?` for the closest candidate within a third of
/// its length (so rubbish input gets no misleading suggestion), or "".
fn suggestion<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> String {
    candidates
        .map(|c| (edit_distance(name, c), c))
        .min()
        .filter(|&(d, c)| d > 0 && d <= (c.len() / 3).max(2))
        .map(|(_, c)| format!(" — did you mean {c:?}?"))
        .unwrap_or_default()
}

/// The value of `--opt value` / `--opt=value`, from `inline` (the text
/// after `=`, if any) or the next argument.
fn take_value(
    opt: &str,
    inline: Option<&str>,
    args: &mut impl Iterator<Item = String>,
) -> Result<String, String> {
    match inline {
        Some(v) if !v.is_empty() => Ok(v.to_owned()),
        Some(_) => Err(format!("{opt}= needs a value")),
        None => args.next().ok_or_else(|| format!("{opt} needs a value")),
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut scale = 180u32;
    let mut threads = 0usize;
    let mut shards = 1usize;
    let mut out = Some(std::path::PathBuf::from("results"));
    let mut trace = None;
    let mut profile = None;
    let mut scope = None;
    let mut slo = None;
    let mut bench_json = None;
    let mut faults = None;
    let mut artifacts = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if !a.starts_with('-') {
            artifacts.push(a);
            continue;
        }
        let (opt, inline) = match a.split_once('=') {
            Some((o, v)) => (o.to_owned(), Some(v.to_owned())),
            None => (a, None),
        };
        match opt.as_str() {
            "--scale" => {
                scale = take_value("--scale", inline.as_deref(), &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--threads" => {
                threads = take_value("--threads", inline.as_deref(), &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--shards" => {
                shards = take_value("--shards", inline.as_deref(), &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if shards == 0 {
                    return Err("bad --shards: need at least 1".into());
                }
            }
            "--out" => {
                out = Some(std::path::PathBuf::from(take_value(
                    "--out",
                    inline.as_deref(),
                    &mut args,
                )?));
            }
            "--no-csv" => out = None,
            "--trace" => {
                trace = Some(std::path::PathBuf::from(match inline {
                    Some(dir) if !dir.is_empty() => dir,
                    Some(_) => return Err("--trace= needs a directory (or bare --trace)".into()),
                    None => "results/trace".to_owned(),
                }));
            }
            "--profile" => {
                profile = Some(std::path::PathBuf::from(match inline {
                    Some(dir) if !dir.is_empty() => dir,
                    Some(_) => {
                        return Err("--profile= needs a directory (or bare --profile)".into())
                    }
                    None => "results/prof".to_owned(),
                }));
            }
            "--scope" => {
                scope = Some(std::path::PathBuf::from(match inline {
                    Some(dir) if !dir.is_empty() => dir,
                    Some(_) => return Err("--scope= needs a directory (or bare --scope)".into()),
                    None => "results/scope".to_owned(),
                }));
            }
            "--slo" => {
                slo = Some(std::path::PathBuf::from(match inline {
                    Some(dir) if !dir.is_empty() => dir,
                    Some(_) => return Err("--slo= needs a directory (or bare --slo)".into()),
                    None => "results/slo".to_owned(),
                }));
            }
            "--bench-json" => {
                bench_json = Some(std::path::PathBuf::from(take_value(
                    "--bench-json",
                    inline.as_deref(),
                    &mut args,
                )?));
            }
            "--faults" => {
                faults = Some(parse_fault_scenario(&take_value(
                    "--faults",
                    inline.as_deref(),
                    &mut args,
                )?)?);
            }
            "--list-scenarios" => artifacts.push("list-scenarios".to_owned()),
            "--help" | "-h" => artifacts.push("help".to_owned()),
            other => {
                return Err(format!(
                    "unknown option {other} (valid options: {VALID_OPTIONS})"
                ));
            }
        }
    }
    if artifacts.is_empty() && bench_json.is_none() {
        artifacts.push("help".to_owned());
    }
    Ok(Options {
        scale,
        threads,
        shards,
        out,
        trace,
        profile,
        scope,
        slo,
        bench_json,
        faults,
        artifacts,
    })
}

/// Every artifact `repro` can build, with the one-line description
/// `--list-scenarios` prints. Order is the `all` execution order.
const ARTIFACTS: &[(&str, &str)] = &[
    (
        "table1",
        "hardware and software calibration constants (Table I)",
    ),
    (
        "table2",
        "Narada comparison test settings and measured loss (Table II)",
    ),
    (
        "fig3",
        "Narada comparison tests: RTT mean and standard deviation",
    ),
    ("fig4", "Narada comparison tests: RTT percentiles 95-100"),
    (
        "fig5",
        "distributed broker architecture as deployed (topology)",
    ),
    ("fig6", "Narada CPU idle and memory vs connections"),
    (
        "fig7",
        "Narada RTT and stddev vs connections (single vs DBN)",
    ),
    (
        "fig8",
        "Narada single-broker RTT percentiles per connection count",
    ),
    ("fig9", "Narada DBN RTT percentiles per connection count"),
    (
        "fig10",
        "R-GMA Primary + Secondary Producer RTT percentiles",
    ),
    (
        "fig11",
        "R-GMA RTT and stddev vs connections (single vs distributed)",
    ),
    (
        "fig12",
        "R-GMA single-server RTT percentiles per connection count",
    ),
    ("fig13", "R-GMA CPU idle and memory (single vs distributed)"),
    (
        "fig14",
        "R-GMA distributed RTT percentiles per connection count",
    ),
    (
        "fig15",
        "RTT decomposition (PRT / PT / SRT), cumulative phases",
    ),
    (
        "table3",
        "qualitative comparison derived from the measurements (Table III)",
    ),
    (
        "rgma-warmup",
        "S-III.F warm-up loss study (with vs without the wait)",
    ),
    (
        "ablation-routing",
        "DBN broadcast (v1.1.3) vs subscription-aware routing",
    ),
    (
        "ablation-secondary",
        "Secondary Producer 30 s delay on vs off",
    ),
    (
        "ablation-poll",
        "subscriber poll period sweep (10 ms - 1 s)",
    ),
    (
        "ablation-aggregation",
        "sender-side aggregation at constant byte rate",
    ),
    (
        "gridlog",
        "gridlog partitioned-log scalability series (500-2000 conns)",
    ),
    (
        "compare",
        "three-way Narada/R-GMA/gridlog RTT + outage-loss comparison",
    ),
    (
        "checks",
        "headline paper findings checked against measurements",
    ),
];

/// One-line descriptions of the named fault scenarios, keyed to
/// `FaultSchedule::SCENARIOS` (a unit test keeps them in lockstep).
const FAULT_SCENARIOS: &[(&str, &str)] = &[
    (
        "broker-crash",
        "broker 0 JVM dies at t=120 s, restarts at t=150 s",
    ),
    (
        "registry-restart",
        "R-GMA registry soft state wiped at t=120 s",
    ),
    ("link-burst", "25% random frame loss on every link for 30 s"),
    ("partition", "node 0 cut off from the network for 20 s"),
    ("servlet-stall", "node 0 servlets answer 503 for 20 s"),
    ("slowdown", "node 0 CPU 4x slower for 60 s"),
    (
        "chaos",
        "loss burst + broker crash/restart + registry wipe + slowdown",
    ),
];

/// `--list-scenarios`: every named scenario — artifacts, fault
/// schedules, and the named experiment specs behind `bench`, `gridlog`
/// and `compare` — with one-line descriptions.
fn list_scenarios(scale: u32) {
    println!("artifacts (repro <name>):");
    for (name, desc) in ARTIFACTS {
        println!("  {name:<22} {desc}");
    }
    println!(
        "  {:<22} perf-baseline suite (see also --bench-json)",
        "bench"
    );
    println!("  {:<22} every artifact above", "all");
    println!("\nfault scenarios (--faults=<name>):");
    for (name, desc) in FAULT_SCENARIOS {
        println!("  {name:<22} {desc}");
    }
    {
        let slo = gridmon_core::SloSpec::grid_default();
        println!(
            "\nfreshness / SLO plane (--slo[=DIR]): grid default = {} ms \
             deadline, {:.0}% on-time target; applies to every spec below",
            slo.deadline.as_millis_f64(),
            slo.target_fraction * 100.0
        );
    }
    println!("\nexperiment specs (run via the artifacts that own them):");
    let catalogues: [(&str, Vec<gridmon_core::ExperimentSpec>); 3] = [
        ("bench", gridmon_core::scenarios::bench_specs(scale)),
        (
            "gridlog",
            gridmon_core::scenarios::gridlog_single_specs(scale),
        ),
        ("compare", {
            let mut v = gridmon_core::scenarios::three_way_specs(scale);
            v.extend(gridmon_core::scenarios::three_way_outage_specs(scale));
            v
        }),
    ];
    for (owner, specs) in catalogues {
        for s in specs {
            let faults = if s.faults.is_empty() {
                String::new()
            } else {
                format!(", {} fault event(s)", s.faults.events.len())
            };
            println!(
                "  {:<30} [{owner}] {:?}, {} generators x {} msgs{faults}",
                s.name, s.system, s.generators, s.msgs_per_generator
            );
        }
    }
}

fn write_csv(out: &Option<std::path::PathBuf>, name: &str, csv: &str) {
    let Some(dir) = out else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(csv.as_bytes());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let artifact_names: Vec<&str> = ARTIFACTS.iter().map(|(n, _)| *n).collect();
    if opts.artifacts.iter().any(|a| a == "help") {
        eprintln!(
            "repro — regenerate the IPPS 2007 pub/sub study artifacts\n\n\
             usage: repro [--scale=N] [--threads=N] [--shards=N] \
             [--out=DIR | --no-csv] [--trace[=DIR]] [--faults=SCENARIO] \
             [--profile[=DIR]] [--scope[=DIR]] [--slo[=DIR]] \
             [--bench-json=FILE] [--list-scenarios] <artifact>...\n\n\
             artifacts: {} bench all\n\
             fault scenarios: {}\n\n\
             --list-scenarios describes every named scenario",
            artifact_names.join(" "),
            gridmon_core::FaultSchedule::SCENARIOS.join(" ")
        );
        return;
    }
    if opts.artifacts.iter().any(|a| a == "list-scenarios") {
        list_scenarios(opts.scale);
        return;
    }
    let names: Vec<String> = if opts.artifacts.iter().any(|a| a == "all") {
        artifact_names.iter().map(|s| (*s).to_owned()).collect()
    } else {
        opts.artifacts.clone()
    };
    // Validate artifact names before running anything: a typo at the end
    // of the list must not cost a full campaign first.
    for name in &names {
        if name != "bench" && !artifact_names.contains(&name.as_str()) {
            eprintln!(
                "error: unknown artifact {name:?} (artifacts: {} bench all){}",
                artifact_names.join(" "),
                suggestion(name, artifact_names.iter().copied().chain(["bench", "all"]))
            );
            std::process::exit(2);
        }
    }

    let mut campaign = Campaign::new(opts.threads);
    campaign.set_shards(opts.shards);
    campaign.set_trace(opts.trace.is_some());
    campaign.set_profile(opts.profile.is_some() || opts.bench_json.is_some());
    campaign.set_scope(opts.scope.is_some());
    if opts.slo.is_some() {
        campaign.set_slo(Some(gridmon_core::SloSpec::grid_default()));
    }
    if let Some(faults) = &opts.faults {
        campaign.set_faults(faults.clone());
    }
    let scale = opts.scale;
    let mut timer = gridmon_bench::SelfTimer::start();
    for name in &names {
        match name.as_str() {
            "table1" => {
                let t = artifacts::table1();
                println!("{}", t.render());
                write_csv(&opts.out, "table1", &t.to_csv());
            }
            "table2" => {
                let t = artifacts::table2(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "table2", &t.to_csv());
            }
            "table3" => {
                let t = artifacts::table3(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "table3", &t.to_csv());
            }
            "fig3" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig3),
            "fig4" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig4),
            "fig5" => {
                let t = artifacts::fig5();
                println!("{}", t.render());
                write_csv(&opts.out, "fig5", &t.to_csv());
            }
            "fig6" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig6),
            "fig7" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig7),
            "fig8" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig8),
            "fig9" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig9),
            "fig10" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig10),
            "fig11" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig11),
            "fig12" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig12),
            "fig13" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig13),
            "fig14" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig14),
            "fig15" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig15),
            "rgma-warmup" => {
                let t = artifacts::rgma_warmup(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "rgma-warmup", &t.to_csv());
            }
            "ablation-routing" => {
                let t = artifacts::ablation_routing(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-routing", &t.to_csv());
            }
            "ablation-secondary" => {
                let t = artifacts::ablation_secondary(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-secondary", &t.to_csv());
            }
            "ablation-poll" => {
                let t = artifacts::ablation_poll(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-poll", &t.to_csv());
            }
            "ablation-aggregation" => {
                let t = artifacts::ablation_aggregation(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-aggregation", &t.to_csv());
            }
            "gridlog" => {
                let t = artifacts::gridlog_scaling(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "gridlog", &t.to_csv());
            }
            "compare" => {
                let t = artifacts::three_way(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "compare", &t.to_csv());
                if opts.slo.is_some() {
                    let t = artifacts::three_way_slo(&mut campaign, scale);
                    println!("{}", t.render());
                    write_csv(&opts.out, "compare-slo", &t.to_csv());
                }
            }
            "checks" => {
                let checks = artifacts::headline_checks(&mut campaign, scale);
                let mut table = telemetry::Table::new(
                    "Paper findings vs measurements",
                    &["claim", "paper", "measured", "holds"],
                );
                let mut failures = 0;
                for (claim, paper, measured, holds) in checks {
                    if !holds {
                        failures += 1;
                    }
                    table.push_row(vec![
                        claim,
                        paper,
                        measured,
                        if holds { "yes".into() } else { "NO".into() },
                    ]);
                }
                println!("{}", table.render());
                write_csv(&opts.out, "checks", &table.to_csv());
                if failures > 0 {
                    eprintln!("{failures} checks failed");
                }
            }
            "bench" => {
                run_bench_suite(&mut campaign, scale, &mut timer);
            }
            _ => unreachable!("validated above"),
        }
    }
    if let Some(path) = &opts.bench_json {
        let results = run_bench_suite(&mut campaign, scale, &mut timer);
        let report = harness::bench::BenchReport::from_results(
            &results,
            scale,
            opts.threads,
            opts.shards,
            timer.total_secs(),
        );
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("perf baseline written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if opts.faults.is_some() {
        for (name, stats) in campaign.fault_stats() {
            let table = telemetry::degradation_table(
                format!("Fault campaign degradation — {name}"),
                &stats.rows(),
            );
            println!("{}", table.render());
            write_csv(
                &opts.out,
                &format!("{}.faults", name.replace(['/', ' '], "_")),
                &table.to_csv(),
            );
        }
    }
    if let Some(dir) = &opts.trace {
        match campaign.write_traces(dir) {
            Ok((files, disagreements)) => {
                eprintln!("{files} trace files written under {}", dir.display());
                if disagreements > 0 {
                    eprintln!(
                        "WARNING: {disagreements} trace/RttCollector cross-check \
                         disagreements — the trace and the telemetry disagree \
                         about when messages moved; this indicates a bug"
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot write traces: {e}"),
        }
    }
    if let Some(dir) = &opts.profile {
        for (name, table) in campaign.profile_tables() {
            let _ = name;
            println!("{table}");
        }
        match campaign.write_profiles(dir) {
            Ok(files) => eprintln!("{files} profile files written under {}", dir.display()),
            Err(e) => eprintln!("warning: cannot write profiles: {e}"),
        }
    }
    if let Some(dir) = &opts.scope {
        for (_name, summary) in campaign.scope_tables() {
            println!("{summary}");
        }
        match campaign.write_scopes(dir) {
            Ok(files) => eprintln!("{files} hot-path files written under {}", dir.display()),
            Err(e) => eprintln!("warning: cannot write hot-path reports: {e}"),
        }
    }
    if let Some(dir) = &opts.slo {
        if let Some(table) = campaign.slo_table() {
            println!("{table}");
        }
        match campaign.write_slo(dir) {
            Ok(files) => eprintln!("{files} freshness files written under {}", dir.display()),
            Err(e) => eprintln!("warning: cannot write freshness reports: {e}"),
        }
    }
    eprintln!(
        "{} experiments, {:.1}s simulated-experiment wall time, {:.1}s total",
        campaign.runs(),
        campaign.wall_seconds,
        timer.total_secs()
    );
}

/// Run (or fetch memoized) the perf-baseline suite and print its
/// summary table.
fn run_bench_suite(
    campaign: &mut Campaign,
    scale: u32,
    timer: &mut gridmon_bench::SelfTimer,
) -> Vec<gridmon_core::ExperimentResult> {
    let specs = gridmon_core::scenarios::bench_specs(scale);
    let results = timer.span("bench-suite", || campaign.ensure(&specs));
    let mut table = telemetry::Table::new(
        "Perf baseline suite",
        &[
            "run",
            "sent",
            "received",
            "events",
            "peak depth",
            "timers",
            "RTT mean ms",
            "wall s",
        ],
    );
    for r in &results {
        table.push_row(vec![
            r.name.clone(),
            r.summary.sent.to_string(),
            r.summary.received.to_string(),
            r.events.to_string(),
            r.kernel.peak_queue_depth.to_string(),
            r.kernel.timer_scheduled.to_string(),
            format!("{:.2}", r.summary.rtt_mean_ms),
            format!("{:.3}", r.wall_secs),
        ]);
    }
    println!("{}", table.render());
    results
}

fn emit_fig(
    campaign: &mut Campaign,
    scale: u32,
    out: &Option<std::path::PathBuf>,
    f: fn(&mut Campaign, u32) -> telemetry::Figure,
) {
    let fig = f(campaign, scale);
    println!("{}", fig.render());
    write_csv(out, &fig.id.clone(), &fig.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_descriptions_cover_every_scenario() {
        let described: Vec<&str> = FAULT_SCENARIOS.iter().map(|(n, _)| *n).collect();
        assert_eq!(described, gridmon_core::FaultSchedule::SCENARIOS);
    }

    #[test]
    fn artifact_list_has_no_duplicates_and_reserved_names() {
        let mut names: Vec<&str> = ARTIFACTS.iter().map(|(n, _)| *n).collect();
        assert!(!names.contains(&"bench") && !names.contains(&"all"));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn suggestion_finds_near_misses_and_ignores_rubbish() {
        assert_eq!(edit_distance("fig13", "fig13"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        let arts = || ARTIFACTS.iter().map(|(n, _)| *n);
        assert_eq!(suggestion("checkz", arts()), " — did you mean \"checks\"?");
        assert_eq!(
            suggestion(
                "broker-cash",
                gridmon_core::FaultSchedule::SCENARIOS.iter().copied()
            ),
            " — did you mean \"broker-crash\"?"
        );
        assert_eq!(suggestion("zzzzzzzz", arts()), "");
        // Exact matches never reach `suggestion`, but guard anyway.
        assert_eq!(suggestion("fig3", arts()), "");
    }

    #[test]
    fn parse_args_handles_slo_flag_grammar() {
        let bare = parse_args(["--slo".to_owned(), "compare".to_owned()].into_iter()).unwrap();
        assert_eq!(
            bare.slo.as_deref(),
            Some(std::path::Path::new("results/slo"))
        );
        let with_dir = parse_args(["--slo=fresh".to_owned()].into_iter()).unwrap();
        assert_eq!(with_dir.slo.as_deref(), Some(std::path::Path::new("fresh")));
        let err = parse_args(["--slo=".to_owned()].into_iter()).err().unwrap();
        assert!(err.contains("--slo="), "{err}");
        let unknown = parse_args(["--sloo".to_owned()].into_iter()).err().unwrap();
        assert!(unknown.contains("--slo[=DIR]"), "{unknown}");
    }

    #[test]
    fn parse_args_accepts_list_scenarios() {
        let opts = parse_args(["--list-scenarios".to_owned()].into_iter()).unwrap();
        assert_eq!(opts.artifacts, vec!["list-scenarios"]);
        let err = parse_fault_scenario("broker-cash").unwrap_err();
        assert!(err.contains("did you mean"), "{err}");
    }
}
