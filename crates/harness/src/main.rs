//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale N] [--threads N] [--out DIR] [--trace[=DIR]]
//!       [--faults SCENARIO] <artifact>...
//!
//! artifacts: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!            fig10 fig11 fig12 fig13 fig14 fig15 rgma-warmup
//!            ablation-routing ablation-secondary ablation-poll
//!            checks all
//!
//! --scale N    messages per generator (default 180 = the paper's 30 min)
//! --threads N  worker threads (default: all cores)
//! --out DIR    also write CSV files under DIR (default: results/)
//! --trace[=DIR] record per-message lifecycle traces for every run and
//!              write `<run>.trace.jsonl` + `<run>.trace.json` (Chrome
//!              trace_event) under DIR (default: results/trace/)
//! --faults SCENARIO  inject a named fault scenario into every run and
//!              report the per-cause degradation accounting (scenarios:
//!              broker-crash registry-restart link-burst partition
//!              servlet-stall slowdown chaos)
//! ```

use harness::{artifacts, Campaign};
use std::io::Write;

struct Options {
    scale: u32,
    threads: usize,
    out: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    faults: Option<gridmon_core::FaultSchedule>,
    artifacts: Vec<String>,
}

fn parse_fault_scenario(name: &str) -> Result<gridmon_core::FaultSchedule, String> {
    gridmon_core::FaultSchedule::scenario(name).ok_or_else(|| {
        format!(
            "unknown fault scenario {name:?} (one of: {})",
            gridmon_core::FaultSchedule::SCENARIOS.join(" ")
        )
    })
}

fn parse_args() -> Result<Options, String> {
    let mut scale = 180u32;
    let mut threads = 0usize;
    let mut out = Some(std::path::PathBuf::from("results"));
    let mut trace = None;
    let mut faults = None;
    let mut artifacts = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace = Some(std::path::PathBuf::from("results/trace"));
            continue;
        }
        if let Some(dir) = a.strip_prefix("--trace=") {
            if dir.is_empty() {
                return Err("--trace= needs a directory (or use bare --trace)".into());
            }
            trace = Some(std::path::PathBuf::from(dir));
            continue;
        }
        if let Some(name) = a.strip_prefix("--faults=") {
            faults = Some(parse_fault_scenario(name)?);
            continue;
        }
        if a == "--faults" {
            let name = args.next().ok_or("--faults needs a scenario name")?;
            faults = Some(parse_fault_scenario(&name)?);
            continue;
        }
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--out" => {
                out = Some(std::path::PathBuf::from(
                    args.next().ok_or("--out needs a value")?,
                ));
            }
            "--no-csv" => out = None,
            "--help" | "-h" => {
                artifacts.push("help".to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => artifacts.push(name.to_owned()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("help".to_owned());
    }
    Ok(Options {
        scale,
        threads,
        out,
        trace,
        faults,
        artifacts,
    })
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "table3",
    "rgma-warmup",
    "ablation-routing",
    "ablation-secondary",
    "ablation-poll",
    "ablation-aggregation",
    "checks",
];

fn write_csv(out: &Option<std::path::PathBuf>, name: &str, csv: &str) {
    let Some(dir) = out else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(csv.as_bytes());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if opts.artifacts.iter().any(|a| a == "help") {
        eprintln!(
            "repro — regenerate the IPPS 2007 pub/sub study artifacts\n\n\
             usage: repro [--scale N] [--threads N] [--out DIR | --no-csv] \
             [--trace[=DIR]] [--faults SCENARIO] <artifact>...\n\n\
             artifacts: {} all\n\
             fault scenarios: {}",
            ALL.join(" "),
            gridmon_core::FaultSchedule::SCENARIOS.join(" ")
        );
        return;
    }
    let names: Vec<String> = if opts.artifacts.iter().any(|a| a == "all") {
        ALL.iter().map(|s| (*s).to_owned()).collect()
    } else {
        opts.artifacts.clone()
    };

    let mut campaign = Campaign::new(opts.threads);
    campaign.set_trace(opts.trace.is_some());
    if let Some(faults) = &opts.faults {
        campaign.set_faults(faults.clone());
    }
    let scale = opts.scale;
    let t0 = std::time::Instant::now();
    for name in &names {
        match name.as_str() {
            "table1" => {
                let t = artifacts::table1();
                println!("{}", t.render());
                write_csv(&opts.out, "table1", &t.to_csv());
            }
            "table2" => {
                let t = artifacts::table2(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "table2", &t.to_csv());
            }
            "table3" => {
                let t = artifacts::table3(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "table3", &t.to_csv());
            }
            "fig3" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig3),
            "fig4" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig4),
            "fig5" => {
                let t = artifacts::fig5();
                println!("{}", t.render());
                write_csv(&opts.out, "fig5", &t.to_csv());
            }
            "fig6" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig6),
            "fig7" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig7),
            "fig8" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig8),
            "fig9" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig9),
            "fig10" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig10),
            "fig11" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig11),
            "fig12" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig12),
            "fig13" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig13),
            "fig14" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig14),
            "fig15" => emit_fig(&mut campaign, scale, &opts.out, artifacts::fig15),
            "rgma-warmup" => {
                let t = artifacts::rgma_warmup(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "rgma-warmup", &t.to_csv());
            }
            "ablation-routing" => {
                let t = artifacts::ablation_routing(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-routing", &t.to_csv());
            }
            "ablation-secondary" => {
                let t = artifacts::ablation_secondary(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-secondary", &t.to_csv());
            }
            "ablation-poll" => {
                let t = artifacts::ablation_poll(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-poll", &t.to_csv());
            }
            "ablation-aggregation" => {
                let t = artifacts::ablation_aggregation(&mut campaign, scale);
                println!("{}", t.render());
                write_csv(&opts.out, "ablation-aggregation", &t.to_csv());
            }
            "checks" => {
                let checks = artifacts::headline_checks(&mut campaign, scale);
                let mut table = telemetry::Table::new(
                    "Paper findings vs measurements",
                    &["claim", "paper", "measured", "holds"],
                );
                let mut failures = 0;
                for (claim, paper, measured, holds) in checks {
                    if !holds {
                        failures += 1;
                    }
                    table.push_row(vec![
                        claim,
                        paper,
                        measured,
                        if holds { "yes".into() } else { "NO".into() },
                    ]);
                }
                println!("{}", table.render());
                write_csv(&opts.out, "checks", &table.to_csv());
                if failures > 0 {
                    eprintln!("{failures} checks failed");
                }
            }
            other => {
                eprintln!("unknown artifact {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    if opts.faults.is_some() {
        for (name, stats) in campaign.fault_stats() {
            let table = telemetry::degradation_table(
                format!("Fault campaign degradation — {name}"),
                &stats.rows(),
            );
            println!("{}", table.render());
            write_csv(
                &opts.out,
                &format!("{}.faults", name.replace(['/', ' '], "_")),
                &table.to_csv(),
            );
        }
    }
    if let Some(dir) = &opts.trace {
        match campaign.write_traces(dir) {
            Ok((files, disagreements)) => {
                eprintln!("{files} trace files written under {}", dir.display());
                if disagreements > 0 {
                    eprintln!(
                        "WARNING: {disagreements} trace/RttCollector cross-check \
                         disagreements — the trace and the telemetry disagree \
                         about when messages moved; this indicates a bug"
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot write traces: {e}"),
        }
    }
    eprintln!(
        "{} experiments, {:.1}s simulated-experiment wall time, {:.1}s total",
        campaign.runs(),
        campaign.wall_seconds,
        t0.elapsed().as_secs_f64()
    );
}

fn emit_fig(
    campaign: &mut Campaign,
    scale: u32,
    out: &Option<std::path::PathBuf>,
    f: fn(&mut Campaign, u32) -> telemetry::Figure,
) {
    let fig = f(campaign, scale);
    println!("{}", fig.render());
    write_csv(out, &fig.id.clone(), &fig.to_csv());
}
