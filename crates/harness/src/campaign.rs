//! Memoized parallel execution of experiment specs.

use gridmon_core::{run_all, ExperimentResult, ExperimentSpec, FaultSchedule, FaultStats, SloSpec};
use std::collections::HashMap;

/// Runs specs on demand, caching results by spec name so artifacts that
/// share runs (fig 3 / fig 4; figs 6–9) pay for them once.
pub struct Campaign {
    threads: usize,
    shards: usize,
    trace: bool,
    profile: bool,
    scope: bool,
    slo: Option<SloSpec>,
    faults: FaultSchedule,
    results: HashMap<String, ExperimentResult>,
    /// Wall-clock seconds spent running experiments.
    pub wall_seconds: f64,
}

impl Campaign {
    /// New campaign; `threads = 0` uses all cores.
    pub fn new(threads: usize) -> Self {
        Campaign {
            threads,
            shards: 1,
            trace: false,
            profile: false,
            scope: false,
            slo: None,
            faults: FaultSchedule::new(),
            results: HashMap::new(),
            wall_seconds: 0.0,
        }
    }

    /// Enable `simtrace` lifecycle tracing on every spec this campaign
    /// runs from now on (`--trace`).
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
    }

    /// Enable the virtual-time profiler + metrics plane on every spec
    /// this campaign runs from now on (`--profile`).
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// Enable wall-clock hot-path attribution (`simscope`) on every
    /// spec this campaign runs from now on (`--scope`).
    pub fn set_scope(&mut self, on: bool) {
        self.scope = on;
    }

    /// Inject this fault schedule into every spec this campaign runs
    /// from now on (`--faults <scenario>`).
    pub fn set_faults(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// Measure data freshness and deadline compliance against `spec` on
    /// every run this campaign executes from now on (`--slo`).
    pub fn set_slo(&mut self, spec: Option<SloSpec>) {
        self.slo = spec;
    }

    /// Run every spec on `shards` conservative parallel shards
    /// (`--shards N`; 1 = the serial event loop). Results are
    /// byte-identical across shard counts, so this only changes how the
    /// wall clock is spent.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Ensure every spec has been run; returns results in spec order.
    pub fn ensure(&mut self, specs: &[ExperimentSpec]) -> Vec<ExperimentResult> {
        let missing: Vec<ExperimentSpec> = specs
            .iter()
            .filter(|s| !self.results.contains_key(&s.name))
            .cloned()
            .map(|mut s| {
                s.trace |= self.trace;
                s.profile |= self.profile;
                s.scope |= self.scope;
                s.shards = s.shards.max(self.shards);
                if s.faults.is_empty() {
                    s.faults = self.faults.clone();
                }
                if s.slo.is_none() {
                    s.slo = self.slo.clone();
                }
                s
            })
            .collect();
        if !missing.is_empty() {
            let t0 = std::time::Instant::now();
            for r in run_all(&missing, self.threads) {
                self.results.insert(r.name.clone(), r);
            }
            self.wall_seconds += t0.elapsed().as_secs_f64();
        }
        specs
            .iter()
            .map(|s| self.results[&s.name].clone())
            .collect()
    }

    /// Number of distinct experiments run so far.
    pub fn runs(&self) -> usize {
        self.results.len()
    }

    /// Degradation accounting of every fault-injected run, sorted by
    /// run name. Empty when no spec carried a fault schedule.
    pub fn fault_stats(&self) -> Vec<(String, FaultStats)> {
        let mut rows: Vec<(String, FaultStats)> = self
            .results
            .iter()
            .filter_map(|(name, r)| r.fault_stats.map(|s| (name.clone(), s)))
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Write the trace artifacts of every traced run under `dir`:
    /// `<name>.trace.jsonl` (events + unified resource log) and
    /// `<name>.trace.json` (Chrome `trace_event`, Perfetto-loadable).
    /// Returns `(files written, cross-check disagreements)`.
    pub fn write_traces(&self, dir: &std::path::Path) -> std::io::Result<(usize, usize)> {
        let mut files = 0;
        let mut disagreements = 0;
        let mut names: Vec<&String> = self.results.keys().collect();
        names.sort_unstable();
        for name in names {
            let r = &self.results[name];
            let Some(trace) = &r.trace else { continue };
            std::fs::create_dir_all(dir)?;
            let stem: String = name
                .chars()
                .map(|c| if c == '/' || c == ' ' { '_' } else { c })
                .collect();
            std::fs::write(dir.join(format!("{stem}.trace.jsonl")), &trace.jsonl)?;
            std::fs::write(dir.join(format!("{stem}.trace.json")), &trace.chrome)?;
            files += 2;
            for d in &trace.disagreements {
                eprintln!("trace cross-check [{name}]: {d}");
            }
            disagreements += trace.disagreements.len();
        }
        Ok((files, disagreements))
    }
}

impl Campaign {
    /// Rendered per-component self-time tables of every profiled run,
    /// sorted by run name (the `--profile` terminal output).
    pub fn profile_tables(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = self
            .results
            .iter()
            .filter_map(|(name, r)| r.profile.as_ref().map(|p| (name.clone(), p.table.clone())))
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Write the profiler artifacts of every profiled run under `dir`:
    /// `<name>.selftime.txt` (the rendered per-component table),
    /// `<name>.collapsed.txt` (flamegraph collapsed stacks — feed to
    /// `flamegraph.pl` / inferno), `<name>.prom.txt` (Prometheus text
    /// exposition) and `<name>.metrics.csv` (deterministic time series).
    /// Returns the number of files written.
    pub fn write_profiles(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let mut files = 0;
        let mut names: Vec<&String> = self.results.keys().collect();
        names.sort_unstable();
        for name in names {
            let r = &self.results[name];
            let Some(prof) = &r.profile else { continue };
            std::fs::create_dir_all(dir)?;
            let stem: String = name
                .chars()
                .map(|c| if c == '/' || c == ' ' { '_' } else { c })
                .collect();
            std::fs::write(dir.join(format!("{stem}.selftime.txt")), &prof.table)?;
            std::fs::write(dir.join(format!("{stem}.collapsed.txt")), &prof.collapsed)?;
            std::fs::write(dir.join(format!("{stem}.prom.txt")), &prof.prometheus)?;
            std::fs::write(dir.join(format!("{stem}.metrics.csv")), &prof.metrics_csv)?;
            files += 4;
        }
        Ok(files)
    }

    /// One compliance table covering every SLO-measured run, sorted by
    /// run name (the `--slo` terminal output). `None` when no run
    /// carried an SLO spec.
    pub fn slo_table(&self) -> Option<String> {
        let rows = self.slo_rows();
        if rows.is_empty() {
            return None;
        }
        let mut table = telemetry::Table::new(
            "Deadline-SLO compliance".to_string(),
            gridmon_core::SloReport::table_columns(),
        );
        for (_, row) in rows {
            table.push_row(row);
        }
        Some(table.render())
    }

    /// The same compliance rows as a GitHub-flavoured markdown table
    /// (committed next to `slo.csv` by `--slo=DIR`).
    pub fn slo_markdown(&self) -> Option<String> {
        let rows = self.slo_rows();
        if rows.is_empty() {
            return None;
        }
        let cols = gridmon_core::SloReport::table_columns();
        let mut out = String::from("# Deadline-SLO compliance\n\n");
        out.push_str(&format!("| {} |\n", cols.join(" | ")));
        out.push_str(&format!("|{}\n", " --- |".repeat(cols.len())));
        for (_, row) in rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        Some(out)
    }

    fn slo_rows(&self) -> Vec<(String, Vec<String>)> {
        let mut rows: Vec<(String, Vec<String>)> = self
            .results
            .iter()
            .filter_map(|(name, r)| {
                r.slo
                    .as_ref()
                    .map(|s| (name.clone(), s.report.table_row(name)))
            })
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Write the freshness artifacts of every SLO-measured run under
    /// `dir`: `<name>.slo.csv` (AoI sawtooth + burn-window time series)
    /// plus one `compliance.md` markdown table covering all runs.
    /// Returns the number of files written.
    pub fn write_slo(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let mut files = 0;
        let mut names: Vec<&String> = self.results.keys().collect();
        names.sort_unstable();
        for name in names {
            let r = &self.results[name];
            let Some(slo) = &r.slo else { continue };
            std::fs::create_dir_all(dir)?;
            let stem: String = name
                .chars()
                .map(|c| if c == '/' || c == ' ' { '_' } else { c })
                .collect();
            std::fs::write(dir.join(format!("{stem}.slo.csv")), &slo.csv)?;
            files += 1;
        }
        if let Some(md) = self.slo_markdown() {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join("compliance.md"), md)?;
            files += 1;
        }
        Ok(files)
    }

    /// Rendered hot-path attribution + kernel event-accounting summary
    /// of every scoped run, sorted by run name (the `--scope` terminal
    /// output).
    pub fn scope_tables(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = self
            .results
            .iter()
            .filter_map(|(name, r)| {
                r.scope
                    .as_ref()
                    .map(|s| (name.clone(), render_scope(name, s, &r.kernel)))
            })
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Write the hot-path artifacts of every scoped run under `dir`:
    /// `<name>.hotpath.json` (`gridmon-hotpath/1`) and
    /// `<name>.hotpath.collapsed.txt` (flamegraph collapsed stacks,
    /// wall-clock microseconds). Returns the number of files written.
    pub fn write_scopes(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        let mut files = 0;
        let mut names: Vec<&String> = self.results.keys().collect();
        names.sort_unstable();
        for name in names {
            let r = &self.results[name];
            let Some(scope) = &r.scope else { continue };
            std::fs::create_dir_all(dir)?;
            let stem: String = name
                .chars()
                .map(|c| if c == '/' || c == ' ' { '_' } else { c })
                .collect();
            std::fs::write(dir.join(format!("{stem}.hotpath.json")), &scope.json)?;
            std::fs::write(
                dir.join(format!("{stem}.hotpath.collapsed.txt")),
                &scope.collapsed,
            )?;
            files += 2;
        }
        Ok(files)
    }
}

/// Terminal summary of one scoped run: a wall-clock hot-path table and
/// the always-on kernel event accounting next to it, so a regression
/// hunt starts from one screen of context.
fn render_scope(
    name: &str,
    scope: &gridmon_core::ScopeArtifacts,
    kernel: &simcore::KernelStats,
) -> String {
    let mut hot = telemetry::Table::new(
        format!("Hot-path wall time — {name}"),
        &["site", "ms", "count", "ns/op"],
    );
    for row in &scope.report.sites {
        let ns_per_op = row.nanos.checked_div(row.count).unwrap_or(0);
        hot.push_row(vec![
            row.site.clone(),
            format!("{:.3}", row.nanos as f64 / 1e6),
            row.count.to_string(),
            ns_per_op.to_string(),
        ]);
    }
    let mut mix = telemetry::Table::new(
        format!(
            "Kernel event accounting — {name} (peak queue depth {}, {} timers / {} messages)",
            kernel.peak_queue_depth, kernel.timer_scheduled, kernel.message_scheduled
        ),
        &["event type", "scheduled", "executed", "dropped", "timers"],
    );
    for t in &kernel.by_type {
        mix.push_row(vec![
            t.name.clone(),
            t.scheduled.to_string(),
            t.executed.to_string(),
            t.dropped.to_string(),
            t.timers.to_string(),
        ]);
    }
    format!(
        "{}\n(probe overhead ~{} ns/pair)\n\n{}",
        hot.render(),
        scope.report.probe_overhead_ns,
        mix.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmon_core::SystemUnderTest;

    #[test]
    fn memoizes_by_name() {
        let mut c = Campaign::new(2);
        let spec =
            ExperimentSpec::paper_default("memo", SystemUnderTest::NaradaSingle, 4).scaled(2);
        let a = c.ensure(std::slice::from_ref(&spec));
        assert_eq!(c.runs(), 1);
        let b = c.ensure(std::slice::from_ref(&spec));
        assert_eq!(c.runs(), 1, "second call hits the cache");
        assert_eq!(a[0].summary.sent, b[0].summary.sent);
    }
}
