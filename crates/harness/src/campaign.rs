//! Memoized parallel execution of experiment specs.

use gridmon_core::{run_all, ExperimentResult, ExperimentSpec};
use std::collections::HashMap;

/// Runs specs on demand, caching results by spec name so artifacts that
/// share runs (fig 3 / fig 4; figs 6–9) pay for them once.
pub struct Campaign {
    threads: usize,
    results: HashMap<String, ExperimentResult>,
    /// Wall-clock seconds spent running experiments.
    pub wall_seconds: f64,
}

impl Campaign {
    /// New campaign; `threads = 0` uses all cores.
    pub fn new(threads: usize) -> Self {
        Campaign {
            threads,
            results: HashMap::new(),
            wall_seconds: 0.0,
        }
    }

    /// Ensure every spec has been run; returns results in spec order.
    pub fn ensure(&mut self, specs: &[ExperimentSpec]) -> Vec<ExperimentResult> {
        let missing: Vec<ExperimentSpec> = specs
            .iter()
            .filter(|s| !self.results.contains_key(&s.name))
            .cloned()
            .collect();
        if !missing.is_empty() {
            let t0 = std::time::Instant::now();
            for r in run_all(&missing, self.threads) {
                self.results.insert(r.name.clone(), r);
            }
            self.wall_seconds += t0.elapsed().as_secs_f64();
        }
        specs
            .iter()
            .map(|s| self.results[&s.name].clone())
            .collect()
    }

    /// Number of distinct experiments run so far.
    pub fn runs(&self) -> usize {
        self.results.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmon_core::SystemUnderTest;

    #[test]
    fn memoizes_by_name() {
        let mut c = Campaign::new(2);
        let spec =
            ExperimentSpec::paper_default("memo", SystemUnderTest::NaradaSingle, 4).scaled(2);
        let a = c.ensure(std::slice::from_ref(&spec));
        assert_eq!(c.runs(), 1);
        let b = c.ensure(std::slice::from_ref(&spec));
        assert_eq!(c.runs(), 1, "second call hits the cache");
        assert_eq!(a[0].summary.sent, b[0].summary.sent);
    }
}
