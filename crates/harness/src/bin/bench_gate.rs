//! `bench_gate` — CI perf-regression gate.
//!
//! ```text
//! bench_gate [--tolerance=FRACTION] BASELINE.json CANDIDATE.json
//! ```
//!
//! Both files must be `gridmon-bench` reports, schema v1–v3 (see
//! `repro --bench-json`). Exits 0 when the candidate's total wall time
//! is within `tolerance` (default 0.15 = +15 %) of the baseline, the
//! deterministic workload counters match, and — when both sides carry
//! the v3 freshness rows — the p99 delivery latency is within the same
//! tolerance with no drop in SLO compliance; exits 1 on a regression
//! and 2 on usage or parse errors. On failure the message names the
//! breaching scenario and metric and appends the `bench_diff`
//! attribution table, so the log explains the regression instead of
//! just reporting it.

use harness::bench::{gate, BenchReport, DEFAULT_TOLERANCE};

fn run(args: impl Iterator<Item = String>) -> Result<String, (i32, String)> {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut files = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--tolerance=") {
            tolerance = v
                .parse()
                .map_err(|e| (2, format!("bad --tolerance: {e}")))?;
        } else if a.starts_with('-') {
            return Err((2, format!("unknown option {a} (only --tolerance=F)")));
        } else {
            files.push(a);
        }
    }
    let [baseline, candidate] = files.as_slice() else {
        return Err((
            2,
            "usage: bench_gate [--tolerance=F] BASELINE.json CANDIDATE.json".into(),
        ));
    };
    let read_report = |path: &str| -> Result<BenchReport, (i32, String)> {
        let text =
            std::fs::read_to_string(path).map_err(|e| (2, format!("cannot read {path}: {e}")))?;
        BenchReport::parse(&text).map_err(|e| (2, format!("{path}: {e}")))
    };
    let base = read_report(baseline)?;
    let cand = read_report(candidate)?;
    match gate(&base, &cand, tolerance) {
        Ok(report) => Ok(report),
        Err(failures) => {
            let attribution =
                harness::diff::render_markdown(&harness::diff::diff(&base, &cand, tolerance));
            Err((1, format!("{}\n\n{attribution}", failures.join("\n"))))
        }
    }
}

fn main() {
    match run(std::env::args().skip(1)) {
        Ok(report) => {
            println!("{report}");
            println!("perf gate: PASS");
        }
        Err((code, msg)) => {
            eprintln!("perf gate: FAIL\n{msg}");
            std::process::exit(code);
        }
    }
}
