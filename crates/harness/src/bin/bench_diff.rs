//! `bench_diff` — regression forensics for `gridmon-bench` reports.
//!
//! ```text
//! bench_diff [--tolerance=F] [--hotpath-old=FILE] [--hotpath-new=FILE] OLD.json NEW.json
//! ```
//!
//! Prints a markdown attribution report to stdout: per-scenario wall and
//! events-per-sec deltas with workload-drift flags, kernel event-mix
//! shifts (when both files are schema v2), and — when hotpath reports
//! are supplied — a per-site wall-clock attribution table. Informational
//! only: exits 0 whatever the deltas say, 2 on usage or parse errors.

use harness::bench::{BenchReport, DEFAULT_TOLERANCE};
use harness::diff;

fn run(args: impl Iterator<Item = String>) -> Result<String, String> {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut hotpath_old = None;
    let mut hotpath_new = None;
    let mut files = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--tolerance=") {
            tolerance = v.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
        } else if let Some(v) = a.strip_prefix("--hotpath-old=") {
            hotpath_old = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--hotpath-new=") {
            hotpath_new = Some(v.to_owned());
        } else if a.starts_with('-') {
            return Err(format!(
                "unknown option {a} (--tolerance=F, --hotpath-old=FILE, --hotpath-new=FILE)"
            ));
        } else {
            files.push(a);
        }
    }
    let [old, new] = files.as_slice() else {
        return Err(
            "usage: bench_diff [--tolerance=F] [--hotpath-old=FILE] [--hotpath-new=FILE] OLD.json NEW.json"
                .into(),
        );
    };
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let base = BenchReport::parse(&read(old)?).map_err(|e| format!("{old}: {e}"))?;
    let cand = BenchReport::parse(&read(new)?).map_err(|e| format!("{new}: {e}"))?;
    let mut out = diff::render_markdown(&diff::diff(&base, &cand, tolerance));
    match (hotpath_old, hotpath_new) {
        (Some(ho), Some(hn)) => {
            let hbase =
                simscope::HotpathReport::parse(&read(&ho)?).map_err(|e| format!("{ho}: {e}"))?;
            let hcand =
                simscope::HotpathReport::parse(&read(&hn)?).map_err(|e| format!("{hn}: {e}"))?;
            out.push_str(&diff::hotpath_markdown(&hbase, &hcand));
        }
        (None, None) => {}
        _ => return Err("--hotpath-old and --hotpath-new must be given together".into()),
    }
    Ok(out)
}

fn main() {
    match run(std::env::args().skip(1)) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            std::process::exit(2);
        }
    }
}
