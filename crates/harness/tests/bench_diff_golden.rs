//! Golden tests for `bench_diff`: run the real binary against committed
//! fixture report pairs and assert on the rendered attribution. The
//! fixtures double as format anchors — each must survive a
//! parse → re-serialize round trip byte-identically, so any accidental
//! change to the emitters breaks these tests before it breaks CI logs.

use harness::bench::BenchReport;
use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Run the `bench_diff` binary; returns (exit code, stdout, stderr).
fn bench_diff(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn fixtures_roundtrip_byte_identically() {
    for name in [
        "base_v2.json",
        "regression_v2.json",
        "improvement_v2.json",
        "drift_v2.json",
        "base_v1.json",
        "base_v3.json",
        "p99_regression_v3.json",
    ] {
        let text = std::fs::read_to_string(fixture(name)).unwrap();
        let parsed = BenchReport::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.to_json(), text, "{name} is not emitter-exact");
    }
    for name in ["hotpath_old.json", "hotpath_new.json"] {
        let text = std::fs::read_to_string(fixture(name)).unwrap();
        let parsed = simscope::HotpathReport::parse(&text).unwrap();
        assert_eq!(parsed.to_json(), text, "{name} is not emitter-exact");
    }
}

#[test]
fn regression_pair_names_the_offender() {
    let (code, out, _) = bench_diff(&[&fixture("base_v2.json"), &fixture("regression_v2.json")]);
    assert_eq!(code, 0, "bench_diff is informational");
    assert!(
        out.contains("Total wall: 3.000s → 3.600s (+20.0%)"),
        "{out}"
    );
    // The regressed scenario is flagged on its own row…
    let tcp_row = out
        .lines()
        .find(|l| l.contains("bench/narada-tcp"))
        .expect("scenario row present");
    assert!(tcp_row.contains("REGRESSION"), "{tcp_row}");
    assert!(tcp_row.contains("+60.0%"), "{tcp_row}");
    // …and the untouched ones are not.
    let udp_row = out
        .lines()
        .find(|l| l.contains("bench/narada-udp"))
        .unwrap();
    assert!(!udp_row.contains("REGRESSION"), "{udp_row}");
    // Kernel accounting renders for v2-vs-v2 pairs.
    assert!(out.contains("Kernel event accounting"), "{out}");
    assert!(out.contains("900 → 900"), "peak depth column: {out}");
}

#[test]
fn improvement_pair_is_flagged_as_improvement() {
    let (code, out, _) = bench_diff(&[&fixture("base_v2.json"), &fixture("improvement_v2.json")]);
    assert_eq!(code, 0);
    let tcp_row = out
        .lines()
        .find(|l| l.contains("bench/narada-tcp"))
        .unwrap();
    assert!(tcp_row.contains("improvement"), "{tcp_row}");
    assert!(tcp_row.contains("-50.0%"), "{tcp_row}");
    assert!(!out.contains("REGRESSION"), "{out}");
}

#[test]
fn workload_drift_names_metrics_and_type_shifts() {
    let (code, out, _) = bench_diff(&[&fixture("base_v2.json"), &fixture("drift_v2.json")]);
    assert_eq!(code, 0);
    let udp_row = out
        .lines()
        .find(|l| l.contains("bench/narada-udp"))
        .unwrap();
    assert!(udp_row.contains("WORKLOAD DRIFT"), "{udp_row}");
    assert!(udp_row.contains("sent 16000→17000"), "{udp_row}");
    assert!(udp_row.contains("received 15800→16800"), "{udp_row}");
    assert!(udp_row.contains("events 900000→950000"), "{udp_row}");
    // The kernel table attributes the drift to the event type that grew.
    assert!(out.contains("Delivery 599800→649800"), "{out}");
}

#[test]
fn v1_baseline_gets_schema_note_without_kernel_table() {
    let (code, out, _) = bench_diff(&[&fixture("base_v1.json"), &fixture("base_v2.json")]);
    assert_eq!(code, 0);
    assert!(out.contains("**schema:**"), "{out}");
    assert!(out.contains("baseline is gridmon-bench/1"), "{out}");
    assert!(
        !out.contains("Kernel event accounting"),
        "no kernel table when one side lacks the rows: {out}"
    );
}

#[test]
fn v2_baseline_against_v3_gets_schema_note_without_freshness_table() {
    let (code, out, _) = bench_diff(&[&fixture("base_v2.json"), &fixture("base_v3.json")]);
    assert_eq!(code, 0);
    assert!(out.contains("**schema:**"), "{out}");
    assert!(out.contains("baseline is gridmon-bench/2"), "{out}");
    // The v2 side has no slo_* rows, so no freshness table can render —
    // but the kernel table still can (both schemas carry those rows).
    assert!(!out.contains("Freshness / SLO"), "{out}");
    assert!(out.contains("Kernel event accounting"), "{out}");
}

#[test]
fn v3_pair_renders_freshness_table_and_flags_p99_regression() {
    let (code, out, _) =
        bench_diff(&[&fixture("base_v3.json"), &fixture("p99_regression_v3.json")]);
    assert_eq!(code, 0, "bench_diff is informational");
    assert!(out.contains("Freshness / SLO"), "{out}");
    let tcp_row = out
        .lines()
        .filter(|l| l.contains("bench/narada-tcp"))
        .find(|l| l.contains("7.50"))
        .expect("freshness row for the regressed scenario");
    assert!(tcp_row.contains("P99 REGRESSION"), "{tcp_row}");
    // The untouched scenarios carry no freshness flag.
    assert!(!out.contains("COMPLIANCE DROP"), "{out}");
}

/// Run the `bench_gate` binary; returns (exit code, stdout, stderr).
fn bench_gate(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(args)
        .output()
        .expect("bench_gate runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn gate_passes_identical_v3_reports_and_fails_injected_p99_regression() {
    // Same file on both sides: nothing can regress.
    let (code, out, _) = bench_gate(&[&fixture("base_v3.json"), &fixture("base_v3.json")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("perf gate: PASS"), "{out}");

    // Injected +60% p99 delivery latency on bench/narada-tcp: the gate
    // must fail, name the metric and scenario, and append attribution.
    let (code, _, err) =
        bench_gate(&[&fixture("base_v3.json"), &fixture("p99_regression_v3.json")]);
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("perf gate: FAIL"), "{err}");
    assert!(err.contains("slo_delivery_p99_ms"), "{err}");
    assert!(err.contains("bench/narada-tcp"), "{err}");
    assert!(
        err.contains("Freshness / SLO"),
        "attribution appended: {err}"
    );
}

#[test]
fn hotpath_pair_attributes_the_wall_delta() {
    let (code, out, _) = bench_diff(&[
        &format!("--hotpath-old={}", fixture("hotpath_old.json")),
        &format!("--hotpath-new={}", fixture("hotpath_new.json")),
        &fixture("base_v2.json"),
        &fixture("regression_v2.json"),
    ]);
    assert_eq!(code, 0);
    assert!(
        out.contains("Hot-path attribution — bench/narada-tcp (probe overhead 25 → 30 ns/op)"),
        "{out}"
    );
    // dispatch grew 400 ms of the 510 ms total |Δ| (78%), jms.match the
    // other 110 ms (22%); unchanged sites attribute 0%.
    let dispatch = out.lines().find(|l| l.contains("kernel.dispatch")).unwrap();
    assert!(dispatch.contains("+400.0"), "{dispatch}");
    assert!(dispatch.contains("78%"), "{dispatch}");
    let jms = out.lines().find(|l| l.contains("jms.match")).unwrap();
    assert!(jms.contains("+110.0"), "{jms}");
    assert!(jms.contains("22%"), "{jms}");
    let push = out
        .lines()
        .find(|l| l.contains("kernel.queue.push"))
        .unwrap();
    assert!(push.contains("+0.0"), "{push}");
}

#[test]
fn usage_and_parse_errors_exit_2() {
    let (code, _, err) = bench_diff(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"), "{err}");
    let (code, _, err) = bench_diff(&[&fixture("base_v2.json")]);
    assert_eq!(code, 2, "{err}");
    let (code, _, err) = bench_diff(&[
        &format!("--hotpath-old={}", fixture("hotpath_old.json")),
        &fixture("base_v2.json"),
        &fixture("base_v2.json"),
    ]);
    assert_eq!(code, 2);
    assert!(err.contains("together"), "{err}");
}
