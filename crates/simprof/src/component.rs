//! The component taxonomy time is attributed to.

/// One component of the simulated stack. The taxonomy is fixed (an enum,
/// not strings) so attribution is allocation-free and the slot order is
/// stable across exports — the same convention as `simtrace::Counter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Component {
    /// Narada broker publish handling: deserialize, duplicate-filter,
    /// route, serialize deliveries and peer forwards.
    NaradaRoute,
    /// Narada selector/queue matching inside the broker engine.
    NaradaMatch,
    /// Narada UDP publish-ack processing on the broker.
    NaradaAck,
    /// Narada client-side marshalling/unmarshalling (driver nodes).
    NaradaTransport,
    /// R-GMA servlet dispatch and instance management (Tomcat side).
    RgmaServlet,
    /// R-GMA INSERT processing in producer servlets.
    RgmaInsert,
    /// R-GMA continuous-SELECT evaluation, streaming, and consumer-side
    /// chunk/poll processing.
    RgmaSelect,
    /// R-GMA registry lookups and (re-)registrations.
    RgmaRegistry,
    /// R-GMA secondary-producer batching and re-publication.
    RgmaSecondary,
    /// R-GMA client-side HTTP assembly and response processing
    /// (driver nodes).
    RgmaClient,
    /// Network fabric frame handling (event count only — the fabric's
    /// NIC servers are not CPU time).
    NetFabric,
    /// Per-link frame delivery (event count only).
    NetLink,
    /// OS scheduler activity: thread spawn/kill churn (event count
    /// only — dispatch latency is pure latency, not busy time).
    OsSched,
    /// Stop-the-world GC pauses charged to middleware JVMs.
    OsGc,
    /// gridlog broker append path: deserialize a produce batch, assign
    /// offsets, append to the partition segment.
    GridlogAppend,
    /// gridlog broker fetch path: serve long-poll fetches, serialize
    /// record batches.
    GridlogFetch,
    /// gridlog broker consumer-group offset-commit processing.
    GridlogCommit,
    /// gridlog group-coordinator work: join/leave handling, partition
    /// assignment, crash-restart segment replay.
    GridlogRebalance,
    /// gridlog client-side batching, marshalling, and record delivery
    /// (driver nodes).
    GridlogClient,
    /// CPU work submitted outside any instrumented site. Non-zero means
    /// an instrumentation gap; the conservation test asserts it stays
    /// zero.
    Unattributed,
}

/// Number of [`Component`] slots.
pub const COMPONENT_COUNT: usize = 20;

impl Component {
    /// All components, in slot order.
    pub const ALL: [Component; COMPONENT_COUNT] = [
        Component::NaradaRoute,
        Component::NaradaMatch,
        Component::NaradaAck,
        Component::NaradaTransport,
        Component::RgmaServlet,
        Component::RgmaInsert,
        Component::RgmaSelect,
        Component::RgmaRegistry,
        Component::RgmaSecondary,
        Component::RgmaClient,
        Component::NetFabric,
        Component::NetLink,
        Component::OsSched,
        Component::OsGc,
        Component::GridlogAppend,
        Component::GridlogFetch,
        Component::GridlogCommit,
        Component::GridlogRebalance,
        Component::GridlogClient,
        Component::Unattributed,
    ];

    /// Stable dotted name used by every exporter (table, collapsed
    /// stacks, CSV).
    pub fn name(self) -> &'static str {
        match self {
            Component::NaradaRoute => "narada.route",
            Component::NaradaMatch => "narada.match",
            Component::NaradaAck => "narada.ack",
            Component::NaradaTransport => "narada.transport",
            Component::RgmaServlet => "rgma.servlet",
            Component::RgmaInsert => "rgma.insert",
            Component::RgmaSelect => "rgma.select",
            Component::RgmaRegistry => "rgma.registry",
            Component::RgmaSecondary => "rgma.secondary",
            Component::RgmaClient => "rgma.client",
            Component::NetFabric => "simnet.fabric",
            Component::NetLink => "simnet.link",
            Component::OsSched => "simos.sched",
            Component::OsGc => "simos.gc",
            Component::GridlogAppend => "gridlog.append",
            Component::GridlogFetch => "gridlog.fetch",
            Component::GridlogCommit => "gridlog.commit",
            Component::GridlogRebalance => "gridlog.rebalance",
            Component::GridlogClient => "gridlog.client",
            Component::Unattributed => "unattributed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_slots_match_discriminants() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{} out of slot order", c.name());
        }
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let names: std::collections::HashSet<&str> =
            Component::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), COMPONENT_COUNT);
    }
}
