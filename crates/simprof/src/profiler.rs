//! The profiler kernel service and its report.

use crate::component::{Component, COMPONENT_COUNT};
use simcore::SimDuration;
use std::collections::BTreeMap;

/// Accumulated time and charge count of one collapsed stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Simulated busy time attributed to this exact path.
    pub time: SimDuration,
    /// Number of charges that landed on this path.
    pub charges: u64,
}

/// Kernel service attributing simulated CPU time and event counts to
/// the [`Component`] taxonomy. Registered only when profiling is on;
/// every instrumentation site degrades to one failed type-map probe
/// when it is absent.
#[derive(Debug, Default)]
pub struct Profiler {
    /// Open span stack (component per `profile_span!` level).
    stack: Vec<Component>,
    /// Self time per component (exactly the effective CPU cost charged).
    self_time: [SimDuration; COMPONENT_COUNT],
    /// Events per component: span entries plus `hit()` counts.
    hits: [u64; COMPONENT_COUNT],
    /// CPU charges per component.
    charges: [u64; COMPONENT_COUNT],
    /// Collapsed stacks: full path -> accumulated time. BTreeMap keeps
    /// the export deterministic without a sort pass.
    frames: BTreeMap<Vec<Component>, FrameStat>,
}

impl Profiler {
    /// New empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span.
    pub fn enter(&mut self, c: Component) {
        self.stack.push(c);
        self.hits[c as usize] += 1;
    }

    /// Close the innermost span. Must pair with [`Profiler::enter`];
    /// imbalance is an instrumentation bug caught in debug builds.
    pub fn exit(&mut self, c: Component) {
        let top = self.stack.pop();
        debug_assert_eq!(top, Some(c), "unbalanced profile_span! nesting");
        let _ = top;
    }

    /// Count one event without attributing time.
    pub fn hit(&mut self, c: Component) {
        self.hits[c as usize] += 1;
    }

    /// Attribute `d` of effective CPU time to `c` under the current
    /// span stack.
    pub fn charge(&mut self, c: Component, d: SimDuration) {
        self.self_time[c as usize] += d;
        self.charges[c as usize] += 1;
        let mut path = self.stack.clone();
        if path.last() != Some(&c) {
            path.push(c);
        }
        let f = self.frames.entry(path).or_default();
        f.time += d;
        f.charges += 1;
    }

    /// Merge per-shard profilers: every field is a pure sum (virtual
    /// durations, hit/charge counts, frame stats keyed by path), so the
    /// merge is exact and order-independent. Merged-of-one is the
    /// identity.
    pub fn merged(parts: impl IntoIterator<Item = Profiler>) -> Profiler {
        let mut out = Profiler::new();
        for p in parts {
            debug_assert!(p.stack.is_empty(), "merge with open spans");
            for i in 0..COMPONENT_COUNT {
                out.self_time[i] += p.self_time[i];
                out.hits[i] += p.hits[i];
                out.charges[i] += p.charges[i];
            }
            for (path, stat) in p.frames {
                let f = out.frames.entry(path).or_default();
                f.time += stat.time;
                f.charges += stat.charges;
            }
        }
        out
    }

    /// Total simulated time attributed so far (sum of all self times).
    pub fn total_attributed(&self) -> SimDuration {
        self.self_time
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }

    /// Self time of one component.
    pub fn self_time(&self, c: Component) -> SimDuration {
        self.self_time[c as usize]
    }

    /// Event count of one component (span entries + hits).
    pub fn hits_of(&self, c: Component) -> u64 {
        self.hits[c as usize]
    }

    /// The collapsed stacks accumulated so far.
    pub fn frames(&self) -> &BTreeMap<Vec<Component>, FrameStat> {
        &self.frames
    }

    /// Flamegraph-compatible collapsed-stack output: one
    /// `path;to;frame <microseconds>` line per stack, feedable straight
    /// into `flamegraph.pl` / `inferno-flamegraph`. Deterministic.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.frames {
            let names: Vec<&str> = path.iter().map(|c| c.name()).collect();
            out.push_str(&names.join(";"));
            out.push(' ');
            out.push_str(&stat.time.as_micros().to_string());
            out.push('\n');
        }
        out
    }

    /// Build the per-component report against the kernel's total
    /// simulated busy time (`simos::OsModel::total_submitted_work`).
    /// Any gap between attributed and kernel time becomes the
    /// `unattributed` row, so the table total always equals the kernel
    /// total (conservation) and gaps are visible instead of silent.
    pub fn report(&self, kernel_busy: SimDuration) -> ProfileReport {
        let mut rows: Vec<ProfileRow> = Vec::new();
        for c in Component::ALL {
            let ix = c as usize;
            let total_time = self
                .frames
                .iter()
                .filter(|(path, _)| path.contains(&c))
                .fold(SimDuration::ZERO, |acc, (_, s)| acc + s.time);
            if self.self_time[ix] == SimDuration::ZERO
                && self.hits[ix] == 0
                && total_time == SimDuration::ZERO
            {
                continue;
            }
            rows.push(ProfileRow {
                component: c,
                self_time: self.self_time[ix],
                total_time,
                hits: self.hits[ix],
                charges: self.charges[ix],
            });
        }
        let attributed = self.total_attributed();
        let unattributed = kernel_busy.saturating_sub(attributed);
        if unattributed > SimDuration::ZERO {
            rows.push(ProfileRow {
                component: Component::Unattributed,
                self_time: unattributed,
                total_time: unattributed,
                hits: 0,
                charges: 0,
            });
        }
        rows.sort_by(|a, b| {
            b.self_time
                .cmp(&a.self_time)
                .then_with(|| a.component.name().cmp(b.component.name()))
        });
        ProfileReport {
            rows,
            attributed,
            kernel_busy,
            unattributed,
        }
    }
}

/// One row of the self-time table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileRow {
    /// The component.
    pub component: Component,
    /// Simulated busy time charged directly to this component.
    pub self_time: SimDuration,
    /// Simulated busy time of every stack this component appears in.
    pub total_time: SimDuration,
    /// Events observed (span entries + hits).
    pub hits: u64,
    /// CPU charges recorded.
    pub charges: u64,
}

/// Self-time/total-time report. Row self times (including the
/// `unattributed` remainder) sum exactly to `kernel_busy`.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Rows, hottest self time first.
    pub rows: Vec<ProfileRow>,
    /// Time attributed by instrumentation sites.
    pub attributed: SimDuration,
    /// Kernel total: every effective cost the CPU models accepted.
    pub kernel_busy: SimDuration,
    /// `kernel_busy - attributed` (zero when instrumentation is
    /// complete; asserted by the conservation tests).
    pub unattributed: SimDuration,
}

impl ProfileReport {
    /// Render as a paper-style table. The `self%` column is relative to
    /// the kernel total, so the column sums to 100.
    pub fn table(&self, title: impl Into<String>) -> telemetry::Table {
        let mut t = telemetry::Table::new(
            title,
            &[
                "component",
                "self ms",
                "self %",
                "total ms",
                "events",
                "charges",
            ],
        );
        let busy_us = self.kernel_busy.as_micros();
        for r in &self.rows {
            let pct = if busy_us == 0 {
                0.0
            } else {
                100.0 * r.self_time.as_micros() as f64 / busy_us as f64
            };
            t.push_row(vec![
                r.component.name().to_owned(),
                telemetry::trim_float(r.self_time.as_micros() as f64 / 1000.0),
                telemetry::trim_float(pct),
                telemetry::trim_float(r.total_time.as_micros() as f64 / 1000.0),
                r.hits.to_string(),
                r.charges.to_string(),
            ]);
        }
        t.push_row(vec![
            "TOTAL".into(),
            telemetry::trim_float(busy_us as f64 / 1000.0),
            if busy_us == 0 {
                telemetry::trim_float(0.0)
            } else {
                telemetry::trim_float(100.0)
            },
            String::new(),
            String::new(),
            String::new(),
        ]);
        t
    }

    /// Conservation check: do the row self times sum to the kernel
    /// total? Holds by construction (the `unattributed` row absorbs any
    /// gap); `unattributed == 0` is the stronger completeness check.
    pub fn conserves(&self) -> bool {
        let sum = self
            .rows
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.self_time);
        sum == self.kernel_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn charges_accumulate_under_spans() {
        let mut p = Profiler::new();
        p.enter(Component::NaradaRoute);
        p.charge(Component::NaradaMatch, us(30));
        p.charge(Component::NaradaRoute, us(70)); // dedup: top of stack
        p.exit(Component::NaradaRoute);
        p.charge(Component::OsGc, us(10));
        assert_eq!(p.self_time(Component::NaradaMatch), us(30));
        assert_eq!(p.self_time(Component::NaradaRoute), us(70));
        assert_eq!(p.total_attributed(), us(110));
        let collapsed = p.collapsed();
        assert!(
            collapsed.contains("narada.route;narada.match 30\n"),
            "{collapsed}"
        );
        assert!(collapsed.contains("narada.route 70\n"), "{collapsed}");
        assert!(collapsed.contains("simos.gc 10\n"), "{collapsed}");
    }

    #[test]
    fn report_conserves_and_surfaces_unattributed() {
        let mut p = Profiler::new();
        p.charge(Component::RgmaInsert, us(400));
        let r = p.report(us(1000));
        assert_eq!(r.unattributed, us(600));
        assert!(r.conserves());
        assert_eq!(r.rows[0].component, Component::Unattributed);
        assert_eq!(r.rows[1].component, Component::RgmaInsert);
        // Complete attribution: no unattributed row.
        let r2 = p.report(us(400));
        assert_eq!(r2.unattributed, SimDuration::ZERO);
        assert!(r2
            .rows
            .iter()
            .all(|r| r.component != Component::Unattributed));
        assert!(r2.conserves());
    }

    #[test]
    fn total_time_covers_nested_frames() {
        let mut p = Profiler::new();
        p.enter(Component::RgmaServlet);
        p.charge(Component::RgmaInsert, us(80));
        p.charge(Component::RgmaServlet, us(20));
        p.exit(Component::RgmaServlet);
        let r = p.report(us(100));
        let servlet = r
            .rows
            .iter()
            .find(|row| row.component == Component::RgmaServlet)
            .unwrap();
        assert_eq!(servlet.self_time, us(20));
        assert_eq!(servlet.total_time, us(100), "includes nested insert frame");
        let table = r.table("t").render();
        assert!(table.contains("rgma.insert"), "{table}");
    }

    #[test]
    fn merged_sums_components_and_frames() {
        let mut a = Profiler::new();
        a.enter(Component::NaradaRoute);
        a.charge(Component::NaradaMatch, us(30));
        a.exit(Component::NaradaRoute);
        let mut b = Profiler::new();
        b.enter(Component::NaradaRoute);
        b.charge(Component::NaradaMatch, us(70));
        b.exit(Component::NaradaRoute);
        b.charge(Component::OsGc, us(5));
        let m = Profiler::merged([a, b]);
        assert_eq!(m.self_time(Component::NaradaMatch), us(100));
        assert_eq!(m.self_time(Component::OsGc), us(5));
        assert_eq!(m.hits_of(Component::NaradaRoute), 2);
        let nested = m
            .frames()
            .get(&vec![Component::NaradaRoute, Component::NaradaMatch])
            .unwrap();
        assert_eq!(nested.time, us(100));
        assert_eq!(nested.charges, 2);
        // Merged-of-one is the identity.
        let mut c = Profiler::new();
        c.charge(Component::OsGc, us(9));
        let one = Profiler::merged([c]);
        assert_eq!(one.self_time(Component::OsGc), us(9));
        assert_eq!(one.collapsed(), "simos.gc 9\n");
    }

    #[test]
    fn hits_count_without_time() {
        let mut p = Profiler::new();
        p.hit(Component::NetFabric);
        p.hit(Component::NetFabric);
        assert_eq!(p.hits_of(Component::NetFabric), 2);
        let r = p.report(SimDuration::ZERO);
        let row = r
            .rows
            .iter()
            .find(|r| r.component == Component::NetFabric)
            .unwrap();
        assert_eq!(row.hits, 2);
        assert_eq!(row.self_time, SimDuration::ZERO);
    }
}
