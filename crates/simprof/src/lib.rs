#![warn(missing_docs)]
//! # simprof — virtual-time profiling for the gridmon simulation stack
//!
//! The paper's evaluation hinges on *where* time goes: the RTT = PRT +
//! PT + SRT decomposition and the vmstat CPU-idle curves both attribute
//! latency to layers of the middleware. `simtrace` records per-message
//! lifecycles, but nothing attributes *scheduler time* to components —
//! how much of a broker node's busy time was selector matching versus
//! routing versus ack processing. This crate closes that gap with a
//! profiler that runs on simulated time, so its output is deterministic
//! and exactly conserved.
//!
//! Pieces:
//!
//! * [`Component`] — the fixed component taxonomy (narada
//!   route/match/ack/transport, rgma servlet/insert/select/registry,
//!   simnet fabric/link, simos sched/gc).
//! * [`Profiler`] — a kernel service (same shape as
//!   `simtrace::TraceCollector` and `simfault::FaultInjector`)
//!   accumulating per-component self time, event counts, and
//!   collapsed call-stack frames. Instrumentation sites look it up with
//!   `Context::try_service_mut`, so when profiling is off (service
//!   absent) each site costs one failed type-map probe and nothing else
//!   — profiled-off runs are byte-identical to builds without profiler
//!   support.
//! * [`profile_span!`] — scoped attribution: charges inside the span
//!   land under the span's stack path, producing flamegraph-compatible
//!   collapsed stacks.
//! * [`ProfileReport`] — the self-time/total-time table whose total
//!   equals the kernel's total simulated busy time (conservation: every
//!   microsecond a CPU accepted is attributed to exactly one
//!   component, with any shortfall surfaced as `unattributed`).
//!
//! The time-series metrics plane (`telemetry::MetricsRegistry`) is
//! snapshotted by `simos::VmstatSampler` on its existing tick, so a
//! profiled run adds no kernel events at all.
//!
//! The profiler observes and never perturbs: charges are recorded from
//! the *effective* (inflated) cost the CPU model accepted, so enabling
//! it changes no completion time, no RNG draw, and no event order.

mod component;
mod profiler;

pub use component::{Component, COMPONENT_COUNT};
pub use profiler::{FrameStat, ProfileReport, ProfileRow, Profiler};

use simcore::{Context, SimDuration};

/// Run `f` against the profiler if one is registered; no-op (one failed
/// type-map probe) otherwise. The standard instrumentation entry point,
/// mirroring `simtrace::with_trace`.
#[inline]
pub fn with_profile(ctx: &mut Context<'_>, f: impl FnOnce(&mut Profiler)) {
    if let Some(p) = ctx.try_service_mut::<Profiler>() {
        f(p);
    }
}

/// Open a span: subsequent charges nest under `c`. Prefer
/// [`profile_span!`] which pairs the close for you.
#[inline]
pub fn enter(ctx: &mut Context<'_>, c: Component) {
    with_profile(ctx, |p| p.enter(c));
}

/// Close the innermost span (must be `c`; checked in debug builds).
#[inline]
pub fn exit(ctx: &mut Context<'_>, c: Component) {
    with_profile(ctx, |p| p.exit(c));
}

/// Count one event against `c` without attributing any time (used for
/// zero-cost components such as fabric hops).
#[inline]
pub fn hit(ctx: &mut Context<'_>, c: Component) {
    with_profile(ctx, |p| p.hit(c));
}

/// Attribute `d` of simulated busy time to `c`, nested under the
/// current span stack. `d` must be the *effective* cost the CPU model
/// accepted (post inflation/slowdown) so the report conserves exactly.
#[inline]
pub fn charge(ctx: &mut Context<'_>, c: Component, d: SimDuration) {
    with_profile(ctx, |p| p.charge(c, d));
}

/// Attribute one effective cost across two components in proportion to
/// their base-cost parts: `part_base / total_base` of `effective` goes
/// to `part_comp`, the remainder to `rest_comp`. Integer arithmetic, so
/// the two charges sum exactly to `effective` (conservation) and the
/// split is deterministic. Used where one CPU submission covers two
/// taxonomy components (e.g. broker publish = route + selector match).
#[inline]
pub fn charge_split(
    ctx: &mut Context<'_>,
    rest_comp: Component,
    part_comp: Component,
    effective: SimDuration,
    part_base: SimDuration,
    total_base: SimDuration,
) {
    with_profile(ctx, |p| {
        let part = split_part(effective, part_base, total_base);
        p.charge(part_comp, part);
        p.charge(rest_comp, effective.saturating_sub(part));
    });
}

/// `effective * part / total` in microseconds, saturating and safe for
/// the full range (u128 intermediate).
fn split_part(effective: SimDuration, part: SimDuration, total: SimDuration) -> SimDuration {
    let t = total.as_micros();
    if t == 0 {
        return SimDuration::ZERO;
    }
    let scaled = u128::from(effective.as_micros()) * u128::from(part.as_micros()) / u128::from(t);
    SimDuration::from_micros(scaled.min(u128::from(u64::MAX)) as u64)
}

/// Scoped span attribution: `profile_span!(ctx, Component::X, { body })`
/// opens the span, evaluates the body, closes the span, and yields the
/// body's value. Charges inside the body nest under `X` in the
/// collapsed-stack output.
///
/// The body must not `return`/`?` out of the enclosing function —
/// the span close would be skipped (debug builds catch the imbalance on
/// the next exit).
#[macro_export]
macro_rules! profile_span {
    ($ctx:expr, $comp:expr, $body:expr) => {{
        $crate::enter($ctx, $comp);
        let __simprof_span_result = $body;
        $crate::exit($ctx, $comp);
        __simprof_span_result
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact_and_conserves() {
        let eff = SimDuration::from_micros(1001);
        let part = split_part(
            eff,
            SimDuration::from_micros(1),
            SimDuration::from_micros(3),
        );
        assert_eq!(part.as_micros(), 333);
        // rest = 668; part + rest == effective.
        assert_eq!(
            eff.saturating_sub(part).as_micros() + part.as_micros(),
            1001
        );
        assert_eq!(
            split_part(eff, SimDuration::ZERO, SimDuration::ZERO),
            SimDuration::ZERO
        );
        assert_eq!(
            split_part(
                eff,
                SimDuration::from_micros(3),
                SimDuration::from_micros(3)
            ),
            eff
        );
    }
}
