//! End-to-end R-GMA pipeline tests: insert → producer storage → stream →
//! consumer buffer → subscriber poll, including warm-up loss and the
//! Secondary Producer's 30 s delay.

use rgma::{
    ConsumerControl, ConsumerServlet, ProducerControl, ProducerHandle, ProducerServlet,
    RegistryActor, RgmaClientSet, RgmaConfig, RgmaEvent, RgmaTimer, SecondaryProducer,
};
use simcore::{Actor, Context, Payload, SimDuration, SimTime, Simulation};
use simnet::{Delivery, Endpoint, FabricConfig, NetworkFabric};
use simos::{NodeId, NodeSpec, OsModel, ProcessId, ProcessSpec, VmstatLog};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::RttCollector;

const TABLE_SQL: &str =
    "CREATE TABLE generator (id INTEGER, power DOUBLE PRECISION, site CHAR(20))";

fn build_world(n: usize, seed: u64) -> (Simulation, Vec<NodeId>) {
    let mut sim = Simulation::new(seed);
    let mut os = OsModel::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| os.add_node(NodeSpec::hydra(format!("hydra{}", i + 1), 0.0005)))
        .collect();
    sim.add_service(os);
    sim.add_service(NetworkFabric::new(FabricConfig::default(), n));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());
    (sim, nodes)
}

fn rgma_jvm(sim: &mut Simulation, node: NodeId) -> ProcessId {
    // Tomcat-era JVM: 1 MiB thread stacks (the paper's ~800-connection
    // single-server limit follows from this).
    sim.service_mut::<OsModel>().unwrap().add_process(
        node,
        ProcessSpec {
            heap_cap: simos::Bytes::mib(1024),
            stack_size: simos::Bytes::mib(1),
            baseline: simos::Bytes::mib(64),
        },
    )
}

/// Deploys registry + producer servlet + consumer servlet on one node
/// ("single server") and returns their endpoints.
struct SingleServer {
    registry: Endpoint,
    producer: Endpoint,
    consumer: Endpoint,
}

fn deploy_single_server(sim: &mut Simulation, node: NodeId, cfg: &RgmaConfig) -> SingleServer {
    let proc = rgma_jvm(sim, node);
    let reg = sim.add_actor(RegistryActor::new(cfg.clone(), node, proc));
    let reg_ep = Endpoint::new(node, reg);
    let prod = sim.add_actor(ProducerServlet::new(cfg.clone(), node, proc, reg_ep));
    let cons = sim.add_actor(ConsumerServlet::new(cfg.clone(), node, proc, reg_ep));
    // Push the schema replicas.
    sim.schedule(
        SimDuration::ZERO,
        prod,
        Box::new(ProducerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );
    sim.schedule(
        SimDuration::ZERO,
        cons,
        Box::new(ConsumerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );
    SingleServer {
        registry: reg_ep,
        producer: Endpoint::new(node, prod),
        consumer: Endpoint::new(node, cons),
    }
}

#[derive(Default)]
struct Shared {
    producers_ready: u32,
    producers_failed: u32,
    tuples_polled: usize,
}

/// Scripted R-GMA driver: creates `n_producers` producers and one
/// subscriber; after `warmup`, each producer inserts every `interval`
/// until `inserts` messages are out.
struct Driver {
    node: NodeId,
    producer_ep: Endpoint,
    consumer_ep: Endpoint,
    query: String,
    n_producers: usize,
    inserts: u32,
    warmup: SimDuration,
    interval: SimDuration,
    cfg: RgmaConfig,
    set: Option<RgmaClientSet>,
    handles: Vec<ProducerHandle>,
    shared: Rc<RefCell<Shared>>,
}

struct InsertTick {
    handle: ProducerHandle,
    ix: u32,
    remaining: u32,
}

impl Actor for Driver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = RgmaClientSet::new(self.cfg.clone(), self.node);
        set.create_subscriber(ctx, self.consumer_ep, &self.query);
        for _ in 0..self.n_producers {
            let h = set.create_producer(ctx, self.producer_ep, "generator");
            self.handles.push(h);
        }
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        RgmaEvent::ProducerReady(h) => {
                            self.shared.borrow_mut().producers_ready += 1;
                            ctx.timer(
                                self.warmup,
                                InsertTick {
                                    handle: h,
                                    ix: 0,
                                    remaining: self.inserts,
                                },
                            );
                        }
                        RgmaEvent::ProducerFailed(_, _) => {
                            self.shared.borrow_mut().producers_failed += 1;
                        }
                        RgmaEvent::Polled(_, n) => {
                            self.shared.borrow_mut().tuples_polled += n;
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RgmaTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if let Ok(tick) = msg.downcast::<InsertTick>() {
            let InsertTick {
                handle,
                ix,
                remaining,
            } = *tick;
            if remaining == 0 {
                return;
            }
            let sql = format!(
                "INSERT INTO generator (id, power, site) VALUES ({ix}, {p}, 'hydra')",
                p = 800.0 + f64::from(ix)
            );
            set.insert(ctx, handle, sql);
            ctx.timer(
                self.interval,
                InsertTick {
                    handle,
                    ix: ix + 1,
                    remaining: remaining - 1,
                },
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_driver(
    sim: &mut Simulation,
    node: NodeId,
    server: &SingleServer,
    cfg: &RgmaConfig,
    n_producers: usize,
    inserts: u32,
    warmup: SimDuration,
    horizon: SimTime,
) -> Rc<RefCell<Shared>> {
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver {
        node,
        producer_ep: server.producer,
        consumer_ep: server.consumer,
        query: "SELECT * FROM generator".into(),
        n_producers,
        inserts,
        warmup,
        interval: SimDuration::from_secs(10),
        cfg: cfg.clone(),
        set: None,
        handles: Vec::new(),
        shared: shared.clone(),
    });
    sim.run_until(horizon);
    shared
}

#[test]
fn insert_to_poll_pipeline_delivers() {
    let (mut sim, nodes) = build_world(2, 31);
    let cfg = RgmaConfig::glite_3_0();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    let shared = run_driver(
        &mut sim,
        nodes[1],
        &server,
        &cfg,
        5,
        6,
        SimDuration::from_secs(15), // paper's warm-up wait
        SimTime::from_secs(120),
    );
    let s = shared.borrow();
    assert_eq!(s.producers_ready, 5);
    assert_eq!(s.producers_failed, 0);
    assert_eq!(s.tuples_polled, 30, "all tuples reach the subscriber");
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 30);
    assert_eq!(summary.received, 30);
    // R-GMA RTTs are dominated by Process Time and sit far above Narada's
    // few milliseconds.
    assert!(
        summary.rtt_mean_ms > 200.0,
        "rtt = {} ms",
        summary.rtt_mean_ms
    );
    assert!(
        summary.pt_mean_ms > summary.prt_mean_ms && summary.pt_mean_ms > summary.srt_mean_ms,
        "PT dominates: prt={} pt={} srt={}",
        summary.prt_mean_ms,
        summary.pt_mean_ms,
        summary.srt_mean_ms
    );
    // Soft real-time budget of §I still holds at this scale.
    assert!(summary.within_5s > 0.99);
    let _ = server.registry;
}

#[test]
fn publishing_without_warmup_loses_early_tuples() {
    let (mut sim, nodes) = build_world(2, 37);
    // Disable the attach replay window so the mechanism is deterministic
    // at this tiny scale (full-scale behaviour, where the 6 s replay
    // recovers some first tuples, is covered by the harness scenario).
    let mut cfg = RgmaConfig::glite_3_0();
    cfg.attach_replay = simcore::SimDuration::ZERO;
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    let shared = run_driver(
        &mut sim,
        nodes[1],
        &server,
        &cfg,
        10,
        6,
        SimDuration::from_millis(200), // publish almost immediately
        SimTime::from_secs(120),
    );
    let s = shared.borrow();
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 60);
    assert!(
        summary.received < summary.sent,
        "tuples inserted before plan establishment are lost"
    );
    assert!(
        summary.received >= summary.sent - 2 * 10,
        "at a 10 s insert period only the first tuple or two per producer \
         falls in the registration window (received {})",
        summary.received
    );
    assert!(s.tuples_polled as u64 == summary.received);
}

#[test]
fn warmup_wait_eliminates_loss() {
    // The paper's §III.F observation: waiting 5–10 s before publishing
    // avoids the loss entirely.
    let (mut sim, nodes) = build_world(2, 41);
    let cfg = RgmaConfig::glite_3_0();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    run_driver(
        &mut sim,
        nodes[1],
        &server,
        &cfg,
        10,
        6,
        SimDuration::from_secs(12),
        SimTime::from_secs(150),
    );
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 60);
    assert_eq!(summary.received, 60, "no loss after warm-up");
}

#[test]
fn server_refuses_producers_when_thread_pool_exhausted() {
    let (mut sim, nodes) = build_world(2, 43);
    let cfg = RgmaConfig::glite_3_0();
    // A deliberately tiny server process: ~6 threads.
    let proc = sim.service_mut::<OsModel>().unwrap().add_process(
        nodes[0],
        ProcessSpec {
            heap_cap: simos::Bytes::mib(1600),
            stack_size: simos::Bytes::mib(24),
            baseline: simos::Bytes::mib(16),
        },
    );
    let reg = sim.add_actor(RegistryActor::new(cfg.clone(), nodes[0], proc));
    let reg_ep = Endpoint::new(nodes[0], reg);
    let prod = sim.add_actor(ProducerServlet::new(cfg.clone(), nodes[0], proc, reg_ep));
    let cons = sim.add_actor(ConsumerServlet::new(cfg.clone(), nodes[0], proc, reg_ep));
    sim.schedule(
        SimDuration::ZERO,
        prod,
        Box::new(ProducerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );
    sim.schedule(
        SimDuration::ZERO,
        cons,
        Box::new(ConsumerControl::DeclareTable {
            sql: TABLE_SQL.into(),
        }),
    );
    let server = SingleServer {
        registry: reg_ep,
        producer: Endpoint::new(nodes[0], prod),
        consumer: Endpoint::new(nodes[0], cons),
    };
    let shared = run_driver(
        &mut sim,
        nodes[1],
        &server,
        &cfg,
        20,
        1,
        SimDuration::from_secs(10),
        SimTime::from_secs(60),
    );
    let s = shared.borrow();
    assert!(
        s.producers_failed > 0,
        "thread exhaustion refuses producers"
    );
    assert!(s.producers_ready > 0, "the first few are accepted");
}

#[test]
fn secondary_producer_adds_thirty_second_delay() {
    let (mut sim, nodes) = build_world(3, 47);
    let cfg = RgmaConfig::glite_3_0();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    // Secondary producer on node 1 republishes `generator` as
    // `generator_archive`.
    let sp_proc = rgma_jvm(&mut sim, nodes[1]);
    let sp = SecondaryProducer::new(
        cfg.clone(),
        nodes[1],
        sp_proc,
        server.registry,
        "generator",
        "generator_archive",
    );
    sim.add_actor(sp);

    // The subscriber queries the *archive* table, so data flows
    // generator → primary → secondary (30 s batch) → consumer.
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver {
        node: nodes[2],
        producer_ep: server.producer,
        consumer_ep: server.consumer,
        query: "SELECT * FROM generator_archive".into(),
        n_producers: 3,
        inserts: 4,
        warmup: SimDuration::from_secs(15),
        interval: SimDuration::from_secs(10),
        cfg: cfg.clone(),
        set: None,
        handles: Vec::new(),
        shared: shared.clone(),
    });
    sim.run_until(SimTime::from_secs(240));
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 12);
    assert!(
        summary.received >= 10,
        "most tuples arrive through the chain (got {})",
        summary.received
    );
    assert!(
        summary.rtt_mean_ms > 10_000.0,
        "the 30 s batch dominates: mean RTT = {} ms",
        summary.rtt_mean_ms
    );
    assert!(
        summary.percentiles_ms.last().unwrap().1 < 50_000.0,
        "but bounded by ~35 s as in fig 10"
    );
    assert!(shared.borrow().tuples_polled > 0);
}

#[test]
fn ablation_no_secondary_delay_is_fast() {
    let (mut sim, nodes) = build_world(3, 53);
    let cfg = RgmaConfig::no_secondary_delay();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    let sp_proc = rgma_jvm(&mut sim, nodes[1]);
    sim.add_actor(SecondaryProducer::new(
        cfg.clone(),
        nodes[1],
        sp_proc,
        server.registry,
        "generator",
        "generator_archive",
    ));
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver {
        node: nodes[2],
        producer_ep: server.producer,
        consumer_ep: server.consumer,
        query: "SELECT * FROM generator_archive".into(),
        n_producers: 3,
        inserts: 4,
        warmup: SimDuration::from_secs(15),
        interval: SimDuration::from_secs(10),
        cfg: cfg.clone(),
        set: None,
        handles: Vec::new(),
        shared: shared.clone(),
    });
    sim.run_until(SimTime::from_secs(240));
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert!(summary.received >= 10);
    assert!(
        summary.rtt_mean_ms < 10_000.0,
        "without the deliberate batch the chain is much faster: {} ms",
        summary.rtt_mean_ms
    );
}

#[test]
fn continuous_query_predicate_filters_at_consumer() {
    let (mut sim, nodes) = build_world(2, 59);
    let cfg = RgmaConfig::glite_3_0();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver {
        node: nodes[1],
        producer_ep: server.producer,
        consumer_ep: server.consumer,
        // Only even ids below 3 → ids 0, 1, 2 pass the filter id < 3.
        query: "SELECT * FROM generator WHERE id < 3".into(),
        n_producers: 2,
        inserts: 6,
        warmup: SimDuration::from_secs(12),
        interval: SimDuration::from_secs(10),
        cfg: cfg.clone(),
        set: None,
        handles: Vec::new(),
        shared: shared.clone(),
    });
    sim.run_until(SimTime::from_secs(150));
    // 2 producers × ids 0..6, filter id < 3 → 2 × 3 = 6 tuples delivered.
    assert_eq!(shared.borrow().tuples_polled, 6);
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 12);
    assert_eq!(summary.received, 6);
}

/// A driver that, after the continuous pipeline has run, issues one-time
/// latest and history queries (GMA query/response mode).
struct QueryDriver {
    node: NodeId,
    producer_ep: Endpoint,
    consumer_ep: Endpoint,
    cfg: RgmaConfig,
    set: Option<RgmaClientSet>,
    latest_counts: Rc<RefCell<Vec<usize>>>,
    history_counts: Rc<RefCell<Vec<usize>>>,
    handles: Vec<ProducerHandle>,
}

struct QueryInsertTick(usize, u32);
struct FireQueries;

impl Actor for QueryDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = RgmaClientSet::new(self.cfg.clone(), self.node);
        for _ in 0..3 {
            let h = set.create_producer(ctx, self.producer_ep, "generator");
            self.handles.push(h);
        }
        self.set = Some(set);
        ctx.timer(SimDuration::from_secs(40), FireQueries);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        RgmaEvent::ProducerReady(h) => {
                            let ix = self.handles.iter().position(|&x| x == h).unwrap();
                            ctx.timer(SimDuration::from_secs(10), QueryInsertTick(ix, 4));
                        }
                        RgmaEvent::QueryCompleted(q, entries) => {
                            // QueryHandle ids are allocated after the three
                            // producers: 3 = latest, 4 = history.
                            if q.0 == 3 {
                                self.latest_counts.borrow_mut().push(entries.len());
                            } else {
                                self.history_counts.borrow_mut().push(entries.len());
                            }
                        }
                        RgmaEvent::QueryFailed(_, reason) => panic!("query failed: {reason}"),
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RgmaTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<QueryInsertTick>() {
            Ok(t) => {
                let QueryInsertTick(ix, remaining) = *t;
                if remaining == 0 {
                    return;
                }
                let h = self.handles[ix];
                let sql = format!(
                    "INSERT INTO generator (id, power, site) VALUES ({ix}, {p}, 'hydra')",
                    p = 500.0 + remaining as f64
                );
                set.insert(ctx, h, sql);
                ctx.timer(
                    SimDuration::from_secs(8),
                    QueryInsertTick(ix, remaining - 1),
                );
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<FireQueries>().is_ok() {
            set.one_time_query(
                ctx,
                self.consumer_ep,
                "SELECT * FROM generator",
                rgma::QueryType::Latest,
            );
            set.one_time_query(
                ctx,
                self.consumer_ep,
                "SELECT * FROM generator",
                rgma::QueryType::History,
            );
        }
    }
}

#[test]
fn one_time_latest_and_history_queries() {
    let (mut sim, nodes) = build_world(2, 61);
    let cfg = RgmaConfig::glite_3_0();
    let server = deploy_single_server(&mut sim, nodes[0], &cfg);
    let latest_counts: Rc<RefCell<Vec<usize>>> = Default::default();
    let history_counts: Rc<RefCell<Vec<usize>>> = Default::default();
    sim.add_actor(QueryDriver {
        node: nodes[1],
        producer_ep: server.producer,
        consumer_ep: server.consumer,
        cfg,
        set: None,
        latest_counts: latest_counts.clone(),
        history_counts: history_counts.clone(),
        handles: Vec::new(),
    });
    sim.run_until(SimTime::from_secs(80));
    let latest = latest_counts.borrow();
    let history = history_counts.borrow();
    assert_eq!(latest.len(), 1, "latest query answered");
    assert_eq!(history.len(), 1, "history query answered");
    // Latest: one (most recent) tuple per producer instance.
    assert_eq!(latest[0], 3, "one latest tuple per producer");
    // History: every retained tuple; inserts at t≈10,18,26,34 per
    // producer, queried at t≈40 with 60 s retention → all 4 each.
    assert_eq!(history[0], 12, "full history within retention");
    assert!(history[0] > latest[0]);
}
