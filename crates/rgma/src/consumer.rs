//! The Consumer servlet: runs continuous queries. A mediator cycle
//! refreshes the plan against the Registry, attaches streams to newly
//! visible producer instances, ingests stream chunks into per-instance
//! buffers, and answers subscriber polls.

use crate::config::RgmaConfig;
use crate::protocol::{
    poll_result_bytes, ConsumerId, ConsumerRequest, ConsumerResponse, ProducerRequest,
    ProducerResponse, QueryType, RegistryRequest, RegistryResponse, StreamChunk,
};
use minisql::{Statement, TableSchema};
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simnet::{
    http, ConnId, Delivery, Endpoint, HttpRequest, HttpResponse, NetworkFabric, Transport,
};
use simos::{NodeId, OsModel, ProcessId};
use std::collections::{BTreeMap, HashMap, HashSet};
use telemetry::{ProbeId, RttCollector};
use wire::Tuple;

/// Deployment-time control messages.
pub enum ConsumerControl {
    /// Install a table schema replica.
    DeclareTable {
        /// `CREATE TABLE` SQL.
        sql: String,
    },
}

struct CInstance {
    table: String,
    predicate: Option<minisql::Predicate>,
    columns: Vec<String>,
    buffer: Vec<(ProbeId, Tuple)>,
    /// Producer-instance endpoints already in the plan (port = pid).
    planned: HashSet<Endpoint>,
}

struct PlanTick;

/// An in-flight one-time (latest/history) query.
struct PendingQuery {
    client_conn: ConnId,
    client_req: u64,
    table: String,
    predicate: Option<minisql::Predicate>,
    columns: Vec<String>,
    query_type: QueryType,
    /// Producer servlets still to answer.
    outstanding: usize,
    collected: Vec<(ProbeId, Tuple)>,
}

/// The Consumer servlet actor.
pub struct ConsumerServlet {
    cfg: RgmaConfig,
    node: NodeId,
    proc: ProcessId,
    endpoint: Endpoint,
    registry_ep: Endpoint,
    registry_conn: Option<ConnId>,
    schemas: HashMap<String, TableSchema>,
    instances: HashMap<ConsumerId, CInstance>,
    next_instance: u32,
    /// Open producer-servlet connections, by servlet actor endpoint
    /// (port-stripped).
    producer_conns: HashMap<(NodeId, ActorId), ConnId>,
    /// Correlates registry lookups with consumer instances.
    pending_lookups: HashMap<u64, ConsumerId>,
    /// Correlates registry lookups with one-time queries.
    pending_query_lookups: HashMap<u64, u64>,
    /// One-time queries awaiting producer fetches, by query token.
    queries: HashMap<u64, PendingQuery>,
    next_query: u64,
    seen_conns: HashSet<ConnId>,
    next_req: u64,
}

impl ConsumerServlet {
    /// New consumer servlet on `node`/`proc`, mediating via `registry_ep`.
    pub fn new(cfg: RgmaConfig, node: NodeId, proc: ProcessId, registry_ep: Endpoint) -> Self {
        ConsumerServlet {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            registry_ep,
            registry_conn: None,
            schemas: HashMap::new(),
            instances: HashMap::new(),
            next_instance: 0,
            producer_conns: HashMap::new(),
            pending_lookups: HashMap::new(),
            pending_query_lookups: HashMap::new(),
            queries: HashMap::new(),
            next_query: 0,
            seen_conns: HashSet::new(),
            next_req: 0,
        }
    }

    fn producer_conn(&mut self, ctx: &mut Context<'_>, node: NodeId, actor: ActorId) -> ConnId {
        let me = self.endpoint;
        match self.producer_conns.get(&(node, actor)) {
            Some(c) => *c,
            None => {
                let servlet_ep = Endpoint::new(node, actor);
                let c = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.open(ctx.now(), Transport::Http, me, servlet_ep)
                });
                self.producer_conns.insert((node, actor), c);
                c
            }
        }
    }

    fn cpu(&self, ctx: &mut Context<'_>, comp: simprof::Component, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, comp, effective);
            done
        })
    }

    fn ensure_thread(&mut self, ctx: &mut Context<'_>, conn: ConnId) -> Result<(), String> {
        if self.seen_conns.contains(&conn) {
            return Ok(());
        }
        let r = ctx.with_service::<OsModel, _>(|os, _| os.spawn_thread(self.proc));
        match r {
            Ok(()) => {
                self.seen_conns.insert(conn);
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn respond_at(
        &self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        status: u16,
        bytes: usize,
        body: ConsumerResponse,
        at: SimTime,
    ) {
        let ep = self.endpoint;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(
                ctx,
                conn,
                ep,
                bytes + http::RESPONSE_OVERHEAD,
                Box::new(HttpResponse {
                    req_id,
                    status,
                    body: Box::new(body),
                }),
                at,
            );
        });
    }

    fn on_create_consumer(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        query: String,
    ) {
        let heap = self.cfg.memory.heap_per_consumer;
        let alloc = ctx.with_service::<OsModel, _>(|os, _| os.alloc(self.proc, heap));
        if let Err(e) = alloc {
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ConsumerResponse::Error {
                    reason: e.to_string(),
                },
                now,
            );
            return;
        }
        let parsed = minisql::parse(&query);
        let (table, predicate, columns) = match parsed {
            Ok(Statement::Select {
                columns,
                table,
                predicate,
            }) => (table, predicate, columns),
            Ok(_) => {
                let now = ctx.now();
                self.respond_at(
                    ctx,
                    conn,
                    req_id,
                    400,
                    64,
                    ConsumerResponse::Error {
                        reason: "not a SELECT".into(),
                    },
                    now,
                );
                return;
            }
            Err(e) => {
                let now = ctx.now();
                self.respond_at(
                    ctx,
                    conn,
                    req_id,
                    400,
                    64,
                    ConsumerResponse::Error {
                        reason: e.to_string(),
                    },
                    now,
                );
                return;
            }
        };
        let cid = ConsumerId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            cid,
            CInstance {
                table,
                predicate,
                columns,
                buffer: Vec::new(),
                planned: HashSet::new(),
            },
        );
        let done = self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.create_instance,
        );
        // Announce the consumer to the registry (soft-state mode only),
        // then kick an immediate mediation pass for this instance.
        let table = self.instances[&cid].table.clone();
        self.register_interest(ctx, table);
        self.lookup_for(ctx, cid);
        self.respond_at(
            ctx,
            conn,
            req_id,
            200,
            48,
            ConsumerResponse::Created { consumer: cid },
            done,
        );
    }

    fn lookup_for(&mut self, ctx: &mut Context<'_>, cid: ConsumerId) {
        let Some(inst) = self.instances.get(&cid) else {
            return;
        };
        let table = inst.table.clone();
        let rid = self.next_req;
        self.next_req += 1;
        self.pending_lookups.insert(rid, cid);
        let me = self.endpoint;
        let conn = self.registry_conn.expect("opened on start");
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/registry/lookup",
                64,
                Box::new(RegistryRequest::LookupProducers { table }),
            );
        });
    }

    /// Start a one-time latest/history query (GMA query/response mode).
    fn on_one_time_query(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        query: String,
        query_type: QueryType,
    ) {
        let parsed = minisql::parse(&query);
        let (table, predicate, columns) = match parsed {
            Ok(Statement::Select {
                columns,
                table,
                predicate,
            }) => (table, predicate, columns),
            _ => {
                let now = ctx.now();
                self.respond_at(
                    ctx,
                    conn,
                    req_id,
                    400,
                    64,
                    ConsumerResponse::Error {
                        reason: "one-time query must be a SELECT".into(),
                    },
                    now,
                );
                return;
            }
        };
        let qid = self.next_query;
        self.next_query += 1;
        self.queries.insert(
            qid,
            PendingQuery {
                client_conn: conn,
                client_req: req_id,
                table: table.clone(),
                predicate,
                columns,
                query_type,
                outstanding: 0,
                collected: Vec::new(),
            },
        );
        self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.create_instance / 4,
        );
        // Mediate: look the producers up, then fan the fetch out.
        let rid = self.next_req;
        self.next_req += 1;
        self.pending_query_lookups.insert(rid, qid);
        let me = self.endpoint;
        let reg_conn = self.registry_conn.expect("opened on start");
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                reg_conn,
                me,
                rid,
                "/registry/lookup",
                64,
                Box::new(RegistryRequest::LookupProducers { table }),
            );
        });
    }

    /// Fan a one-time query out to the producer servlets the registry
    /// returned.
    fn on_query_lookup_result(
        &mut self,
        ctx: &mut Context<'_>,
        qid: u64,
        endpoints: Vec<Endpoint>,
    ) {
        let me = self.endpoint;
        let Some(q) = self.queries.get(&qid) else {
            return;
        };
        let table = q.table.clone();
        let query_type = q.query_type;
        let mut servlets: BTreeMap<(NodeId, ActorId), Vec<crate::protocol::ProducerId>> =
            BTreeMap::new();
        for ep in endpoints {
            servlets
                .entry((ep.node, ep.actor))
                .or_default()
                .push(crate::protocol::ProducerId(u32::from(ep.port)));
        }
        if servlets.is_empty() {
            self.finish_query(ctx, qid);
            return;
        }
        self.queries.get_mut(&qid).expect("checked").outstanding = servlets.len();
        for ((node, actor), producers) in servlets {
            let conn = self.producer_conn(ctx, node, actor);
            let rid = self.next_req;
            self.next_req += 1;
            let req = ProducerRequest::Fetch {
                table: table.clone(),
                query_type,
                producers,
                token: qid,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                http::send_request(
                    net,
                    ctx,
                    conn,
                    me,
                    rid,
                    "/producer/fetch",
                    96,
                    Box::new(req),
                );
            });
        }
    }

    /// One producer servlet answered a fetch.
    fn on_fetch_result(&mut self, ctx: &mut Context<'_>, qid: u64, entries: Vec<(ProbeId, Tuple)>) {
        let n = entries.len() as u64;
        self.cpu(
            ctx,
            simprof::Component::RgmaSelect,
            self.cfg.costs.chunk_ingest_base
                + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n),
        );
        let Some(q) = self.queries.get_mut(&qid) else {
            return;
        };
        q.collected.extend(entries);
        q.outstanding = q.outstanding.saturating_sub(1);
        if q.outstanding == 0 {
            self.finish_query(ctx, qid);
        }
    }

    /// Filter, project and answer the waiting client.
    fn finish_query(&mut self, ctx: &mut Context<'_>, qid: u64) {
        let Some(q) = self.queries.remove(&qid) else {
            return;
        };
        let schema = self.schemas.get(&q.table);
        let entries: Vec<(ProbeId, Tuple)> = q
            .collected
            .into_iter()
            .filter(|(_, t)| match (&q.predicate, schema) {
                (None, _) | (_, None) => true,
                (Some(p), Some(s)) => minisql::eval_predicate(p, s, &t.values) == Some(true),
            })
            .map(|(p, mut t)| {
                if let (false, Some(s)) = (q.columns.is_empty(), schema) {
                    if let Ok(projected) = s.project(&t.values, &q.columns) {
                        t.values = projected;
                    }
                }
                (p, t)
            })
            .collect();
        let n = entries.len() as u64;
        let cost = self.cfg.costs.poll_answer
            + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n / 2);
        let done = self.cpu(ctx, simprof::Component::RgmaSelect, cost);
        let bytes = poll_result_bytes(&entries);
        self.respond_at(
            ctx,
            q.client_conn,
            q.client_req,
            200,
            bytes,
            ConsumerResponse::QueryResult { entries },
            done,
        );
    }

    fn on_lookup_result(
        &mut self,
        ctx: &mut Context<'_>,
        cid: ConsumerId,
        endpoints: Vec<Endpoint>,
    ) {
        let me = self.endpoint;
        let Some(inst) = self.instances.get_mut(&cid) else {
            return;
        };
        let table = inst.table.clone();
        // Which producer instances are new to the plan?
        let fresh: Vec<Endpoint> = endpoints
            .into_iter()
            .filter(|ep| !inst.planned.contains(ep))
            .collect();
        if fresh.is_empty() {
            return;
        }
        // Group the fresh instances by hosting servlet; one StartStream
        // per servlet attaches exactly those instances.
        let mut servlets: BTreeMap<(NodeId, ActorId), Vec<crate::protocol::ProducerId>> =
            BTreeMap::new();
        for ep in &fresh {
            servlets
                .entry((ep.node, ep.actor))
                .or_default()
                .push(crate::protocol::ProducerId(u32::from(ep.port)));
            inst.planned.insert(*ep);
        }
        for ((node, actor), producers) in servlets {
            let conn = self.producer_conn(ctx, node, actor);
            let rid = self.next_req;
            self.next_req += 1;
            let req = ProducerRequest::StartStream {
                table: table.clone(),
                consumer_ep: me,
                consumer: cid,
                producers,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                http::send_request(
                    net,
                    ctx,
                    conn,
                    me,
                    rid,
                    "/producer/stream",
                    96,
                    Box::new(req),
                );
            });
        }
    }

    fn on_chunk(&mut self, ctx: &mut Context<'_>, chunk: StreamChunk) {
        let n = chunk.entries.len() as u64;
        let cost = self.cfg.costs.chunk_ingest_base
            + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n);
        let done = self.cpu(ctx, simprof::Component::RgmaSelect, cost);
        let Some(inst) = self.instances.get_mut(&chunk.consumer) else {
            return;
        };
        let mut accepted = 0u64;
        let mut filtered = 0u64;
        let actor = self.endpoint.actor.index() as u64;
        for (probe, tuple) in chunk.entries {
            // Continuous-query predicate filter at the consumer.
            let matches = match (&inst.predicate, self.schemas.get(&inst.table)) {
                (None, _) => true,
                (Some(p), Some(schema)) => {
                    minisql::eval_predicate(p, schema, &tuple.values) == Some(true)
                }
                (Some(_), None) => true, // no schema replica: pass through
            };
            if !matches {
                filtered += 1;
                continue;
            }
            // The tuple is now *available* to the subscriber.
            ctx.service_mut::<RttCollector>()
                .before_receiving(probe, done);
            simtrace::with_trace(ctx, |tr, _| {
                let id = Some(simtrace::TraceId(probe.0));
                tr.record(
                    done,
                    id,
                    actor,
                    simtrace::EventKind::SelectMatch { consumers: 1 },
                );
                tr.record(done, id, actor, simtrace::EventKind::Available);
            });
            inst.buffer.push((probe, tuple));
            accepted += 1;
        }
        simtrace::with_trace(ctx, |tr, _| {
            tr.count(simtrace::Counter::SelectorMatches, accepted);
            tr.count(simtrace::Counter::SelectorMisses, filtered);
        });
        if accepted > 0 {
            let heap = simos::Bytes(self.cfg.memory.heap_per_tuple.0 * accepted);
            let _ = ctx.with_service::<OsModel, _>(|os, _| os.alloc(self.proc, heap));
        }
        // Servlet backlog: tuples buffered awaiting the next client poll.
        let instances = &self.instances;
        telemetry::with_metrics(ctx, |m, _| {
            let backlog: usize = instances.values().map(|i| i.buffer.len()).sum();
            m.set_gauge("rgma.consumer.buffered_tuples", backlog as f64);
        });
    }

    fn on_poll(&mut self, ctx: &mut Context<'_>, conn: ConnId, req_id: u64, cid: ConsumerId) {
        let Some(inst) = self.instances.get_mut(&cid) else {
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                404,
                64,
                ConsumerResponse::Error {
                    reason: format!("no consumer {cid:?}"),
                },
                now,
            );
            return;
        };
        let entries: Vec<(ProbeId, Tuple)> = {
            let schema = self.schemas.get(&inst.table);
            let drained: Vec<(ProbeId, Tuple)> = inst.buffer.drain(..).collect();
            match (&inst.columns[..], schema) {
                ([], _) | (_, None) => drained,
                (cols, Some(schema)) => drained
                    .into_iter()
                    .map(|(p, mut t)| {
                        if let Ok(projected) = schema.project(&t.values, cols) {
                            t.values = projected;
                        }
                        (p, t)
                    })
                    .collect(),
            }
        };
        let n = entries.len() as u64;
        if n > 0 {
            let heap = simos::Bytes(self.cfg.memory.heap_per_tuple.0 * n);
            ctx.with_service::<OsModel, _>(|os, _| os.free(self.proc, heap));
        }
        let cost = self.cfg.costs.poll_answer
            + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n / 2);
        let done = self.cpu(ctx, simprof::Component::RgmaSelect, cost);
        let bytes = poll_result_bytes(&entries);
        self.respond_at(
            ctx,
            conn,
            req_id,
            200,
            bytes,
            ConsumerResponse::PollResult { entries },
            done,
        );
    }

    /// Register this servlet's interest in `table` with the registry
    /// (GMA consumer registration). Only sent when the soft-state refresh
    /// is enabled; re-sent every mediation cycle so a restarted registry
    /// re-learns the consumer — the registry dedups live entries.
    fn register_interest(&mut self, ctx: &mut Context<'_>, table: String) {
        if self.cfg.soft_state_refresh.is_none() {
            return;
        }
        let me = self.endpoint;
        let conn = self.registry_conn.expect("opened on start");
        let rid = self.next_req;
        self.next_req += 1;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/registry/register-consumer",
                96,
                Box::new(RegistryRequest::RegisterConsumer {
                    table,
                    endpoint: me,
                }),
            );
        });
    }

    fn on_plan_tick(&mut self, ctx: &mut Context<'_>) {
        let mut cids: Vec<ConsumerId> = self.instances.keys().copied().collect();
        cids.sort_unstable();
        if self.cfg.soft_state_refresh.is_some() {
            let tables: std::collections::BTreeSet<String> =
                self.instances.values().map(|i| i.table.clone()).collect();
            for table in tables {
                self.register_interest(ctx, table);
            }
        }
        for cid in cids {
            self.lookup_for(ctx, cid);
        }
        ctx.timer(self.cfg.plan_refresh, PlanTick);
    }
}

impl Actor for ConsumerServlet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
        let me = self.endpoint;
        let reg = self.registry_ep;
        self.registry_conn = Some(ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, reg)
        }));
        ctx.timer(self.cfg.plan_refresh, PlanTick);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<ConsumerControl>() {
            Ok(ctrl) => {
                match *ctrl {
                    ConsumerControl::DeclareTable { sql } => {
                        let stmt = minisql::parse(&sql).expect("deployment SQL parses");
                        let Statement::CreateTable { table, columns } = stmt else {
                            panic!("DeclareTable needs CREATE TABLE");
                        };
                        self.schemas
                            .insert(table.clone(), TableSchema::new(table, columns));
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PlanTick>() {
            Ok(_) => {
                self.on_plan_tick(ctx);
                return;
            }
            Err(m) => m,
        };
        let Ok(d) = msg.downcast::<Delivery>() else {
            return;
        };
        let Delivery { conn, payload, .. } = *d;
        // Stream chunks arrive raw (not HTTP-wrapped: persistent stream).
        let payload = match payload.downcast::<StreamChunk>() {
            Ok(chunk) => {
                self.on_chunk(ctx, *chunk);
                return;
            }
            Err(p) => p,
        };
        // Responses from the registry and producer servlets.
        let payload = match payload.downcast::<HttpResponse>() {
            Ok(resp) => {
                let HttpResponse { req_id, body, .. } = *resp;
                if let Some(cid) = self.pending_lookups.remove(&req_id) {
                    if let Ok(r) = body.downcast::<RegistryResponse>() {
                        if let RegistryResponse::Producers { endpoints } = *r {
                            self.on_lookup_result(ctx, cid, endpoints);
                        }
                    }
                } else if let Some(qid) = self.pending_query_lookups.remove(&req_id) {
                    if let Ok(r) = body.downcast::<RegistryResponse>() {
                        if let RegistryResponse::Producers { endpoints } = *r {
                            self.on_query_lookup_result(ctx, qid, endpoints);
                        }
                    }
                } else if let Ok(r) = body.downcast::<ProducerResponse>() {
                    if let ProducerResponse::FetchResult { token, entries } = *r {
                        self.on_fetch_result(ctx, token, entries);
                    }
                }
                return;
            }
            Err(p) => p,
        };
        // Subscriber requests.
        let Ok(req) = payload.downcast::<HttpRequest>() else {
            return;
        };
        let HttpRequest { req_id, body, .. } = *req;
        // Fault injection: a stalled servlet answers 503 without work.
        if simfault::node_stalled(ctx, self.node) {
            simfault::with_faults(ctx, |inj, _| inj.stats.stall_rejections += 1);
            simtrace::with_trace(ctx, |tr, _| {
                tr.count(simtrace::Counter::FaultRejections, 1);
            });
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ConsumerResponse::Error {
                    reason: "servlet stalled".into(),
                },
                now,
            );
            return;
        }
        if let Err(reason) = self.ensure_thread(ctx, conn) {
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ConsumerResponse::Error { reason },
                now,
            );
            return;
        }
        let Ok(body) = body.downcast::<ConsumerRequest>() else {
            return;
        };
        self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.servlet_dispatch,
        );
        match *body {
            ConsumerRequest::CreateConsumer { query } => {
                self.on_create_consumer(ctx, conn, req_id, query)
            }
            ConsumerRequest::Poll { consumer } => self.on_poll(ctx, conn, req_id, consumer),
            ConsumerRequest::OneTimeQuery { query, query_type } => {
                self.on_one_time_query(ctx, conn, req_id, query, query_type)
            }
            ConsumerRequest::CloseConsumer { consumer } => {
                if self.instances.remove(&consumer).is_some() {
                    let heap = self.cfg.memory.heap_per_consumer;
                    ctx.with_service::<OsModel, _>(|os, _| os.free(self.proc, heap));
                }
                let now = ctx.now();
                self.respond_at(
                    ctx,
                    conn,
                    req_id,
                    200,
                    24,
                    ConsumerResponse::PollResult { entries: vec![] },
                    now,
                );
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-consumer-servlet"
    }
}
