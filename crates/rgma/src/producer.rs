//! The Primary Producer servlet: hosts one server-side producer instance
//! per client generator (memory storage, retention), registers instances
//! with the Registry, and streams buffered tuples to attached Consumer
//! streams on the periodic streaming cycle.
//!
//! Convention: an instance's registry entry uses the servlet endpoint
//! with `port = producer instance id`, so lookups return addressable
//! instances without a separate id field.

use crate::config::RgmaConfig;
use crate::protocol::{
    chunk_bytes, ConsumerId, ProducerId, ProducerRequest, ProducerResponse, QueryType,
    RegistryRequest, StreamChunk,
};
use crate::storage::MemoryStorage;
use minisql::{Statement, TableSchema};
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simnet::{
    http, ConnId, Delivery, Endpoint, HttpRequest, HttpResponse, NetworkFabric, Transport,
};
use simos::{NodeId, OsModel, ProcessId};
use std::collections::{BTreeMap, HashMap, HashSet};
use telemetry::ProbeId;

/// Deployment-time control messages.
pub enum ProducerControl {
    /// Install a table schema replica (the Schema service push).
    DeclareTable {
        /// `CREATE TABLE` SQL.
        sql: String,
    },
}

struct Instance {
    table: String,
    storage: MemoryStorage,
}

struct StreamState {
    conn: ConnId,
    consumer: ConsumerId,
    /// Per-instance read cursors (BTreeMap: deterministic flush order).
    cursors: BTreeMap<ProducerId, u64>,
}

struct FlushTick;
struct SweepTick;
struct RefreshTick;

/// The Primary Producer servlet actor.
pub struct ProducerServlet {
    cfg: RgmaConfig,
    node: NodeId,
    proc: ProcessId,
    endpoint: Endpoint,
    registry_ep: Endpoint,
    registry_conn: Option<ConnId>,
    schemas: HashMap<String, TableSchema>,
    instances: HashMap<ProducerId, Instance>,
    next_instance: u32,
    streams: Vec<StreamState>,
    /// Connections that already hold a service thread.
    seen_conns: HashSet<ConnId>,
    next_req: u64,
}

impl ProducerServlet {
    /// New producer servlet on `node`/`proc`, registering at `registry_ep`.
    pub fn new(cfg: RgmaConfig, node: NodeId, proc: ProcessId, registry_ep: Endpoint) -> Self {
        ProducerServlet {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            registry_ep,
            registry_conn: None,
            schemas: HashMap::new(),
            instances: HashMap::new(),
            next_instance: 0,
            streams: Vec::new(),
            seen_conns: HashSet::new(),
            next_req: 0,
        }
    }

    fn cpu(&self, ctx: &mut Context<'_>, comp: simprof::Component, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, comp, effective);
            done
        })
    }

    /// First request on a connection costs a Tomcat service thread; OOM
    /// here is the paper's "cannot accept N concurrent connections".
    fn ensure_thread(&mut self, ctx: &mut Context<'_>, conn: ConnId) -> Result<(), String> {
        if self.seen_conns.contains(&conn) {
            return Ok(());
        }
        let r = ctx.with_service::<OsModel, _>(|os, _| os.spawn_thread(self.proc));
        match r {
            Ok(()) => {
                self.seen_conns.insert(conn);
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn respond_at(
        &self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        status: u16,
        bytes: usize,
        body: ProducerResponse,
        at: SimTime,
    ) {
        let ep = self.endpoint;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(
                ctx,
                conn,
                ep,
                bytes + http::RESPONSE_OVERHEAD,
                Box::new(HttpResponse {
                    req_id,
                    status,
                    body: Box::new(body),
                }),
                at,
            );
        });
    }

    fn on_create_producer(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        table: String,
    ) {
        // Heap for the instance.
        let heap = self.cfg.memory.heap_per_producer;
        let alloc = ctx.with_service::<OsModel, _>(|os, _| os.alloc(self.proc, heap));
        if let Err(e) = alloc {
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ProducerResponse::Error {
                    reason: e.to_string(),
                },
                now,
            );
            return;
        }
        let pid = ProducerId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            pid,
            Instance {
                table: table.clone(),
                storage: MemoryStorage::new(self.cfg.latest_retention, self.cfg.history_retention),
            },
        );
        let done = self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.create_instance,
        );
        // Register the instance with the registry (async; the instance is
        // immediately usable by its client, but invisible to consumers
        // until registration propagates — the warm-up window).
        let my_ep = self.endpoint;
        let reg_conn = self.registry_conn.expect("registry conn opened on start");
        let req = RegistryRequest::RegisterProducer {
            table,
            endpoint: Endpoint::with_port(my_ep.node, my_ep.actor, pid.0 as u16),
        };
        let rid = self.next_req;
        self.next_req += 1;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                reg_conn,
                my_ep,
                rid,
                "/registry/register",
                96,
                Box::new(req),
            );
        });
        self.respond_at(
            ctx,
            conn,
            req_id,
            200,
            48,
            ProducerResponse::Created { producer: pid },
            done,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_insert(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        producer: ProducerId,
        sql: String,
        probe: ProbeId,
        published_at: simcore::SimTime,
    ) {
        let cost = self.cfg.costs.insert_base
            + SimDuration::from_micros(
                (sql.len() as u64 * self.cfg.costs.insert_per_byte_ns).div_ceil(1000),
            );
        let done = self.cpu(ctx, simprof::Component::RgmaInsert, cost);
        telemetry::with_metrics(ctx, |m, _| {
            m.add_counter("rgma.inserts", 1);
            m.observe("rgma.insert_cost_us", cost.as_micros());
        });
        let result: Result<u32, String> = (|| {
            let inst = self
                .instances
                .get_mut(&producer)
                .ok_or_else(|| format!("no such producer {producer:?}"))?;
            let stmt = minisql::parse(&sql).map_err(|e| e.to_string())?;
            let Statement::Insert {
                table,
                columns,
                values,
            } = stmt
            else {
                return Err("not an INSERT".into());
            };
            if table != inst.table {
                return Err(format!("wrong table {table}"));
            }
            let schema = self
                .schemas
                .get(&table)
                .ok_or_else(|| format!("unknown table {table}"))?;
            let row = schema
                .normalize_insert(&columns, &values)
                .map_err(|e| e.to_string())?;
            let mut tuple = schema.to_tuple(row);
            // Out-of-band freshness stamp: parsed SQL can't carry it, so
            // the servlet copies it from the request onto the stored
            // tuple, whence it rides through streaming/fetch/poll.
            tuple.published_at = Some(published_at);
            inst.storage.insert(tuple, probe, done);
            Ok(inst.storage.len() as u32)
        })();
        match result {
            Ok(rows) => {
                let heap = self.cfg.memory.heap_per_tuple;
                let _ = ctx.with_service::<OsModel, _>(|os, _| os.alloc(self.proc, heap));
                self.respond_at(ctx, conn, req_id, 200, 24, ProducerResponse::InsertOk, done);
                let actor = self.endpoint.actor.index() as u64;
                simtrace::with_trace(ctx, |tr, _| {
                    tr.record(
                        done,
                        Some(simtrace::TraceId(probe.0)),
                        actor,
                        simtrace::EventKind::StorageInsert { rows },
                    );
                    tr.count(simtrace::Counter::TuplesStored, 1);
                });
            }
            Err(reason) => {
                self.respond_at(
                    ctx,
                    conn,
                    req_id,
                    400,
                    64,
                    ProducerResponse::Error { reason },
                    done,
                );
            }
        }
    }

    fn on_start_stream(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        table: String,
        consumer: ConsumerId,
        producers: Vec<ProducerId>,
    ) {
        let done = self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.servlet_dispatch,
        );
        // Attach (or extend) the stream for this consumer: any instance of
        // `table` not yet covered gets a cursor at its current tail.
        let stream_ix = self
            .streams
            .iter()
            .position(|s| s.consumer == consumer && s.conn == conn);
        let stream_ix = match stream_ix {
            Some(ix) => ix,
            None => {
                let consumer_ep = ctx.service::<NetworkFabric>().peer_of(conn, self.endpoint);
                let _ = consumer_ep;
                self.streams.push(StreamState {
                    conn,
                    consumer,
                    cursors: BTreeMap::new(),
                });
                self.streams.len() - 1
            }
        };
        let stream = &mut self.streams[stream_ix];
        let replay_from = simcore::SimTime::from_micros(
            ctx.now()
                .as_micros()
                .saturating_sub(self.cfg.attach_replay.as_micros()),
        );
        for pid in producers {
            let Some(inst) = self.instances.get(&pid) else {
                continue;
            };
            if inst.table == table {
                stream
                    .cursors
                    .entry(pid)
                    .or_insert_with(|| inst.storage.cursor_since(replay_from));
            }
        }
        self.respond_at(
            ctx,
            conn,
            req_id,
            200,
            24,
            ProducerResponse::StreamStarted,
            done,
        );
    }

    /// One-shot latest/history fetch against instance storage (the GMA
    /// query/response mode).
    #[allow(clippy::too_many_arguments)]
    fn on_fetch(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        req_id: u64,
        table: String,
        query_type: QueryType,
        producers: Vec<ProducerId>,
        token: u64,
    ) {
        let now = ctx.now();
        let mut entries = Vec::new();
        for pid in producers {
            let Some(inst) = self.instances.get(&pid) else {
                continue;
            };
            if inst.table != table {
                continue;
            }
            match query_type {
                QueryType::Latest => {
                    if let Some(e) = inst.storage.latest(now) {
                        entries.push((e.probe, e.tuple.clone()));
                    }
                }
                QueryType::History => {
                    entries.extend(
                        inst.storage
                            .history()
                            .iter()
                            .map(|e| (e.probe, e.tuple.clone())),
                    );
                }
            }
        }
        let n = entries.len() as u64;
        let cost = self.cfg.costs.poll_answer
            + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n / 2);
        let done = self.cpu(ctx, simprof::Component::RgmaSelect, cost);
        let bytes = crate::protocol::poll_result_bytes(&entries);
        self.respond_at(
            ctx,
            conn,
            req_id,
            200,
            bytes,
            ProducerResponse::FetchResult { token, entries },
            done,
        );
    }

    /// The streaming cycle: collect new tuples per stream and push one
    /// merged chunk per consumer stream.
    fn on_flush(&mut self, ctx: &mut Context<'_>) {
        let ep = self.endpoint;
        let mut sends: Vec<(ConnId, StreamChunk)> = Vec::new();
        for stream in &mut self.streams {
            let mut entries = Vec::new();
            for (pid, cursor) in stream.cursors.iter_mut() {
                if let Some(inst) = self.instances.get(pid) {
                    let (chunk, next) = inst.storage.read_from(*cursor);
                    entries.extend(chunk.iter().map(|e| (e.probe, e.tuple.clone())));
                    *cursor = next;
                }
            }
            if !entries.is_empty() {
                sends.push((
                    stream.conn,
                    StreamChunk {
                        consumer: stream.consumer,
                        entries,
                    },
                ));
            }
        }
        for (conn, chunk) in sends {
            let n = chunk.entries.len() as u64;
            let cost = self.cfg.costs.stream_send
                + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n / 4);
            let done = self.cpu(ctx, simprof::Component::RgmaSelect, cost);
            let bytes = chunk_bytes(&chunk);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, ep, bytes, Box::new(chunk), done);
            });
        }
        ctx.timer(self.cfg.streaming_period, FlushTick);
    }

    /// Soft-state refresh: re-register every live instance. After a
    /// registry restart (Tomcat bounce) the wiped directory re-learns
    /// them here; while the registry is healthy these are idempotent.
    fn on_refresh(&mut self, ctx: &mut Context<'_>) {
        let Some(period) = self.cfg.soft_state_refresh else {
            return;
        };
        let my_ep = self.endpoint;
        let reg_conn = self.registry_conn.expect("registry conn opened on start");
        let mut pids: Vec<ProducerId> = self.instances.keys().copied().collect();
        pids.sort_unstable();
        let n = pids.len() as u64;
        for pid in pids {
            let table = self.instances[&pid].table.clone();
            let req = RegistryRequest::RegisterProducer {
                table,
                endpoint: Endpoint::with_port(my_ep.node, my_ep.actor, pid.0 as u16),
            };
            let rid = self.next_req;
            self.next_req += 1;
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                http::send_request(
                    net,
                    ctx,
                    reg_conn,
                    my_ep,
                    rid,
                    "/registry/register",
                    96,
                    Box::new(req),
                );
            });
        }
        if n > 0 {
            simfault::with_faults(ctx, |inj, _| inj.stats.reregistrations += n);
        }
        ctx.timer(period, RefreshTick);
    }

    fn on_sweep(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let mut evicted = 0usize;
        for inst in self.instances.values_mut() {
            evicted += inst.storage.sweep(now);
        }
        if evicted > 0 {
            let heap = simos::Bytes(self.cfg.memory.heap_per_tuple.0 * evicted as u64);
            ctx.with_service::<OsModel, _>(|os, _| os.free(self.proc, heap));
        }
        ctx.timer(SimDuration::from_secs(5), SweepTick);
    }
}

impl Actor for ProducerServlet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
        let me = self.endpoint;
        let reg = self.registry_ep;
        self.registry_conn = Some(ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, reg)
        }));
        ctx.timer(self.cfg.streaming_period, FlushTick);
        ctx.timer(SimDuration::from_secs(5), SweepTick);
        if let Some(period) = self.cfg.soft_state_refresh {
            ctx.timer(period, RefreshTick);
        }
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<ProducerControl>() {
            Ok(ctrl) => {
                match *ctrl {
                    ProducerControl::DeclareTable { sql } => {
                        let stmt = minisql::parse(&sql).expect("deployment SQL parses");
                        let Statement::CreateTable { table, columns } = stmt else {
                            panic!("DeclareTable needs CREATE TABLE");
                        };
                        self.schemas
                            .insert(table.clone(), TableSchema::new(table, columns));
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FlushTick>() {
            Ok(_) => {
                self.on_flush(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SweepTick>() {
            Ok(_) => {
                self.on_sweep(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RefreshTick>() {
            Ok(_) => {
                self.on_refresh(ctx);
                return;
            }
            Err(m) => m,
        };
        let Ok(d) = msg.downcast::<Delivery>() else {
            return;
        };
        let Delivery { conn, payload, .. } = *d;
        // Responses from the registry need no handling (fire-and-forget
        // registration); requests are dispatched below.
        let payload = match payload.downcast::<HttpResponse>() {
            Ok(_) => return,
            Err(p) => p,
        };
        let Ok(req) = payload.downcast::<HttpRequest>() else {
            return;
        };
        let HttpRequest { req_id, body, .. } = *req;
        // Fault injection: a stalled servlet (Tomcat GC pause / overload)
        // answers 503 without doing any work.
        if simfault::node_stalled(ctx, self.node) {
            simfault::with_faults(ctx, |inj, _| inj.stats.stall_rejections += 1);
            simtrace::with_trace(ctx, |tr, _| {
                tr.count(simtrace::Counter::FaultRejections, 1);
            });
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ProducerResponse::Error {
                    reason: "servlet stalled".into(),
                },
                now,
            );
            return;
        }
        // Thread-per-connection accept gate.
        if let Err(reason) = self.ensure_thread(ctx, conn) {
            let now = ctx.now();
            self.respond_at(
                ctx,
                conn,
                req_id,
                503,
                64,
                ProducerResponse::Error { reason },
                now,
            );
            return;
        }
        let Ok(body) = body.downcast::<ProducerRequest>() else {
            return;
        };
        // Base servlet dispatch cost applies to every request.
        self.cpu(
            ctx,
            simprof::Component::RgmaServlet,
            self.cfg.costs.servlet_dispatch,
        );
        match *body {
            ProducerRequest::CreateProducer { table } => {
                self.on_create_producer(ctx, conn, req_id, table)
            }
            ProducerRequest::Insert {
                producer,
                sql,
                probe,
                published_at,
            } => self.on_insert(ctx, conn, req_id, producer, sql, probe, published_at),
            ProducerRequest::CloseProducer { producer } => {
                if self.instances.remove(&producer).is_some() {
                    let heap = self.cfg.memory.heap_per_producer;
                    ctx.with_service::<OsModel, _>(|os, _| os.free(self.proc, heap));
                }
                let now = ctx.now();
                self.respond_at(ctx, conn, req_id, 200, 24, ProducerResponse::InsertOk, now);
            }
            ProducerRequest::StartStream {
                table,
                consumer_ep: _,
                consumer,
                producers,
            } => self.on_start_stream(ctx, conn, req_id, table, consumer, producers),
            ProducerRequest::Fetch {
                table,
                query_type,
                producers,
                token,
            } => self.on_fetch(ctx, conn, req_id, table, query_type, producers, token),
        }
    }

    fn name(&self) -> &str {
        "rgma-producer-servlet"
    }
}
