//! The Registry + Schema servlet: R-GMA's directory service.
//!
//! Producers register `(table, servlet endpoint, instance id)`; consumers
//! look up producers for their query's table. Registrations become
//! visible only after the propagation delay (replication between registry
//! instances / mediator caches in gLite) — the mechanism behind the
//! paper's warm-up data loss.

use crate::config::RgmaConfig;
use crate::protocol::{ProducerId, RegistryRequest, RegistryResponse};
use gma::{Directory, RegistrationId, TransferMode};
use minisql::{Catalog, Statement};
use simcore::{Actor, ActorId, Context, Payload, SimTime};
use simfault::FaultSignal;
use simnet::{http, Delivery, Endpoint, HttpRequest, NetworkFabric};
use simos::{NodeId, OsModel, ProcessId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Direct (non-HTTP) control for deployment setup.
pub enum RegistryControl {
    /// Declare a table in the schema before the run starts.
    DeclareTable {
        /// `CREATE TABLE` SQL.
        sql: String,
    },
}

/// Registry counters shared with the experiment driver.
#[derive(Debug, Default, Clone, Copy)]
pub struct RegistryStats {
    /// Producer registrations accepted (including soft-state refreshes).
    pub registrations: u64,
    /// Consumer registrations accepted.
    pub consumer_registrations: u64,
    /// Fault-injected restarts (directory wiped).
    pub restarts: u32,
}

/// Shared handle to registry statistics.
pub type RegistryStatsHandle = Rc<RefCell<RegistryStats>>;

/// The registry servlet actor.
pub struct RegistryActor {
    cfg: RgmaConfig,
    node: NodeId,
    #[allow(dead_code)]
    proc: ProcessId,
    endpoint: Endpoint,
    directory: Directory,
    /// Parallel map: registration → producer instance id.
    instance_of: HashMap<RegistrationId, ProducerId>,
    /// Idempotence for soft-state refreshes: `(table, endpoint)` pairs
    /// already registered. Wiped (with the directory) on restart, so the
    /// next refresh re-lands the entry.
    registered: HashMap<(String, Endpoint), RegistrationId>,
    catalog: Catalog,
    stats: RegistryStatsHandle,
}

impl RegistryActor {
    /// New registry on `node`/`proc`.
    pub fn new(cfg: RgmaConfig, node: NodeId, proc: ProcessId) -> Self {
        let propagation = cfg.registry_propagation;
        RegistryActor {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            directory: Directory::new(propagation),
            instance_of: HashMap::new(),
            registered: HashMap::new(),
            catalog: Catalog::new(),
            stats: RegistryStatsHandle::default(),
        }
    }

    /// Statistics handle; clone before `add_actor`.
    pub fn stats_handle(&self) -> RegistryStatsHandle {
        self.stats.clone()
    }

    /// A Tomcat restart: every soft-state registration is lost; the
    /// schema catalog (backed by the database) survives.
    fn on_restart(&mut self) {
        self.directory = Directory::new(self.cfg.registry_propagation);
        self.instance_of.clear();
        self.registered.clear();
        self.stats.borrow_mut().restarts += 1;
    }

    fn handle_request(
        &mut self,
        ctx: &mut Context<'_>,
        delivery_conn: simnet::ConnId,
        req: HttpRequest,
    ) {
        let node = self.node;
        let done: SimTime = ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(
                node,
                ctx.now(),
                self.cfg.costs.servlet_dispatch + self.cfg.costs.registry_op,
            );
            simprof::charge(ctx, simprof::Component::RgmaRegistry, effective);
            done
        });
        let body = req.body.downcast::<RegistryRequest>();
        let resp = match body {
            Ok(b) => match *b {
                RegistryRequest::RegisterProducer { table, endpoint } => {
                    // Producer id travels in the endpoint's port field by
                    // convention (see producer servlet). Soft-state
                    // refreshes of a live entry are no-ops.
                    if !self.registered.contains_key(&(table.clone(), endpoint)) {
                        let pid = ProducerId(u32::from(endpoint.port));
                        let reg = self.directory.register_producer(
                            ctx.now(),
                            endpoint,
                            table.clone(),
                            vec![TransferMode::PublishSubscribe, TransferMode::QueryResponse],
                        );
                        self.instance_of.insert(reg, pid);
                        self.registered.insert((table, endpoint), reg);
                        self.stats.borrow_mut().registrations += 1;
                    }
                    RegistryResponse::Registered
                }
                RegistryRequest::RegisterConsumer { table, endpoint } => {
                    if !self.registered.contains_key(&(table.clone(), endpoint)) {
                        let reg = self
                            .directory
                            .register_consumer(ctx.now(), endpoint, &table);
                        self.registered.insert((table, endpoint), reg);
                        self.stats.borrow_mut().consumer_registrations += 1;
                    }
                    RegistryResponse::Registered
                }
                RegistryRequest::LookupProducers { table } => {
                    let endpoints = self
                        .directory
                        .find_producers(ctx.now(), &table)
                        .into_iter()
                        .map(|p| p.endpoint)
                        .collect();
                    RegistryResponse::Producers { endpoints }
                }
                RegistryRequest::DeclareTable { sql } => match minisql::parse(&sql) {
                    Ok(stmt @ Statement::CreateTable { .. }) => match self.catalog.create(&stmt) {
                        Ok(_) => RegistryResponse::TableDeclared,
                        Err(e) => RegistryResponse::Error {
                            reason: e.to_string(),
                        },
                    },
                    Ok(_) => RegistryResponse::Error {
                        reason: "not a CREATE TABLE".into(),
                    },
                    Err(e) => RegistryResponse::Error {
                        reason: e.to_string(),
                    },
                },
            },
            Err(_) => RegistryResponse::Error {
                reason: "malformed registry request".into(),
            },
        };
        let ep = self.endpoint;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_response(
                net,
                ctx,
                delivery_conn,
                ep,
                req.req_id,
                200,
                96,
                Box::new(resp),
            );
        });
        let _ = done;
    }
}

impl Actor for RegistryActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<RegistryControl>() {
            Ok(ctrl) => {
                match *ctrl {
                    RegistryControl::DeclareTable { sql } => {
                        let stmt = minisql::parse(&sql).expect("deployment-provided SQL parses");
                        self.catalog.create(&stmt).expect("table not yet declared");
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FaultSignal>() {
            Ok(sig) => {
                if matches!(*sig, FaultSignal::RegistryRestart) {
                    self.on_restart();
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let Delivery { conn, payload, .. } = *d;
            if let Ok(req) = payload.downcast::<HttpRequest>() {
                self.handle_request(ctx, conn, *req);
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-registry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FnActor, SimDuration, Simulation};
    use simnet::{FabricConfig, HttpResponse, Transport};
    use simos::{NodeSpec, ProcessSpec};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn register_then_lookup_respects_propagation() {
        let mut sim = Simulation::new(5);
        let mut os = OsModel::new();
        let n0 = os.add_node(NodeSpec::hydra("hydra1", 0.0));
        let _n1 = os.add_node(NodeSpec::hydra("hydra2", 0.0));
        let proc = os.add_process(n0, ProcessSpec::jvm_1g());
        sim.add_service(os);
        sim.add_service(NetworkFabric::new(FabricConfig::default(), 2));
        let mut cfg = RgmaConfig::glite_3_0();
        cfg.registry_propagation = SimDuration::from_secs(4);
        let reg = sim.add_actor(RegistryActor::new(cfg, n0, proc));
        let reg_ep = Endpoint::new(n0, reg);

        let results: Rc<RefCell<Vec<usize>>> = Default::default();
        let results2 = results.clone();
        struct Probe;
        let client = sim.add_actor(FnActor(move |msg: Payload, ctx: &mut Context| {
            let msg = match msg.downcast::<Probe>() {
                Ok(_) => {
                    // Lookup phase.
                    let me = Endpoint::new(NodeId(1), ctx.self_id());
                    ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                        // Re-open a conn each time for simplicity.
                        let conn = net.open(ctx.now(), Transport::Http, me, reg_ep);
                        http::send_request(
                            net,
                            ctx,
                            conn,
                            me,
                            2,
                            "/registry",
                            64,
                            Box::new(RegistryRequest::LookupProducers {
                                table: "generator".into(),
                            }),
                        );
                    });
                    return;
                }
                Err(m) => m,
            };
            if let Ok(d) = msg.downcast::<Delivery>() {
                if let Ok(resp) = d.payload.downcast::<HttpResponse>() {
                    if let Ok(r) = resp.body.downcast::<RegistryResponse>() {
                        if let RegistryResponse::Producers { endpoints } = *r {
                            results2.borrow_mut().push(endpoints.len());
                        }
                    }
                }
            }
        }));
        // Register at t=0 (from the client actor's node 1, producer id 7).
        struct Kick;
        let starter = sim.add_actor(FnActor(move |msg: Payload, ctx: &mut Context| {
            if msg.downcast::<Kick>().is_err() {
                return; // ignore our own HTTP response
            }
            let me = Endpoint::new(NodeId(1), ctx.self_id());
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Http, me, reg_ep);
                http::send_request(
                    net,
                    ctx,
                    conn,
                    me,
                    1,
                    "/registry",
                    96,
                    Box::new(RegistryRequest::RegisterProducer {
                        table: "generator".into(),
                        endpoint: Endpoint::with_port(NodeId(1), ctx.self_id(), 7),
                    }),
                );
            });
        }));
        sim.schedule(SimDuration::ZERO, starter, Box::new(Kick));
        // Lookup at t=1s (before propagation) and t=6s (after).
        sim.schedule(SimDuration::from_secs(1), client, Box::new(Probe));
        sim.schedule(SimDuration::from_secs(6), client, Box::new(Probe));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(
            *results.borrow(),
            vec![0, 1],
            "propagation gates visibility"
        );
    }
}
