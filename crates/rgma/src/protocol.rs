//! HTTP request/response bodies exchanged between R-GMA components.
//!
//! Everything in R-GMA travels over HTTP into servlets; these enums are
//! the entity bodies. Byte sizes are estimated from the carried SQL text
//! and tuples (plus the HTTP framing added by `simnet::http`).

use simcore::SimTime;
use simnet::Endpoint;
use telemetry::ProbeId;
use wire::Tuple;

/// Server-side producer instance id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProducerId(pub u32);

/// Server-side consumer instance id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConsumerId(pub u32);

/// One-time query flavours (GMA query/response mode). Continuous queries
/// are subscriptions; these fetch from producer storage on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryType {
    /// Most recent tuple per producer instance, within the latest-retention
    /// window (paper: 30 s).
    Latest,
    /// Every tuple still inside the history-retention window (paper: 1 min).
    History,
}

/// Requests to the Primary Producer servlet.
pub enum ProducerRequest {
    /// Create a server-side producer instance publishing into `table`.
    CreateProducer {
        /// Table the instance declares.
        table: String,
    },
    /// `INSERT` one tuple (the SQL text is what travels).
    Insert {
        /// Target producer instance.
        producer: ProducerId,
        /// Full SQL INSERT text.
        sql: String,
        /// Telemetry probe.
        probe: ProbeId,
        /// Virtual instant the application called insert (`simslo`
        /// freshness stamp). Out-of-band like `probe`: byte accounting
        /// only counts the SQL text, and retries re-send the original
        /// stamp. The producer servlet copies it onto the stored
        /// tuple, whence it rides to consumers.
        published_at: SimTime,
    },
    /// Close the instance (unregisters and frees storage).
    CloseProducer {
        /// Instance to close.
        producer: ProducerId,
    },
    /// One-shot fetch from producer-instance storage (latest/history
    /// query plan step).
    Fetch {
        /// Table queried.
        table: String,
        /// Latest or history.
        query_type: QueryType,
        /// Producer instances to read.
        producers: Vec<ProducerId>,
        /// Correlation token chosen by the consumer servlet.
        token: u64,
    },
    /// A Consumer servlet attaches a continuous-query stream for `table`.
    StartStream {
        /// Table wanted.
        table: String,
        /// Consumer servlet's endpoint (chunks flow there).
        consumer_ep: Endpoint,
        /// Consumer instance to tag chunks with.
        consumer: ConsumerId,
        /// Producer instances to attach (from the registry lookup). Only
        /// these are attached — instances the mediator has not yet seen
        /// keep accumulating invisible tuples, the warm-up loss window.
        producers: Vec<ProducerId>,
    },
}

/// Responses from the Primary Producer servlet.
pub enum ProducerResponse {
    /// Instance created.
    Created {
        /// New instance id.
        producer: ProducerId,
    },
    /// Insert accepted.
    InsertOk,
    /// Stream attached.
    StreamStarted,
    /// One-shot fetch result.
    FetchResult {
        /// Token from the request.
        token: u64,
        /// Matching `(probe, tuple)` pairs.
        entries: Vec<(ProbeId, Tuple)>,
    },
    /// Request failed (OOM, unknown instance, bad SQL…).
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// A batch of tuples flowing producer → consumer on a stream.
pub struct StreamChunk {
    /// Receiving consumer instance.
    pub consumer: ConsumerId,
    /// `(probe, tuple)` pairs in insertion order.
    pub entries: Vec<(ProbeId, Tuple)>,
}

/// Requests to the Consumer servlet.
pub enum ConsumerRequest {
    /// Create a consumer instance running a continuous query.
    CreateConsumer {
        /// The `SELECT` text.
        query: String,
    },
    /// One-time latest/history query (GMA query/response mode).
    OneTimeQuery {
        /// The `SELECT` text.
        query: String,
        /// Latest or history semantics.
        query_type: QueryType,
    },
    /// Subscriber poll: drain buffered tuples.
    Poll {
        /// Consumer instance.
        consumer: ConsumerId,
    },
    /// Close the instance.
    CloseConsumer {
        /// Instance to close.
        consumer: ConsumerId,
    },
}

/// Responses from the Consumer servlet.
pub enum ConsumerResponse {
    /// Instance created.
    Created {
        /// New instance id.
        consumer: ConsumerId,
    },
    /// Poll result: the drained tuples.
    PollResult {
        /// `(probe, tuple)` pairs.
        entries: Vec<(ProbeId, Tuple)>,
    },
    /// One-time query result: all matching tuples from the plan.
    QueryResult {
        /// `(probe, tuple)` pairs.
        entries: Vec<(ProbeId, Tuple)>,
    },
    /// Request failed.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Requests to the Registry servlet.
pub enum RegistryRequest {
    /// A producer servlet registers an instance's table.
    RegisterProducer {
        /// Table published.
        table: String,
        /// Producer servlet endpoint.
        endpoint: Endpoint,
    },
    /// A consumer servlet registers a continuous query's interest in a
    /// table (soft state: re-sent on every mediation cycle when the
    /// soft-state refresh is enabled, so registry restarts are survived).
    RegisterConsumer {
        /// Table consumed.
        table: String,
        /// Consumer servlet endpoint.
        endpoint: Endpoint,
    },
    /// A consumer servlet looks up producers for a table.
    LookupProducers {
        /// Table wanted.
        table: String,
    },
    /// Declare a table in the Schema (CREATE TABLE text).
    DeclareTable {
        /// The `CREATE TABLE` SQL.
        sql: String,
    },
}

/// Responses from the Registry servlet.
pub enum RegistryResponse {
    /// Registration accepted.
    Registered,
    /// Table declared (or already present with identical definition).
    TableDeclared,
    /// Lookup result: producer-servlet endpoints currently visible.
    Producers {
        /// Visible endpoints.
        endpoints: Vec<Endpoint>,
    },
    /// Request failed.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Approximate entity bytes for a chunk.
pub fn chunk_bytes(chunk: &StreamChunk) -> usize {
    24 + chunk
        .entries
        .iter()
        .map(|(_, t)| t.wire_size() + 8)
        .sum::<usize>()
}

/// Approximate entity bytes for a poll result.
pub fn poll_result_bytes(entries: &[(ProbeId, Tuple)]) -> usize {
    24 + entries
        .iter()
        .map(|(_, t)| t.wire_size() + 8)
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::Value;

    #[test]
    fn byte_estimates_scale_with_tuples() {
        let t = Tuple::new("g", vec![Value::Int(1), Value::Double(2.0)]);
        let chunk = StreamChunk {
            consumer: ConsumerId(1),
            entries: vec![(ProbeId(0), t.clone()), (ProbeId(1), t.clone())],
        };
        assert!(chunk_bytes(&chunk) > 2 * t.wire_size());
        assert_eq!(poll_result_bytes(&chunk.entries), chunk_bytes(&chunk));
        assert_eq!(poll_result_bytes(&[]), 24);
    }
}
