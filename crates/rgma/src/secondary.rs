//! The Secondary Producer: consumes a table's stream from Primary
//! Producers and republishes it — with the *deliberate 30-second batch
//! delay* the R-GMA developers confirmed to the authors (§III.F.3). This
//! component is why fig 10's percentiles sit at 25–35 s.
//!
//! It plays both roles: towards Primary Producer servlets it behaves like
//! a consumer (registry lookups + StartStream); towards Consumer servlets
//! it behaves like a producer servlet hosting a single instance
//! publishing `output_table`.

use crate::config::RgmaConfig;
use crate::protocol::{
    chunk_bytes, ConsumerId, ProducerRequest, ProducerResponse, RegistryRequest, RegistryResponse,
    StreamChunk,
};
use crate::storage::MemoryStorage;
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simnet::{
    http, ConnId, Delivery, Endpoint, HttpRequest, HttpResponse, NetworkFabric, Transport,
};
use simos::{NodeId, OsModel, ProcessId};
use std::collections::{BTreeMap, HashMap, HashSet};
use telemetry::ProbeId;
use wire::Tuple;

struct FlushTick;
struct PlanTick;

struct DownStream {
    conn: ConnId,
    consumer: ConsumerId,
    cursor: u64,
}

/// The Secondary Producer actor.
pub struct SecondaryProducer {
    cfg: RgmaConfig,
    node: NodeId,
    /// Hosting JVM (batch heap is accounted here).
    proc: ProcessId,
    endpoint: Endpoint,
    registry_ep: Endpoint,
    registry_conn: Option<ConnId>,
    /// Table consumed from primaries.
    input_table: String,
    /// Table republished (consumers attach to this).
    output_table: String,
    /// Pending batch (accumulates for `secondary_flush`).
    batch: Vec<(ProbeId, Tuple)>,
    /// Republished storage (for streams + retention).
    storage: MemoryStorage,
    /// Upstream plan: producer-instance endpoints already streamed from.
    planned: HashSet<Endpoint>,
    upstream_conns: HashMap<(NodeId, ActorId), ConnId>,
    /// Downstream consumer streams.
    downstreams: Vec<DownStream>,
    pending_lookup: Option<u64>,
    next_req: u64,
    /// The well-known id of our single published instance.
    my_pid_port: u16,
}

impl SecondaryProducer {
    /// New Secondary Producer consuming `input_table` and republishing as
    /// `output_table`.
    pub fn new(
        cfg: RgmaConfig,
        node: NodeId,
        proc: ProcessId,
        registry_ep: Endpoint,
        input_table: impl Into<String>,
        output_table: impl Into<String>,
    ) -> Self {
        let storage = MemoryStorage::new(cfg.latest_retention, cfg.history_retention * 10);
        SecondaryProducer {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            registry_ep,
            registry_conn: None,
            input_table: input_table.into(),
            output_table: output_table.into(),
            batch: Vec::new(),
            storage,
            planned: HashSet::new(),
            upstream_conns: HashMap::new(),
            downstreams: Vec::new(),
            pending_lookup: None,
            next_req: 0,
            my_pid_port: 0,
        }
    }

    fn cpu(&self, ctx: &mut Context<'_>, comp: simprof::Component, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, comp, effective);
            done
        })
    }

    fn req_id(&mut self) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    /// Mediation towards the primaries.
    fn lookup_upstream(&mut self, ctx: &mut Context<'_>) {
        let rid = self.req_id();
        self.pending_lookup = Some(rid);
        let me = self.endpoint;
        let conn = self.registry_conn.expect("opened on start");
        let table = self.input_table.clone();
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/registry/lookup",
                64,
                Box::new(RegistryRequest::LookupProducers { table }),
            );
        });
    }

    fn attach_upstream(&mut self, ctx: &mut Context<'_>, endpoints: Vec<Endpoint>) {
        let me = self.endpoint;
        let fresh: Vec<Endpoint> = endpoints
            .into_iter()
            .filter(|ep| !self.planned.contains(ep))
            .collect();
        let mut servlets: BTreeMap<(NodeId, ActorId), Vec<crate::protocol::ProducerId>> =
            BTreeMap::new();
        for ep in &fresh {
            servlets
                .entry((ep.node, ep.actor))
                .or_default()
                .push(crate::protocol::ProducerId(u32::from(ep.port)));
            self.planned.insert(*ep);
        }
        for ((node, actor), producers) in servlets {
            let servlet_ep = Endpoint::new(node, actor);
            let conn = *self.upstream_conns.entry((node, actor)).or_insert_with(|| {
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.open(ctx.now(), Transport::Http, me, servlet_ep)
                })
            });
            let rid = self.req_id();
            // We pose as consumer id u32::MAX - our port: chunk routing
            // happens by the conn, so any unique value works.
            let req = ProducerRequest::StartStream {
                table: self.input_table.clone(),
                consumer_ep: me,
                consumer: ConsumerId(u32::MAX),
                producers,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                http::send_request(
                    net,
                    ctx,
                    conn,
                    me,
                    rid,
                    "/producer/stream",
                    96,
                    Box::new(req),
                );
            });
        }
    }

    /// The deliberate batch flush: republish everything accumulated in
    /// the last `secondary_flush` window, then push to downstreams.
    fn on_flush(&mut self, ctx: &mut Context<'_>) {
        let n = self.batch.len() as u64;
        if n > 0 {
            // The republished batch leaves the accumulation buffer.
            let heap = simos::Bytes(self.cfg.memory.heap_per_tuple.0 * n);
            let proc = self.proc;
            ctx.with_service::<OsModel, _>(|os, _| os.free(proc, heap));
            let cost = self.cfg.costs.insert_base
                + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n);
            let done = self.cpu(ctx, simprof::Component::RgmaSecondary, cost);
            for (probe, tuple) in std::mem::take(&mut self.batch) {
                self.storage.insert(tuple, probe, done);
            }
            let actor = self.endpoint.actor.index() as u64;
            simtrace::with_trace(ctx, |tr, _| {
                tr.record(
                    done,
                    None,
                    actor,
                    simtrace::EventKind::BatchFlush { tuples: n as u32 },
                );
                tr.count(simtrace::Counter::BatchFlushes, 1);
                tr.gauge_set(simtrace::Gauge::BatchOccupancy, 0);
            });
            // Stream to downstream consumers.
            let ep = self.endpoint;
            let mut sends = Vec::new();
            for ds in &mut self.downstreams {
                let (chunk, next) = self.storage.read_from(ds.cursor);
                if !chunk.is_empty() {
                    sends.push((
                        ds.conn,
                        StreamChunk {
                            consumer: ds.consumer,
                            entries: chunk.iter().map(|e| (e.probe, e.tuple.clone())).collect(),
                        },
                    ));
                }
                ds.cursor = next;
            }
            for (conn, chunk) in sends {
                let bytes = chunk_bytes(&chunk);
                let at = self.cpu(
                    ctx,
                    simprof::Component::RgmaSecondary,
                    self.cfg.costs.stream_send,
                );
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send_at(ctx, conn, ep, bytes, Box::new(chunk), at);
                });
            }
        }
        ctx.timer(self.cfg.secondary_flush, FlushTick);
    }
}

impl Actor for SecondaryProducer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
        let me = self.endpoint;
        let reg = self.registry_ep;
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, reg)
        });
        self.registry_conn = Some(conn);
        // Register our single republished instance (port 0 by convention).
        let rid = self.req_id();
        let req = RegistryRequest::RegisterProducer {
            table: self.output_table.clone(),
            endpoint: Endpoint::with_port(me.node, me.actor, self.my_pid_port),
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/registry/register",
                96,
                Box::new(req),
            );
        });
        ctx.timer(self.cfg.plan_refresh, PlanTick);
        ctx.timer(self.cfg.secondary_flush, FlushTick);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<FlushTick>() {
            Ok(_) => {
                self.on_flush(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PlanTick>() {
            Ok(_) => {
                self.lookup_upstream(ctx);
                ctx.timer(self.cfg.plan_refresh, PlanTick);
                return;
            }
            Err(m) => m,
        };
        let Ok(d) = msg.downcast::<Delivery>() else {
            return;
        };
        let Delivery { conn, payload, .. } = *d;
        // Upstream chunks from primaries: accumulate into the batch
        // (heap is held until the 30 s flush republishes it).
        let payload = match payload.downcast::<StreamChunk>() {
            Ok(chunk) => {
                let n = chunk.entries.len() as u64;
                self.cpu(
                    ctx,
                    simprof::Component::RgmaSecondary,
                    self.cfg.costs.chunk_ingest_base
                        + SimDuration::from_micros(self.cfg.costs.per_tuple.as_micros() * n),
                );
                let heap = simos::Bytes(self.cfg.memory.heap_per_tuple.0 * n);
                let proc = self.proc;
                let _ = ctx.with_service::<OsModel, _>(|os, _| os.alloc(proc, heap));
                self.batch.extend(chunk.entries);
                let occupancy = self.batch.len() as u32;
                let actor = self.endpoint.actor.index() as u64;
                simtrace::with_trace(ctx, |tr, at| {
                    tr.record(
                        at,
                        None,
                        actor,
                        simtrace::EventKind::BatchEnqueue { occupancy },
                    );
                    tr.gauge_set(simtrace::Gauge::BatchOccupancy, u64::from(occupancy));
                });
                telemetry::with_metrics(ctx, |m, _| {
                    m.set_gauge("rgma.secondary.batch_tuples", f64::from(occupancy));
                });
                return;
            }
            Err(p) => p,
        };
        // Registry lookup responses.
        let payload = match payload.downcast::<HttpResponse>() {
            Ok(resp) => {
                if Some(resp.req_id) == self.pending_lookup {
                    self.pending_lookup = None;
                    if let Ok(r) = resp.body.downcast::<RegistryResponse>() {
                        if let RegistryResponse::Producers { endpoints } = *r {
                            self.attach_upstream(ctx, endpoints);
                        }
                    }
                }
                return;
            }
            Err(p) => p,
        };
        // Downstream consumers attaching to our output table.
        let Ok(req) = payload.downcast::<HttpRequest>() else {
            return;
        };
        let HttpRequest { req_id, body, .. } = *req;
        if let Ok(body) = body.downcast::<ProducerRequest>() {
            if let ProducerRequest::StartStream {
                table, consumer, ..
            } = *body
            {
                debug_assert_eq!(table, self.output_table);
                self.downstreams.push(DownStream {
                    conn,
                    consumer,
                    cursor: self.storage.tail_cursor(),
                });
                let done = self.cpu(
                    ctx,
                    simprof::Component::RgmaSecondary,
                    self.cfg.costs.servlet_dispatch,
                );
                let ep = self.endpoint;
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send_at(
                        ctx,
                        conn,
                        ep,
                        24 + http::RESPONSE_OVERHEAD,
                        Box::new(HttpResponse {
                            req_id,
                            status: 200,
                            body: Box::new(ProducerResponse::StreamStarted),
                        }),
                        done,
                    );
                });
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-secondary-producer"
    }
}
