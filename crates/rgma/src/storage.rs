//! Primary Producer memory storage with latest/history retention.
//!
//! Each simulated generator gets one server-side producer instance with
//! its own storage, exactly as the paper configured ("Primary Producers
//! used memory storage to allow fast query. The latest retention period
//! was set to 30 seconds and history retention period was set to 1
//! minute.").

use simcore::{SimDuration, SimTime};
use telemetry::ProbeId;
use wire::Tuple;

/// A stored tuple plus its telemetry probe.
#[derive(Debug, Clone)]
pub struct StoredTuple {
    /// The tuple (with `inserted_at` stamped).
    pub tuple: Tuple,
    /// Telemetry probe of the insert.
    pub probe: ProbeId,
}

/// In-memory tuple store with retention sweeping and stream cursors.
#[derive(Debug, Default)]
pub struct MemoryStorage {
    /// Tuples in insertion order; `start` is the logical head after
    /// evictions (indices below it are gone).
    entries: Vec<StoredTuple>,
    evicted: usize,
    latest_retention: SimDuration,
    history_retention: SimDuration,
}

impl MemoryStorage {
    /// New storage with the given retention settings.
    pub fn new(latest_retention: SimDuration, history_retention: SimDuration) -> Self {
        MemoryStorage {
            entries: Vec::new(),
            evicted: 0,
            latest_retention,
            history_retention,
        }
    }

    /// Insert a tuple at `now`; stamps `inserted_at`. Returns its cursor
    /// position (monotonic across evictions).
    pub fn insert(&mut self, mut tuple: Tuple, probe: ProbeId, now: SimTime) -> u64 {
        tuple.inserted_at = now;
        self.entries.push(StoredTuple { tuple, probe });
        (self.evicted + self.entries.len() - 1) as u64
    }

    /// Evict tuples older than the history retention. Returns how many
    /// were evicted.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let cutoff_time = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.history_retention.as_micros()),
        );
        let keep_from = self
            .entries
            .iter()
            .position(|e| e.tuple.inserted_at >= cutoff_time)
            .unwrap_or(self.entries.len());
        if keep_from > 0 {
            self.entries.drain(..keep_from);
            self.evicted += keep_from;
        }
        keep_from
    }

    /// Tuples inserted at or after `cursor`; advances the cursor. This is
    /// the continuous-query read path: a stream attached at cursor C sees
    /// only tuples inserted after attachment.
    pub fn read_from(&self, cursor: u64) -> (&[StoredTuple], u64) {
        let start = (cursor as usize).saturating_sub(self.evicted);
        let slice = if start >= self.entries.len() {
            &[][..]
        } else {
            &self.entries[start..]
        };
        let new_cursor = (self.evicted + self.entries.len()) as u64;
        (slice, new_cursor)
    }

    /// Cursor one past the newest tuple (attach point for a new stream).
    pub fn tail_cursor(&self) -> u64 {
        (self.evicted + self.entries.len()) as u64
    }

    /// Cursor positioned at the first live tuple inserted at or after
    /// `since` (attach point including a replay window).
    pub fn cursor_since(&self, since: SimTime) -> u64 {
        let offset = self
            .entries
            .iter()
            .position(|e| e.tuple.inserted_at >= since)
            .unwrap_or(self.entries.len());
        (self.evicted + offset) as u64
    }

    /// Latest query: the most recent tuple within the latest-retention
    /// window.
    pub fn latest(&self, now: SimTime) -> Option<&StoredTuple> {
        let cutoff = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.latest_retention.as_micros()),
        );
        self.entries
            .iter()
            .rev()
            .find(|e| e.tuple.inserted_at >= cutoff)
    }

    /// History query: all tuples still retained.
    pub fn history(&self) -> &[StoredTuple] {
        &self.entries
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no live tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::Value;

    fn tup(v: i32) -> Tuple {
        Tuple::new("g", vec![Value::Int(v)])
    }

    fn storage() -> MemoryStorage {
        MemoryStorage::new(SimDuration::from_secs(30), SimDuration::from_secs(60))
    }

    #[test]
    fn insert_stamps_time_and_orders() {
        let mut s = storage();
        s.insert(tup(1), ProbeId(0), SimTime::from_secs(1));
        s.insert(tup(2), ProbeId(1), SimTime::from_secs(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.history()[0].tuple.inserted_at, SimTime::from_secs(1));
        assert_eq!(s.history()[1].tuple.values, vec![Value::Int(2)]);
    }

    #[test]
    fn sweep_evicts_old_history() {
        let mut s = storage();
        s.insert(tup(1), ProbeId(0), SimTime::from_secs(0));
        s.insert(tup(2), ProbeId(1), SimTime::from_secs(50));
        // At t=70, the t=0 tuple exceeds 60 s history retention.
        assert_eq!(s.sweep(SimTime::from_secs(70)), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.history()[0].probe, ProbeId(1));
        // Sweeping again evicts nothing.
        assert_eq!(s.sweep(SimTime::from_secs(70)), 0);
    }

    #[test]
    fn stream_cursor_only_sees_new_tuples() {
        let mut s = storage();
        s.insert(tup(1), ProbeId(0), SimTime::from_secs(1));
        let attach = s.tail_cursor();
        s.insert(tup(2), ProbeId(1), SimTime::from_secs(2));
        s.insert(tup(3), ProbeId(2), SimTime::from_secs(3));
        let (chunk, next) = s.read_from(attach);
        assert_eq!(chunk.len(), 2, "only tuples after attachment");
        assert_eq!(chunk[0].probe, ProbeId(1));
        let (chunk2, _) = s.read_from(next);
        assert!(chunk2.is_empty(), "cursor drained");
    }

    #[test]
    fn cursor_survives_eviction() {
        let mut s = storage();
        s.insert(tup(1), ProbeId(0), SimTime::from_secs(0));
        s.insert(tup(2), ProbeId(1), SimTime::from_secs(1));
        let cursor = s.tail_cursor(); // = 2
        s.sweep(SimTime::from_secs(120)); // evicts both
        s.insert(tup(3), ProbeId(2), SimTime::from_secs(121));
        let (chunk, _) = s.read_from(cursor);
        assert_eq!(chunk.len(), 1);
        assert_eq!(chunk[0].probe, ProbeId(2));
    }

    #[test]
    fn latest_respects_retention_window() {
        let mut s = storage();
        s.insert(tup(1), ProbeId(0), SimTime::from_secs(0));
        assert_eq!(s.latest(SimTime::from_secs(10)).unwrap().probe, ProbeId(0));
        // At t=31 the latest-retention (30 s) window has passed.
        assert!(s.latest(SimTime::from_secs(31)).is_none());
        s.insert(tup(2), ProbeId(1), SimTime::from_secs(40));
        assert_eq!(s.latest(SimTime::from_secs(41)).unwrap().probe, ProbeId(1));
    }

    #[test]
    fn read_past_end_is_empty() {
        let s = storage();
        let (chunk, cursor) = s.read_from(999);
        assert!(chunk.is_empty());
        assert_eq!(cursor, 0);
    }
}
