//! Client-side R-GMA APIs: the Primary Producer client (create + insert)
//! and the subscriber (create consumer + 100 ms polling), managed in bulk
//! by one host actor per driver program — mirroring the paper's Java
//! driver that forked one thread per generator.
//!
//! Host-actor contract: forward [`simnet::Delivery`] payloads to
//! [`RgmaClientSet::handle_delivery`] and [`RgmaTimer`] payloads to
//! [`RgmaClientSet::handle_timer`].

use crate::config::RgmaConfig;
use crate::protocol::{
    ConsumerId, ConsumerRequest, ConsumerResponse, ProducerId, ProducerRequest, ProducerResponse,
    QueryType,
};
use simcore::{Context, SimDuration};
use simnet::{http, ConnId, Delivery, Endpoint, HttpResponse, NetworkFabric, Transport};
use simos::{NodeId, OsModel};
use std::collections::HashMap;
use telemetry::RttCollector;

/// Timer payload routed back by the host actor.
pub struct RgmaTimer(pub u64);

/// Client-side handle to one producer (== one generator connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProducerHandle(pub u32);

/// Client-side handle to one subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriberHandle(pub u32);

/// Client-side handle to one one-time query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHandle(pub u32);

/// Events surfaced to the host actor.
#[derive(Debug, PartialEq)]
pub enum RgmaEvent {
    /// Producer instance created and usable.
    ProducerReady(ProducerHandle),
    /// Producer creation failed (server refused: OOM / thread limit).
    ProducerFailed(ProducerHandle, String),
    /// An insert was rejected by the server.
    InsertFailed(ProducerHandle, String),
    /// Subscriber's consumer instance created; polling started.
    SubscriberReady(SubscriberHandle),
    /// Subscriber creation failed.
    SubscriberFailed(SubscriberHandle, String),
    /// A poll returned `count` tuples.
    Polled(SubscriberHandle, usize),
    /// A one-time latest/history query completed with its tuples.
    QueryCompleted(QueryHandle, Vec<(telemetry::ProbeId, wire::Tuple)>),
    /// A one-time query failed.
    QueryFailed(QueryHandle, String),
}

enum ReqPurpose {
    CreateProducer(ProducerHandle),
    Insert(ProducerHandle),
    CreateConsumer(SubscriberHandle),
    Poll(SubscriberHandle),
    OneTimeQuery(QueryHandle),
}

struct ProducerState {
    conn: ConnId,
    server: Option<ProducerId>,
    table: String,
    /// CreateProducer retries spent (5xx retry policy).
    create_retries: u32,
}

struct SubscriberState {
    conn: ConnId,
    server: Option<ConsumerId>,
    polling: bool,
}

/// Everything needed to retry a synchronous insert with the same probe
/// (and the same freshness stamp — a retry is the same reading).
struct InsertInfo {
    sql: String,
    probe: telemetry::ProbeId,
    published_at: simcore::SimTime,
    retries: u32,
}

enum TimerPurpose {
    Poll(SubscriberHandle),
    InsertRetry {
        handle: ProducerHandle,
        sql: String,
        probe: telemetry::ProbeId,
        published_at: simcore::SimTime,
        retries: u32,
    },
    CreateRetry(ProducerHandle),
}

/// A set of R-GMA client endpoints owned by one host actor.
pub struct RgmaClientSet {
    cfg: RgmaConfig,
    node: NodeId,
    producers: HashMap<ProducerHandle, ProducerState>,
    subscribers: HashMap<SubscriberHandle, SubscriberState>,
    next_handle: u32,
    pending: HashMap<u64, ReqPurpose>,
    /// Outstanding inserts by request id (probe + retry budget).
    insert_info: HashMap<u64, InsertInfo>,
    timers: HashMap<u64, TimerPurpose>,
    next_req: u64,
    next_timer: u64,
}

/// Exponential backoff for the `retries`-th retry.
fn http_backoff(policy: &crate::config::HttpRetryPolicy, retries: u32) -> SimDuration {
    let shift = retries.min(20);
    policy
        .backoff_initial
        .saturating_mul(1u64 << shift)
        .min(policy.backoff_max)
}

impl RgmaClientSet {
    /// New client set on `node`.
    pub fn new(cfg: RgmaConfig, node: NodeId) -> Self {
        RgmaClientSet {
            cfg,
            node,
            producers: HashMap::new(),
            subscribers: HashMap::new(),
            next_handle: 0,
            pending: HashMap::new(),
            insert_info: HashMap::new(),
            timers: HashMap::new(),
            next_req: 0,
            next_timer: 0,
        }
    }

    fn my_ep(&self, ctx: &Context<'_>) -> Endpoint {
        Endpoint::new(self.node, ctx.self_id())
    }

    fn req_id(&mut self) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    /// Create a Primary Producer publishing into `table` via the producer
    /// servlet at `servlet_ep`. One dedicated HTTP connection per
    /// producer (one server thread), as in the paper's tests.
    pub fn create_producer(
        &mut self,
        ctx: &mut Context<'_>,
        servlet_ep: Endpoint,
        table: impl Into<String>,
    ) -> ProducerHandle {
        let handle = ProducerHandle(self.next_handle);
        self.next_handle += 1;
        let table: String = table.into();
        let me = self.my_ep(ctx);
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, servlet_ep)
        });
        self.producers.insert(
            handle,
            ProducerState {
                conn,
                server: None,
                table,
                create_retries: 0,
            },
        );
        self.send_create(ctx, handle);
        handle
    }

    /// (Re-)send the CreateProducer request for `handle` on its conn.
    fn send_create(&mut self, ctx: &mut Context<'_>, handle: ProducerHandle) {
        let Some(state) = self.producers.get(&handle) else {
            return;
        };
        let conn = state.conn;
        let table = state.table.clone();
        let me = self.my_ep(ctx);
        let rid = self.req_id();
        self.pending.insert(rid, ReqPurpose::CreateProducer(handle));
        let body = ProducerRequest::CreateProducer { table };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/producer/create",
                96,
                Box::new(body),
            );
        });
    }

    /// Insert one tuple as a full SQL text. Instruments
    /// `before_sending`; `after_sending` fires when the HTTP 200 lands
    /// (insert is synchronous in the R-GMA API).
    pub fn insert(
        &mut self,
        ctx: &mut Context<'_>,
        handle: ProducerHandle,
        sql: String,
    ) -> telemetry::ProbeId {
        let now = ctx.now();
        let lane = ctx.self_id().index() as u32;
        let probe = ctx.service_mut::<RttCollector>().before_sending(lane, now);
        // Freshness plane: the "topic" of an R-GMA reading is the table
        // its producer declares.
        let topic = self.producers.get(&handle).map_or("", |p| p.table.as_str());
        simslo::with_slo(ctx, |slo, at| slo.record_publish(probe, topic, at));
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::PublishBegin,
            );
        });
        self.send_insert(ctx, handle, sql, probe, now, 0);
        probe
    }

    /// Send (or retry) an insert carrying `probe` and the original
    /// freshness stamp.
    fn send_insert(
        &mut self,
        ctx: &mut Context<'_>,
        handle: ProducerHandle,
        sql: String,
        probe: telemetry::ProbeId,
        published_at: simcore::SimTime,
        retries: u32,
    ) {
        let state = self.producers.get(&handle).expect("unknown producer");
        let server = state
            .server
            .expect("insert before ProducerReady — wait for the event");
        let conn = state.conn;
        // Client-side HTTP assembly cost.
        let node = self.node;
        let client_cost = self.cfg.costs.client_http;
        let done = ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), client_cost);
            simprof::charge(ctx, simprof::Component::RgmaClient, effective);
            done
        });
        let rid = self.req_id();
        self.pending.insert(rid, ReqPurpose::Insert(handle));
        self.insert_info.insert(
            rid,
            InsertInfo {
                sql: sql.clone(),
                probe,
                published_at,
                retries,
            },
        );
        let bytes = sql.len();
        let me = self.my_ep(ctx);
        let body = ProducerRequest::Insert {
            producer: server,
            sql,
            probe,
            published_at,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(
                ctx,
                conn,
                me,
                bytes + http::REQUEST_OVERHEAD,
                Box::new(simnet::HttpRequest {
                    req_id: rid,
                    path: "/producer/insert".into(),
                    body: Box::new(body),
                    issued_at: done,
                }),
                done,
            );
        });
    }

    /// Issue a one-time latest/history query against a Consumer servlet
    /// (GMA query/response mode). The result arrives as
    /// [`RgmaEvent::QueryCompleted`].
    pub fn one_time_query(
        &mut self,
        ctx: &mut Context<'_>,
        servlet_ep: Endpoint,
        query: impl Into<String>,
        query_type: QueryType,
    ) -> QueryHandle {
        let handle = QueryHandle(self.next_handle);
        self.next_handle += 1;
        let me = self.my_ep(ctx);
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, servlet_ep)
        });
        let rid = self.req_id();
        self.pending.insert(rid, ReqPurpose::OneTimeQuery(handle));
        let body = ConsumerRequest::OneTimeQuery {
            query: query.into(),
            query_type,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/consumer/query",
                128,
                Box::new(body),
            );
        });
        handle
    }

    /// Create a subscriber: a consumer instance running `query`, polled
    /// every `poll_period`.
    pub fn create_subscriber(
        &mut self,
        ctx: &mut Context<'_>,
        servlet_ep: Endpoint,
        query: impl Into<String>,
    ) -> SubscriberHandle {
        let handle = SubscriberHandle(self.next_handle);
        self.next_handle += 1;
        let me = self.my_ep(ctx);
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.open(ctx.now(), Transport::Http, me, servlet_ep)
        });
        self.subscribers.insert(
            handle,
            SubscriberState {
                conn,
                server: None,
                polling: false,
            },
        );
        let rid = self.req_id();
        self.pending.insert(rid, ReqPurpose::CreateConsumer(handle));
        let body = ConsumerRequest::CreateConsumer {
            query: query.into(),
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/consumer/create",
                128,
                Box::new(body),
            );
        });
        handle
    }

    fn send_poll(&mut self, ctx: &mut Context<'_>, handle: SubscriberHandle) {
        let Some(state) = self.subscribers.get(&handle) else {
            return;
        };
        let Some(server) = state.server else {
            return;
        };
        let conn = state.conn;
        let rid = self.req_id();
        self.pending.insert(rid, ReqPurpose::Poll(handle));
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            http::send_request(
                net,
                ctx,
                conn,
                me,
                rid,
                "/consumer/poll",
                32,
                Box::new(ConsumerRequest::Poll { consumer: server }),
            );
        });
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, purpose: TimerPurpose) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, purpose);
        ctx.timer(delay, RgmaTimer(token));
    }

    fn arm_poll(&mut self, ctx: &mut Context<'_>, handle: SubscriberHandle) {
        self.arm_timer(ctx, self.cfg.poll_period, TimerPurpose::Poll(handle));
    }

    /// Handle a network delivery addressed to the host actor.
    pub fn handle_delivery(&mut self, ctx: &mut Context<'_>, delivery: Delivery) -> Vec<RgmaEvent> {
        let Ok(resp) = delivery.payload.downcast::<HttpResponse>() else {
            return Vec::new();
        };
        let HttpResponse {
            req_id,
            status,
            body,
        } = *resp;
        let Some(purpose) = self.pending.remove(&req_id) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        match purpose {
            ReqPurpose::CreateProducer(handle) => match body.downcast::<ProducerResponse>() {
                Ok(r) => match *r {
                    ProducerResponse::Created { producer } => {
                        if let Some(s) = self.producers.get_mut(&handle) {
                            s.server = Some(producer);
                        }
                        events.push(RgmaEvent::ProducerReady(handle));
                    }
                    ProducerResponse::Error { reason } => {
                        // Transient server failure (stall / OOM): retry
                        // with backoff when the policy allows it.
                        let retriable = status >= 500
                            && self.cfg.insert_retry.is_some_and(|p| {
                                self.producers
                                    .get(&handle)
                                    .is_some_and(|s| s.create_retries < p.max_retries)
                            });
                        if retriable {
                            let policy = self.cfg.insert_retry.expect("checked");
                            let s = self.producers.get_mut(&handle).expect("checked");
                            let delay = http_backoff(&policy, s.create_retries);
                            s.create_retries += 1;
                            simfault::with_faults(ctx, |inj, _| inj.stats.http_retries += 1);
                            self.arm_timer(ctx, delay, TimerPurpose::CreateRetry(handle));
                        } else {
                            events.push(RgmaEvent::ProducerFailed(handle, reason));
                        }
                    }
                    _ => {}
                },
                Err(_) => events.push(RgmaEvent::ProducerFailed(
                    handle,
                    format!("unexpected response (status {status})"),
                )),
            },
            ReqPurpose::Insert(handle) => {
                let info = self.insert_info.remove(&req_id);
                match body.downcast::<ProducerResponse>() {
                    Ok(r) => match *r {
                        ProducerResponse::InsertOk => {
                            if let Some(info) = info {
                                // The synchronous insert() has returned.
                                let probe = info.probe;
                                let now = ctx.now();
                                ctx.service_mut::<RttCollector>().after_sending(probe, now);
                                let actor = ctx.self_id().index() as u64;
                                simtrace::with_trace(ctx, |tr, at| {
                                    tr.record(
                                        at,
                                        Some(simtrace::TraceId(probe.0)),
                                        actor,
                                        simtrace::EventKind::PublishEnd,
                                    );
                                });
                            }
                        }
                        ProducerResponse::Error { reason } => {
                            let retriable = status >= 500
                                && info.is_some()
                                && self.cfg.insert_retry.is_some_and(|p| {
                                    info.as_ref().expect("checked").retries < p.max_retries
                                });
                            if retriable {
                                let policy = self.cfg.insert_retry.expect("checked");
                                let info = info.expect("checked");
                                let delay = http_backoff(&policy, info.retries);
                                simfault::with_faults(ctx, |inj, _| inj.stats.http_retries += 1);
                                self.arm_timer(
                                    ctx,
                                    delay,
                                    TimerPurpose::InsertRetry {
                                        handle,
                                        sql: info.sql,
                                        probe: info.probe,
                                        published_at: info.published_at,
                                        retries: info.retries + 1,
                                    },
                                );
                            } else {
                                events.push(RgmaEvent::InsertFailed(handle, reason));
                            }
                        }
                        _ => {}
                    },
                    Err(_) => events.push(RgmaEvent::InsertFailed(handle, "bad response".into())),
                }
            }
            ReqPurpose::CreateConsumer(handle) => match body.downcast::<ConsumerResponse>() {
                Ok(r) => match *r {
                    ConsumerResponse::Created { consumer } => {
                        if let Some(s) = self.subscribers.get_mut(&handle) {
                            s.server = Some(consumer);
                            s.polling = true;
                        }
                        events.push(RgmaEvent::SubscriberReady(handle));
                        self.arm_poll(ctx, handle);
                    }
                    ConsumerResponse::Error { reason } => {
                        events.push(RgmaEvent::SubscriberFailed(handle, reason));
                    }
                    _ => {}
                },
                Err(_) => events.push(RgmaEvent::SubscriberFailed(handle, "bad response".into())),
            },
            ReqPurpose::OneTimeQuery(handle) => match body.downcast::<ConsumerResponse>() {
                Ok(r) => match *r {
                    ConsumerResponse::QueryResult { entries } => {
                        events.push(RgmaEvent::QueryCompleted(handle, entries));
                    }
                    ConsumerResponse::Error { reason } => {
                        events.push(RgmaEvent::QueryFailed(handle, reason));
                    }
                    _ => {}
                },
                Err(_) => events.push(RgmaEvent::QueryFailed(handle, "bad response".into())),
            },
            ReqPurpose::Poll(handle) => {
                if let Ok(r) = body.downcast::<ConsumerResponse>() {
                    if let ConsumerResponse::PollResult { entries } = *r {
                        let n = entries.len();
                        // Client-side processing of the poll result.
                        let node = self.node;
                        let cost =
                            self.cfg.costs.client_http + SimDuration::from_micros(50 * n as u64);
                        let done = ctx.with_service::<OsModel, _>(|os, ctx| {
                            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
                            simprof::charge(ctx, simprof::Component::RgmaClient, effective);
                            done
                        });
                        let actor = ctx.self_id().index() as u64;
                        for (probe, tuple) in entries {
                            ctx.service_mut::<RttCollector>()
                                .after_receiving(probe, done);
                            simtrace::with_trace(ctx, |tr, _| {
                                tr.record(
                                    done,
                                    Some(simtrace::TraceId(probe.0)),
                                    actor,
                                    simtrace::EventKind::Delivered,
                                );
                                tr.count(simtrace::Counter::TuplesDelivered, 1);
                            });
                            // Freshness plane: the subscriber has the
                            // tuple once the poll-result processing is
                            // done; the stamp rode on the tuple from the
                            // producer servlet's storage.
                            simslo::with_slo(ctx, |slo, _| {
                                slo.record_delivery(probe, actor as u32, done, tuple.published_at);
                            });
                        }
                        events.push(RgmaEvent::Polled(handle, n));
                    }
                }
                // Schedule the next poll regardless of result.
                if self.subscribers.get(&handle).is_some_and(|s| s.polling) {
                    self.arm_poll(ctx, handle);
                }
            }
        }
        events
    }

    /// Handle a poll or retry timer.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_>, timer: RgmaTimer) {
        let Some(purpose) = self.timers.remove(&timer.0) else {
            return;
        };
        match purpose {
            TimerPurpose::Poll(handle) => self.send_poll(ctx, handle),
            TimerPurpose::InsertRetry {
                handle,
                sql,
                probe,
                published_at,
                retries,
            } => {
                simtrace::with_trace(ctx, |tr, _| {
                    tr.count(simtrace::Counter::Retries, 1);
                });
                if self
                    .producers
                    .get(&handle)
                    .is_some_and(|s| s.server.is_some())
                {
                    self.send_insert(ctx, handle, sql, probe, published_at, retries);
                }
            }
            TimerPurpose::CreateRetry(handle) => {
                simtrace::with_trace(ctx, |tr, _| {
                    tr.count(simtrace::Counter::Retries, 1);
                });
                self.send_create(ctx, handle);
            }
        }
    }

    /// Is the producer usable yet?
    pub fn producer_ready(&self, handle: ProducerHandle) -> bool {
        self.producers
            .get(&handle)
            .is_some_and(|p| p.server.is_some())
    }

    /// Number of producers created through this set.
    pub fn producer_count(&self) -> usize {
        self.producers.len()
    }
}
