//! Configuration and cost model for the R-GMA-like middleware.
//!
//! Calibrated to gLite 3.0 R-GMA on the paper's testbed: Java servlets in
//! Tomcat on Pentium III 866 MHz nodes, everything over HTTP. The heavy
//! per-request servlet costs plus periodic streaming/mediation cycles are
//! what produce the paper's long Process Time (fig 15) and the growth in
//! figs 11–14; nothing below hard-codes an RTT.

use simcore::SimDuration;
use simos::Bytes;

/// CPU costs on R-GMA server nodes (servlet container + engine).
#[derive(Debug, Clone)]
pub struct RgmaCostModel {
    /// Servlet dispatch + HTTP parsing for any request.
    pub servlet_dispatch: SimDuration,
    /// Handling one INSERT: SQL parse + validate + storage write (fixed).
    pub insert_base: SimDuration,
    /// INSERT cost per SQL text byte.
    pub insert_per_byte_ns: u64,
    /// Producer side: assembling and sending one stream chunk.
    pub stream_send: SimDuration,
    /// Consumer side: ingesting one stream chunk (fixed).
    pub chunk_ingest_base: SimDuration,
    /// Consumer side: per tuple in an ingested chunk.
    pub per_tuple: SimDuration,
    /// Answering one subscriber poll.
    pub poll_answer: SimDuration,
    /// Registry: one register/lookup operation.
    pub registry_op: SimDuration,
    /// Creating a server-side producer/consumer instance.
    pub create_instance: SimDuration,
    /// Client-side cost to build + parse HTTP (driver JVM).
    pub client_http: SimDuration,
}

impl Default for RgmaCostModel {
    fn default() -> Self {
        RgmaCostModel {
            servlet_dispatch: SimDuration::from_micros(2_100),
            insert_base: SimDuration::from_micros(6_200),
            insert_per_byte_ns: 2_500,
            stream_send: SimDuration::from_micros(3_000),
            chunk_ingest_base: SimDuration::from_micros(6_000),
            per_tuple: SimDuration::from_micros(1_500),
            poll_answer: SimDuration::from_micros(3_800),
            registry_op: SimDuration::from_micros(3_000),
            create_instance: SimDuration::from_millis(12),
            client_http: SimDuration::from_micros(500),
        }
    }
}

/// Memory model for R-GMA servers.
#[derive(Debug, Clone)]
pub struct RgmaMemory {
    /// Heap per server-side producer instance (memory storage bookkeeping).
    pub heap_per_producer: Bytes,
    /// Heap per server-side consumer instance.
    pub heap_per_consumer: Bytes,
    /// Heap per stored/buffered tuple.
    pub heap_per_tuple: Bytes,
}

impl Default for RgmaMemory {
    fn default() -> Self {
        RgmaMemory {
            heap_per_producer: Bytes::kib(420),
            heap_per_consumer: Bytes::kib(380),
            heap_per_tuple: Bytes::kib(2),
        }
    }
}

/// Client-side HTTP retry policy for 5xx responses (producer creates and
/// inserts). `None` (the default) reproduces the paper's fail-fast
/// clients exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpRetryPolicy {
    /// First retry backoff step.
    pub backoff_initial: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Maximum retries before giving up.
    pub max_retries: u32,
}

impl Default for HttpRetryPolicy {
    fn default() -> Self {
        HttpRetryPolicy {
            backoff_initial: SimDuration::from_millis(500),
            backoff_max: SimDuration::from_secs(8),
            max_retries: 6,
        }
    }
}

/// Full R-GMA deployment configuration.
#[derive(Debug, Clone)]
pub struct RgmaConfig {
    /// CPU cost model.
    pub costs: RgmaCostModel,
    /// Memory model.
    pub memory: RgmaMemory,
    /// Producer streaming cycle: buffered tuples are flushed to attached
    /// consumer streams at this period.
    pub streaming_period: SimDuration,
    /// Consumer mediation cycle: the plan is refreshed against the
    /// registry at this period (new producers join the plan here).
    pub plan_refresh: SimDuration,
    /// Registry propagation delay: a registration becomes visible to
    /// lookups only after this long (drives the warm-up loss).
    pub registry_propagation: SimDuration,
    /// Subscriber poll period against the Consumer servlet (the paper
    /// polled every 100 ms and noted the quantization error).
    pub poll_period: SimDuration,
    /// When a stream attaches to a producer instance, tuples newer than
    /// this window are replayed from the producer's outgoing buffer;
    /// anything older was only ever in storage and is lost to continuous
    /// queries — the warm-up loss window.
    pub attach_replay: SimDuration,
    /// Latest-retention period configured on Primary Producers (paper: 30 s).
    pub latest_retention: SimDuration,
    /// History-retention period (paper: 1 min).
    pub history_retention: SimDuration,
    /// The Secondary Producer's deliberate batch delay (confirmed as 30 s
    /// by the R-GMA developers in §III.F.3).
    pub secondary_flush: SimDuration,
    /// Client-side retry policy for 5xx responses (`None` = fail fast,
    /// the paper behaviour).
    pub insert_retry: Option<HttpRetryPolicy>,
    /// Soft-state refresh: servlets re-register their instances with the
    /// registry at this period, so a restarted (wiped) registry re-learns
    /// them. `None` (default) = registrations are fire-and-forget.
    pub soft_state_refresh: Option<SimDuration>,
}

impl Default for RgmaConfig {
    fn default() -> Self {
        RgmaConfig {
            costs: RgmaCostModel::default(),
            memory: RgmaMemory::default(),
            streaming_period: SimDuration::from_millis(1_500),
            plan_refresh: SimDuration::from_secs(5),
            registry_propagation: SimDuration::from_secs(4),
            poll_period: SimDuration::from_millis(100),
            attach_replay: SimDuration::from_secs(6),
            latest_retention: SimDuration::from_secs(30),
            history_retention: SimDuration::from_secs(60),
            secondary_flush: SimDuration::from_secs(30),
            insert_retry: None,
            soft_state_refresh: None,
        }
    }
}

impl RgmaConfig {
    /// The gLite 3.0 configuration as tested in the paper.
    pub fn glite_3_0() -> Self {
        Self::default()
    }

    /// Ablation: a Secondary Producer without the deliberate 30 s delay.
    pub fn no_secondary_delay() -> Self {
        RgmaConfig {
            secondary_flush: SimDuration::from_millis(500),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings() {
        let c = RgmaConfig::glite_3_0();
        assert_eq!(c.poll_period, SimDuration::from_millis(100));
        assert_eq!(c.latest_retention, SimDuration::from_secs(30));
        assert_eq!(c.history_retention, SimDuration::from_secs(60));
        assert_eq!(c.secondary_flush, SimDuration::from_secs(30));
        assert!(RgmaConfig::no_secondary_delay().secondary_flush < SimDuration::from_secs(1));
        // Fault-tolerance layers are strictly opt-in.
        assert_eq!(c.insert_retry, None);
        assert_eq!(c.soft_state_refresh, None);
        let p = HttpRetryPolicy::default();
        assert!(p.backoff_max >= p.backoff_initial);
        assert!(p.max_retries >= 1);
    }
}
