#![warn(missing_docs)]
//! # rgma — a Relational Grid Monitoring Architecture implementation
//!
//! R-GMA (gLite 3.0 flavour) as the paper tested it: the Grid as one
//! *virtual database*. Producers `INSERT` into per-instance memory
//! storage with latest/history retention; Consumers run continuous
//! `SELECT` queries mediated through a Registry/Schema pair; everything
//! travels over HTTP into Java-servlet-style components; subscribers poll
//! the Consumer every 100 ms.
//!
//! The paper's R-GMA findings all emerge from mechanisms here:
//!
//! * **Long Process Time** (fig 15) — periodic streaming + mediation
//!   cycles and heavy per-request servlet costs on PIII-era nodes.
//! * **Warm-up loss** (§III.F, 0.17 %) — continuous queries only see
//!   tuples inserted after the mediator adds the producer to the plan,
//!   and registrations take seconds to propagate ([`registry`]).
//! * **Secondary Producer delays** (fig 10) — the deliberate 30 s batch
//!   flush ([`secondary`]).
//! * **Single-server limits** (figs 11–13) — thread-per-connection
//!   servlets against a bounded native pool, heap per instance/tuple.

pub mod client;
pub mod config;
pub mod consumer;
pub mod producer;
pub mod protocol;
pub mod registry;
pub mod secondary;
pub mod storage;

pub use client::{
    ProducerHandle, QueryHandle, RgmaClientSet, RgmaEvent, RgmaTimer, SubscriberHandle,
};
pub use config::{HttpRetryPolicy, RgmaConfig, RgmaCostModel, RgmaMemory};
pub use consumer::{ConsumerControl, ConsumerServlet};
pub use producer::{ProducerControl, ProducerServlet};
pub use protocol::{ConsumerId, ProducerId, QueryType};
pub use registry::{RegistryActor, RegistryControl, RegistryStats, RegistryStatsHandle};
pub use secondary::SecondaryProducer;
pub use storage::{MemoryStorage, StoredTuple};
