//! Rendering of tables and figure data series, paper-style.
//!
//! The harness regenerates each paper artifact as a [`Table`] (Tables
//! I–III) or a [`Figure`] (multi-series x/y data matching each plot's
//! axes). Both render to aligned text for the terminal and to CSV for
//! plotting.

use std::fmt::Write as _;

/// A titled table of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title, e.g. "TABLE II — comparison test settings".
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String| {
            let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
            let _ = writeln!(out, "{}", "-".repeat(total));
        };
        line(&mut out);
        let _ = write!(out, "|");
        for (w, c) in widths.iter().zip(&self.columns) {
            let _ = write!(out, " {c:<w$} |");
        }
        let _ = writeln!(out);
        line(&mut out);
        for row in &self.rows {
            let _ = write!(out, "|");
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, " {cell:<w$} |");
            }
            let _ = writeln!(out);
        }
        line(&mut out);
        out
    }

    /// GitHub-flavored markdown rendering: `### title`, then a pipe
    /// table. Cells containing `|` are escaped.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(
            out,
            "| {} |",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// CSV rendering (headers + rows; minimal quoting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// One named data series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, e.g. "RTT" or "500".
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// A figure: multiple series over shared axes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. "fig7".
    pub id: String,
    /// Caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Render as an aligned text block: one row per x, one column per
    /// series (the shape of the paper's plots).
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup();
        let mut table = Table::new(
            format!("{} — {} [y: {}]", self.id, self.title, self.y_label),
            &std::iter::once(self.x_label.as_str())
                .chain(self.series.iter().map(|s| s.label.as_str()))
                .collect::<Vec<_>>(),
        );
        for &x in &xs {
            let mut row = vec![trim_float(x)];
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| p.0 == x)
                    .map(|p| trim_float(p.1))
                    .unwrap_or_default();
                row.push(cell);
            }
            table.push_row(row);
        }
        table.render()
    }

    /// CSV with `x,label,y` long format (easy to plot).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", trim_float(*x), s.label, trim_float(*y));
            }
        }
        out
    }
}

/// Render the graceful-degradation accounting of a fault campaign as a
/// per-cause table: one row per `(cause, count)` pair, zero-count rows
/// skipped so no-fault runs produce an empty table body.
pub fn degradation_table(title: impl Into<String>, rows: &[(&'static str, u64)]) -> Table {
    let mut table = Table::new(title, &["cause", "messages"]);
    for &(cause, count) in rows {
        if count > 0 {
            table.push_row(vec![cause.to_owned(), count.to_string()]);
        }
    }
    table
}

/// Format a float without trailing zero noise.
pub fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("TABLE X", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "10000".into()]);
        let r = t.render();
        assert!(r.contains("TABLE X"));
        assert!(r.contains("| alpha | 1     |"));
        assert!(r.contains("| b     | 10000 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_renders_pipe_table() {
        let mut t = Table::new("Attribution", &["site", "Δ ms"]);
        t.push_row(vec!["jms.match".into(), "+12.5".into()]);
        t.push_row(vec!["a|b".into(), "0".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Attribution\n"));
        assert!(md.contains("| site | Δ ms |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| jms.match | +12.5 |"));
        assert!(md.contains("| a\\|b | 0 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a,b", "c"]);
        t.push_row(vec!["x\"y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",plain"));
    }

    #[test]
    fn figure_renders_grid() {
        let mut f = Figure::new("fig7", "RTT vs connections", "connections", "ms");
        f.push_series("RTT", vec![(500.0, 5.1), (1000.0, 8.0)]);
        f.push_series("STDDEV", vec![(500.0, 2.0), (1000.0, 3.5)]);
        let r = f.render();
        assert!(r.contains("fig7"));
        assert!(r.contains("RTT"));
        assert!(r.contains("500"));
        assert!(r.contains("5.1"));
        let csv = f.to_csv();
        assert!(csv.contains("500,RTT,5.1"));
        assert!(csv.contains("1000,STDDEV,3.5"));
    }

    #[test]
    fn missing_points_render_empty() {
        let mut f = Figure::new("f", "t", "x", "y");
        f.push_series("a", vec![(1.0, 1.0)]);
        f.push_series("b", vec![(2.0, 2.0)]);
        let r = f.render();
        assert!(r.lines().count() >= 6);
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(5.125), "5.125");
        assert_eq!(trim_float(5.1000), "5.1");
        assert_eq!(trim_float(0.0006), "0.001");
    }
}
