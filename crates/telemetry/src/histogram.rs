//! Log-bucketed latency histogram with bounded relative error,
//! HDR-histogram style: 64 linear sub-buckets per power of two, giving a
//! worst-case relative quantile error under 1.6 % across the full
//! microsecond-to-hours range the experiments produce.

use crate::stats::Welford;

/// Full-distribution digest of one histogram: the standard SLO
/// percentiles plus the exact Welford moments. Values are in the
/// histogram's native unit (microseconds for the RTT pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean (Welford-backed, not bucketed).
    pub mean: f64,
    /// Exact population standard deviation.
    pub stddev: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum recorded value (the 100th percentile).
    pub max: u64,
}

/// Latency histogram over `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Sub-bucket resolution: values below `2^SUB_BITS` are exact.
    counts: Vec<u64>,
    total: u64,
    max_seen: u64,
    min_seen: u64,
    /// Exact streaming moments alongside the bucketed counts, so
    /// mean/stddev don't pay the bucket quantization error and callers
    /// don't need a second accumulator.
    moments: Welford,
}

const SUB_BITS: u32 = 6; // 64 sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // Octave = position of the highest bit above SUB_BITS; sub-bucket =
    // next SUB_BITS bits.
    let msb = 63 - v.leading_zeros() as u64;
    let octave = msb - SUB_BITS as u64;
    let sub = (v >> (msb - SUB_BITS as u64)) - SUB;
    ((octave + 1) * SUB + sub) as usize
}

#[inline]
fn bucket_low(ix: usize) -> u64 {
    let ix = ix as u64;
    if ix < SUB {
        return ix;
    }
    let octave = ix / SUB - 1;
    let sub = ix % SUB;
    (SUB + sub) << octave
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram covering all of `u64`.
    pub fn new() -> Self {
        // 64 octaves max; (64 - SUB_BITS + 1) * SUB buckets is plenty.
        LatencyHistogram {
            counts: vec![0; ((64 - SUB_BITS as usize) + 1) * SUB as usize],
            total: 0,
            max_seen: 0,
            min_seen: u64::MAX,
            moments: Welford::new(),
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(v);
        self.min_seen = self.min_seen.min(v);
        self.moments.push(v as f64);
    }

    /// Exact mean of the recorded values (Welford-backed, not bucketed;
    /// 0 if empty).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Exact population standard deviation of the recorded values
    /// (Welford-backed, not bucketed; 0 if empty).
    pub fn stddev(&self) -> f64 {
        self.moments.stddev()
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_seen)
    }

    /// Value at quantile `q` in `[0,1]` (lower-bound interpolation within
    /// the bucket; exact at q=1 thanks to the tracked max).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max_seen);
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (ix, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_low(ix).max(self.min_seen).min(self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// The paper's percentile-of-RTT series: values at 95..=100 %.
    pub fn percentile_series(&self) -> Vec<(u32, u64)> {
        [95, 96, 97, 98, 99, 100]
            .into_iter()
            .filter_map(|p| self.quantile(f64::from(p) / 100.0).map(|v| (p, v)))
            .collect()
    }

    /// Fraction of values at or below `v`.
    pub fn fraction_le(&self, v: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = bucket_of(v);
        let below: u64 = self.counts[..=b].iter().sum();
        below as f64 / self.total as f64
    }

    /// Full-distribution summary (p50/p90/p95/p99/p99.9 + exact
    /// moments), complementing the paper's 95..=100
    /// [`percentile_series`](Self::percentile_series). `None` if empty.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.total == 0 {
            return None;
        }
        let q = |q: f64| self.quantile(q).expect("non-empty");
        Some(HistogramSummary {
            count: self.total,
            mean: self.mean(),
            stddev: self.stddev(),
            p50: q(0.50),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
            p999: q(0.999),
            max: self.max_seen,
        })
    }

    /// Merge another histogram (parallel reduction).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max_seen = self.max_seen.max(other.max_seen);
        self.min_seen = self.min_seen.min(other.min_seen);
        self.moments.merge(&other.moments);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUB - 1));
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [0u64, 1, 63, 64, 65, 100, 1000, 12345, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(v);
            let low = bucket_low(b);
            assert!(low <= v, "low({b})={low} > {v}");
            // Relative bucket width bound.
            if v >= SUB {
                assert!(
                    (v - low) as f64 / v as f64 <= 1.0 / SUB as f64 + 1e-12,
                    "bucket too wide at {v}"
                );
            } else {
                assert_eq!(low, v);
            }
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        // Deterministic skewed distribution.
        let mut x = 1u64;
        for i in 0..100_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 100 + (x % 10_000) + if i % 100 == 0 { 200_000 } else { 0 };
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let approx = h.quantile(q).unwrap() as f64;
            let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank] as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.02, "q={q}: approx={approx} truth={truth} rel={rel}");
        }
        assert_eq!(h.quantile(1.0), exact.last().copied());
    }

    #[test]
    fn percentile_series_shape() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let series = h.percentile_series();
        assert_eq!(series.len(), 6);
        assert_eq!(series[0].0, 95);
        assert_eq!(series[5].0, 100);
        // Non-decreasing.
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series[5].1, 100_000);
    }

    #[test]
    fn fraction_le() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert!((h.fraction_le(25) - 0.5).abs() < 1e-12);
        assert!((h.fraction_le(9) - 0.25).abs() < 1e-12 || h.fraction_le(9) == 0.0);
        assert_eq!(h.fraction_le(1000), 1.0);
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..1000u64 {
            let x = v * 37 % 5000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.95, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn mean_stddev_match_welford_exactly() {
        // Same deterministic skewed stream into both accumulators: the
        // histogram's moments must equal a standalone Welford bit for
        // bit (same algorithm, same insertion order).
        let mut h = LatencyHistogram::new();
        let mut w = Welford::new();
        let mut x = 42u64;
        for i in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 50 + (x % 100_000) + if i % 250 == 0 { 5_000_000 } else { 0 };
            h.record(v);
            w.push(v as f64);
        }
        assert_eq!(h.mean().to_bits(), w.mean().to_bits());
        assert_eq!(h.stddev().to_bits(), w.stddev().to_bits());
        // And merging preserves the identity (Welford merge on both sides).
        let mut h2 = LatencyHistogram::new();
        let mut w2 = Welford::new();
        for v in [1u64, 10, 100] {
            h2.record(v);
            w2.push(v as f64);
        }
        h.merge(&h2);
        w.merge(&w2);
        assert_eq!(h.mean().to_bits(), w.mean().to_bits());
        assert_eq!(h.stddev().to_bits(), w.stddev().to_bits());
    }

    #[test]
    fn empty_histogram_moments() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn summary_reports_full_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let s = h.summary().expect("non-empty");
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean.to_bits(), h.mean().to_bits());
        assert_eq!(s.stddev.to_bits(), h.stddev().to_bits());
        assert_eq!(s.max, 100_000);
        // Percentiles agree with quantile() and are non-decreasing.
        assert_eq!(Some(s.p50), h.quantile(0.50));
        assert_eq!(Some(s.p99), h.quantile(0.99));
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95);
        assert!(s.p95 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        assert_eq!(LatencyHistogram::new().summary(), None);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.fraction_le(10), 0.0);
        assert!(h.percentile_series().is_empty());
    }
}
