//! Time-series metrics plane: named counters, gauges, and latency
//! histograms sampled on the vmstat cadence.
//!
//! The paper's resource story is told in 1 s vmstat rows (CPU idle,
//! memory); the metrics plane generalizes that cadence to middleware
//! internals — per-broker queue depth, per-servlet backlog, in-flight
//! count, reconnect attempts — and exports both Prometheus
//! text-exposition format (end-of-run snapshot) and a deterministic
//! long-format time-series CSV that lands next to the fig CSVs.
//!
//! Registered as a kernel service only when profiling/metrics are on;
//! instrumentation sites go through [`with_metrics`] which reduces to a
//! single failed type-map probe when the service is absent.

use crate::histogram::LatencyHistogram;
use crate::report::trim_float;
use simcore::{Context, SimTime};
use std::collections::BTreeMap;

/// Registry of named metrics plus the sampled time series.
///
/// Names are dotted (`narada.broker0.queue_depth`); exporters sanitize
/// them where the target format requires it. `BTreeMap` keys keep every
/// export deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LatencyHistogram>,
    /// Long-format samples: (instant, metric, value).
    series: Vec<(SimTime, String, f64)>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter (created at 0 on first use).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Set an instantaneous gauge level.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Record one observation (microseconds) into a latency histogram.
    pub fn observe(&mut self, name: &str, micros: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(micros);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(micros);
            self.hists.insert(name.to_owned(), h);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current level of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Borrow a histogram.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// Snapshot every counter and gauge into the time series at `at`
    /// (called by `simprof::MetricsSampler` on the vmstat cadence).
    pub fn sample(&mut self, at: SimTime) {
        for (name, &v) in &self.counters {
            self.series.push((at, name.clone(), v as f64));
        }
        for (name, &v) in &self.gauges {
            self.series.push((at, name.clone(), v));
        }
    }

    /// The sampled time series, in (instant, registration-name) order.
    pub fn series(&self) -> &[(SimTime, String, f64)] {
        &self.series
    }

    /// Deterministic long-format CSV: `t_s,metric,value`, one row per
    /// metric per sample instant.
    pub fn csv(&self) -> String {
        let mut out = String::from("t_s,metric,value\n");
        for (at, name, v) in &self.series {
            out.push_str(&trim_float(at.as_micros() as f64 / 1e6));
            out.push(',');
            out.push_str(name);
            out.push(',');
            out.push_str(&trim_float(*v));
            out.push('\n');
        }
        out
    }

    /// End-of-run snapshot in Prometheus text exposition format.
    /// Counters and gauges export their final value; histograms export
    /// as summaries (p50/p95/p99 + `_sum`/`_count`, the sum backed by
    /// the histogram's exact Welford mean).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", trim_float(v)));
        }
        for (name, h) in &self.hists {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!("{n}{{quantile=\"{label}\"}} {v}\n"));
                }
            }
            let sum = (h.mean() * h.count() as f64).round() as u64;
            out.push_str(&format!("{n}_sum {sum}\n{n}_count {}\n", h.count()));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]` only.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Run `f` against the metrics registry if one is registered; no-op
/// (one failed type-map probe) otherwise — the same pattern as
/// `simtrace::with_trace`, so metrics-off runs stay byte-identical.
#[inline]
pub fn with_metrics(ctx: &mut Context<'_>, f: impl FnOnce(&mut MetricsRegistry, SimTime)) {
    let now = ctx.now();
    if let Some(m) = ctx.try_service_mut::<MetricsRegistry>() {
        f(m, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.add_counter("a.x", 2);
        m.add_counter("a.x", 3);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        m.observe("h_us", 100);
        m.observe("h_us", 300);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("untouched"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.histogram("h_us").unwrap().count(), 2);
        assert!((m.histogram("h_us").unwrap().mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn csv_is_long_format_and_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add_counter("z.count", 1);
            m.set_gauge("a.level", 3.0);
            m.sample(SimTime::from_secs(1));
            m.add_counter("z.count", 1);
            m.sample(SimTime::from_secs(2));
            m.csv()
        };
        let csv = build();
        assert_eq!(build(), csv, "byte-deterministic");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,metric,value");
        assert_eq!(lines[1], "1,z.count,1");
        assert_eq!(lines[2], "1,a.level,3");
        assert_eq!(lines[3], "2,z.count,2");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn prometheus_format_shape() {
        let mut m = MetricsRegistry::new();
        m.add_counter("narada.broker0.publishes", 7);
        m.set_gauge("probes_in_flight", 4.0);
        for v in 1..=100u64 {
            m.observe("insert_us", v * 10);
        }
        let p = m.prometheus();
        assert!(
            p.contains("# TYPE narada_broker0_publishes counter\n"),
            "{p}"
        );
        assert!(p.contains("narada_broker0_publishes 7\n"));
        assert!(p.contains("# TYPE probes_in_flight gauge\nprobes_in_flight 4\n"));
        assert!(p.contains("# TYPE insert_us summary\n"));
        assert!(p.contains("insert_us{quantile=\"0.5\"}"));
        assert!(p.contains("insert_us_count 100\n"));
        // sum = mean * count = 505 * 100.
        assert!(p.contains("insert_us_sum 50500\n"), "{p}");
    }
}
