//! Time-series metrics plane: named counters, gauges, and latency
//! histograms sampled on the vmstat cadence.
//!
//! The paper's resource story is told in 1 s vmstat rows (CPU idle,
//! memory); the metrics plane generalizes that cadence to middleware
//! internals — per-broker queue depth, per-servlet backlog, in-flight
//! count, reconnect attempts — and exports both Prometheus
//! text-exposition format (end-of-run snapshot) and a deterministic
//! long-format time-series CSV that lands next to the fig CSVs.
//!
//! Registered as a kernel service only when profiling/metrics are on;
//! instrumentation sites go through [`with_metrics`] which reduces to a
//! single failed type-map probe when the service is absent.

use crate::histogram::LatencyHistogram;
use crate::report::trim_float;
use simcore::{Context, SimTime};
use std::collections::BTreeMap;

/// One recorded mutation of the registry, replayable at merge time.
#[derive(Debug, Clone, PartialEq)]
enum MetricOp {
    /// `add_counter(name, delta)`.
    CounterAdd(String, u64),
    /// `set_gauge(name, value)`.
    GaugeSet(String, f64),
    /// `observe(name, micros)`.
    Observe(String, u64),
    /// `sample(at)` — snapshot the live maps into the series.
    Sample,
}

impl MetricOp {
    /// Total order among ops sharing a (time, lane, seq) key — only
    /// replicated recorders produce such ties, and only when their
    /// replicas record *different* content (e.g. each shard's vmstat
    /// replica gauging its own nodes).
    fn content_key(&self) -> (u8, &str, u64) {
        match self {
            MetricOp::CounterAdd(n, v) => (0, n, *v),
            MetricOp::GaugeSet(n, v) => (1, n, v.to_bits()),
            MetricOp::Observe(n, v) => (2, n, *v),
            MetricOp::Sample => (3, "", 0),
        }
    }
}

#[derive(Debug, Clone)]
struct OpRec {
    at: SimTime,
    lane: u32,
    seq: u64,
    op: MetricOp,
}

/// Registry of named metrics plus the sampled time series.
///
/// Names are dotted (`narada.broker0.queue_depth`); exporters sanitize
/// them where the target format requires it. `BTreeMap` keys keep every
/// export deterministic.
///
/// Every mutation is also appended to an op log keyed by
/// `(time, recorder lane, per-lane seq)` — an interleaving-invariant key,
/// since each lane's op stream is a function of that actor's own
/// deterministic execution. [`merged`](Self::merged) replays the union of
/// per-shard logs in key order, so any sharding of the same run rebuilds
/// byte-identical counters, gauges, histograms, and time series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LatencyHistogram>,
    /// Long-format samples: (instant, metric, value).
    series: Vec<(SimTime, String, f64)>,
    ops: Vec<OpRec>,
    lane_seqs: std::collections::HashMap<u32, u64>,
    cur_lane: u32,
    cur_at: SimTime,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the recording context for subsequent ops; called by
    /// [`with_metrics`] with the acting actor's lane and the kernel
    /// clock so op keys are shard-invariant.
    pub fn set_recorder(&mut self, lane: u32, at: SimTime) {
        self.cur_lane = lane;
        self.cur_at = at;
    }

    fn record(&mut self, at: SimTime, op: MetricOp) {
        let seq = self.lane_seqs.entry(self.cur_lane).or_insert(0);
        self.ops.push(OpRec {
            at,
            lane: self.cur_lane,
            seq: *seq,
            op,
        });
        *seq += 1;
    }

    fn apply_counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    fn apply_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    fn apply_observe(&mut self, name: &str, micros: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(micros);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(micros);
            self.hists.insert(name.to_owned(), h);
        }
    }

    fn apply_sample(&mut self, at: SimTime) {
        for (name, &v) in &self.counters {
            self.series.push((at, name.clone(), v as f64));
        }
        for (name, &v) in &self.gauges {
            self.series.push((at, name.clone(), v));
        }
    }

    /// Add `delta` to a monotonic counter (created at 0 on first use).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        self.apply_counter(name, delta);
        self.record(self.cur_at, MetricOp::CounterAdd(name.to_owned(), delta));
    }

    /// Set an instantaneous gauge level.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.apply_gauge(name, value);
        self.record(self.cur_at, MetricOp::GaugeSet(name.to_owned(), value));
    }

    /// Record one observation (microseconds) into a latency histogram.
    pub fn observe(&mut self, name: &str, micros: u64) {
        self.apply_observe(name, micros);
        self.record(self.cur_at, MetricOp::Observe(name.to_owned(), micros));
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current level of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Borrow a histogram.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// Snapshot every counter and gauge into the time series at `at`
    /// (called by the vmstat sampler on its cadence).
    pub fn sample(&mut self, at: SimTime) {
        self.apply_sample(at);
        self.record(at, MetricOp::Sample);
    }

    /// Merge per-shard registries by replaying the union of their op
    /// logs in `(time, lane, seq, content)` order. Exact duplicates
    /// (the same op recorded by two replicas of a replicated actor, e.g.
    /// the per-shard vmstat samplers' `Sample` marks) collapse to one.
    ///
    /// `derived_gauges` are whole-run gauges that no single shard can
    /// compute (e.g. `probes_in_flight`, which needs the merged RTT
    /// record set): each is a time-ordered series spliced in just before
    /// every `Sample` snapshot, exactly where the serial sampler used to
    /// refresh them. Names are owned because some series are minted per
    /// subscriber lane (`freshness_age_ms/lane3`) rather than static.
    pub fn merged(
        parts: impl IntoIterator<Item = MetricsRegistry>,
        derived_gauges: &[(String, Vec<(SimTime, f64)>)],
    ) -> MetricsRegistry {
        let mut ops: Vec<OpRec> = parts.into_iter().flat_map(|p| p.ops).collect();
        ops.sort_by(|a, b| {
            (a.at, a.lane, a.seq)
                .cmp(&(b.at, b.lane, b.seq))
                .then_with(|| a.op.content_key().cmp(&b.op.content_key()))
        });
        ops.dedup_by(|a, b| a.at == b.at && a.lane == b.lane && a.seq == b.seq && a.op == b.op);
        let mut out = MetricsRegistry::new();
        let mut cursors = vec![0usize; derived_gauges.len()];
        for rec in ops {
            match &rec.op {
                MetricOp::CounterAdd(n, d) => out.apply_counter(n, *d),
                MetricOp::GaugeSet(n, v) => out.apply_gauge(n, *v),
                MetricOp::Observe(n, us) => out.apply_observe(n, *us),
                MetricOp::Sample => {
                    for (i, (name, points)) in derived_gauges.iter().enumerate() {
                        while cursors[i] < points.len() && points[cursors[i]].0 <= rec.at {
                            out.apply_gauge(name, points[cursors[i]].1);
                            cursors[i] += 1;
                        }
                    }
                    out.apply_sample(rec.at);
                }
            }
            out.ops.push(rec);
        }
        // Late derived points (after the final snapshot) still set the
        // end-of-run gauge level for the Prometheus export.
        for (name, points) in derived_gauges {
            if let Some(&(_, v)) = points.last() {
                out.apply_gauge(name, v);
            }
        }
        out
    }

    /// The sampled time series, in (instant, registration-name) order.
    pub fn series(&self) -> &[(SimTime, String, f64)] {
        &self.series
    }

    /// Deterministic long-format CSV: `t_s,metric,value`, one row per
    /// metric per sample instant.
    pub fn csv(&self) -> String {
        let mut out = String::from("t_s,metric,value\n");
        for (at, name, v) in &self.series {
            out.push_str(&trim_float(at.as_micros() as f64 / 1e6));
            out.push(',');
            out.push_str(name);
            out.push(',');
            out.push_str(&trim_float(*v));
            out.push('\n');
        }
        out
    }

    /// End-of-run snapshot in Prometheus text exposition format.
    /// Counters and gauges export their final value; histograms export
    /// as summaries (p50/p95/p99 + `_sum`/`_count`, the sum backed by
    /// the histogram's exact Welford mean).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", trim_float(v)));
        }
        for (name, h) in &self.hists {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!("{n}{{quantile=\"{label}\"}} {v}\n"));
                }
            }
            let sum = (h.mean() * h.count() as f64).round() as u64;
            out.push_str(&format!("{n}_sum {sum}\n{n}_count {}\n", h.count()));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]` only.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Run `f` against the metrics registry if one is registered; no-op
/// (one failed type-map probe) otherwise — the same pattern as
/// `simtrace::with_trace`, so metrics-off runs stay byte-identical.
#[inline]
pub fn with_metrics(ctx: &mut Context<'_>, f: impl FnOnce(&mut MetricsRegistry, SimTime)) {
    let now = ctx.now();
    let lane = ctx.self_id().index() as u32;
    if let Some(m) = ctx.try_service_mut::<MetricsRegistry>() {
        m.set_recorder(lane, now);
        f(m, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.add_counter("a.x", 2);
        m.add_counter("a.x", 3);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        m.observe("h_us", 100);
        m.observe("h_us", 300);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("untouched"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.histogram("h_us").unwrap().count(), 2);
        assert!((m.histogram("h_us").unwrap().mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn csv_is_long_format_and_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add_counter("z.count", 1);
            m.set_gauge("a.level", 3.0);
            m.sample(SimTime::from_secs(1));
            m.add_counter("z.count", 1);
            m.sample(SimTime::from_secs(2));
            m.csv()
        };
        let csv = build();
        assert_eq!(build(), csv, "byte-deterministic");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,metric,value");
        assert_eq!(lines[1], "1,z.count,1");
        assert_eq!(lines[2], "1,a.level,3");
        assert_eq!(lines[3], "2,z.count,2");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn merged_replay_matches_serial_and_splices_derived_gauges() {
        let t = SimTime::from_secs;
        // Serial world: lanes 2 and 5 both write; sampler (lane 9) marks
        // snapshots at 1 s and 2 s.
        let serial_ops = |m: &mut MetricsRegistry| {
            m.set_recorder(2, t(0));
            m.add_counter("a.sent", 1);
            m.set_recorder(5, t(0));
            m.add_counter("b.sent", 2);
            m.set_recorder(9, t(1));
            m.sample(t(1));
            m.set_recorder(2, t(1));
            m.add_counter("a.sent", 4);
            m.observe("a.cost_us", 300);
            m.set_recorder(9, t(2));
            m.sample(t(2));
        };
        let mut serial = MetricsRegistry::new();
        serial_ops(&mut serial);

        // Sharded world: lane 2 on shard A, lane 5 on shard B, the
        // sampler replicated on both (identical Sample ops → dedup).
        let mut a = MetricsRegistry::new();
        a.set_recorder(2, t(0));
        a.add_counter("a.sent", 1);
        a.set_recorder(9, t(1));
        a.sample(t(1));
        a.set_recorder(2, t(1));
        a.add_counter("a.sent", 4);
        a.observe("a.cost_us", 300);
        a.set_recorder(9, t(2));
        a.sample(t(2));
        let mut b = MetricsRegistry::new();
        b.set_recorder(5, t(0));
        b.add_counter("b.sent", 2);
        b.set_recorder(9, t(1));
        b.sample(t(1));
        b.set_recorder(9, t(2));
        b.sample(t(2));

        let derived = [(
            "probes_in_flight".to_string(),
            vec![(t(1), 3.0), (t(2), 0.0)],
        )];
        let merged = MetricsRegistry::merged([a, b], &derived);
        let reference = MetricsRegistry::merged([serial], &derived);
        assert_eq!(merged.csv(), reference.csv(), "byte-identical series");
        assert_eq!(merged.prometheus(), reference.prometheus());
        assert_eq!(merged.counter("a.sent"), 5);
        assert_eq!(merged.counter("b.sent"), 2);
        assert_eq!(merged.gauge("probes_in_flight"), Some(0.0));
        assert!(
            merged.csv().contains("1,probes_in_flight,3"),
            "{}",
            merged.csv()
        );
        assert_eq!(merged.histogram("a.cost_us").unwrap().count(), 1);
    }

    #[test]
    fn prometheus_format_shape() {
        let mut m = MetricsRegistry::new();
        m.add_counter("narada.broker0.publishes", 7);
        m.set_gauge("probes_in_flight", 4.0);
        for v in 1..=100u64 {
            m.observe("insert_us", v * 10);
        }
        let p = m.prometheus();
        assert!(
            p.contains("# TYPE narada_broker0_publishes counter\n"),
            "{p}"
        );
        assert!(p.contains("narada_broker0_publishes 7\n"));
        assert!(p.contains("# TYPE probes_in_flight gauge\nprobes_in_flight 4\n"));
        assert!(p.contains("# TYPE insert_us summary\n"));
        assert!(p.contains("insert_us{quantile=\"0.5\"}"));
        assert!(p.contains("insert_us_count 100\n"));
        // sum = mean * count = 505 * 100.
        assert!(p.contains("insert_us_sum 50500\n"), "{p}");
    }
}
