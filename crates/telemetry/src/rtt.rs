//! Per-message round-trip records, loss accounting, and the paper's RTT
//! decomposition `RTT = PRT + PT + SRT`.
//!
//! Instrumentation points mirror fig 15:
//!
//! * `before_sending`  — the application calls publish/insert.
//! * `after_sending`   — the synchronous send operation returns.
//! * `before_receiving`— the middleware makes the message available to the
//!   receiving client (notification fired / poll response begins).
//! * `after_receiving` — the receiving application has the message.
//!
//! PRT = after_sending − before_sending (Publishing Response Time),
//! PT = before_receiving − after_sending (Process Time),
//! SRT = after_receiving − before_receiving (Subscribing Response Time).

use crate::histogram::{HistogramSummary, LatencyHistogram};
use crate::stats::Welford;
use simcore::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Handle to one in-flight probe record.
///
/// The id is content-derived, not allocation-order-derived: the high 32
/// bits are the publisher's kernel lane (its actor index) and the low 32
/// bits a per-publisher sequence number. Two shards therefore never mint
/// the same id, and a probe's id is identical no matter how the run is
/// sharded — which is what lets per-shard collectors merge by key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProbeId(pub u64);

impl ProbeId {
    /// Compose an id from the publisher's lane and its own probe count.
    pub fn compose(lane: u32, seq: u32) -> ProbeId {
        ProbeId(u64::from(lane) << 32 | u64::from(seq))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Record {
    // All four instants are optional: a shard that only hosts the
    // subscriber has a partial record (receive side only) until the
    // end-of-run merge unions it with the publisher shard's half.
    before_sending: Option<SimTime>,
    after_sending: Option<SimTime>,
    before_receiving: Option<SimTime>,
    after_receiving: Option<SimTime>,
}

/// Keep the earliest instant. Within one shard calls arrive in time
/// order so this is plain first-wins idempotence (duplicate deliveries
/// keep the first); across shards it makes the merge commutative.
fn keep_min(slot: &mut Option<SimTime>, now: SimTime) {
    match slot {
        Some(t) if *t <= now => {}
        _ => *slot = Some(now),
    }
}

/// The four raw instants of one probe, in fig 15 order. Exposed so an
/// independent observer (the `simtrace` subsystem) can cross-check its
/// own per-message reconstruction against this collector — any
/// disagreement means one of the two instrumentation paths is buggy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInstants {
    /// The application called publish/insert.
    pub before_sending: SimTime,
    /// The synchronous send returned.
    pub after_sending: Option<SimTime>,
    /// The middleware made the message available.
    pub before_receiving: Option<SimTime>,
    /// The receiving application had the message.
    pub after_receiving: Option<SimTime>,
}

/// Summary of a completed experiment's message telemetry.
#[derive(Debug, Clone)]
pub struct RttSummary {
    /// Messages sent.
    pub sent: u64,
    /// Messages fully received.
    pub received: u64,
    /// Loss rate in `[0,1]`.
    pub loss_rate: f64,
    /// Mean round-trip time, milliseconds.
    pub rtt_mean_ms: f64,
    /// RTT standard deviation, milliseconds.
    pub rtt_stddev_ms: f64,
    /// RTT at 95..100 percentiles, milliseconds.
    pub percentiles_ms: Vec<(u32, f64)>,
    /// Full RTT distribution (p50/p90/p95/p99/p99.9 + moments), in
    /// microseconds — so repro tables need not truncate at p95.
    /// `None` when no message completed the round trip.
    pub distribution_us: Option<HistogramSummary>,
    /// Mean PRT (publishing response time), ms.
    pub prt_mean_ms: f64,
    /// Mean PT (middleware process time), ms.
    pub pt_mean_ms: f64,
    /// Mean SRT (subscribing response time), ms.
    pub srt_mean_ms: f64,
    /// Fraction of messages within 100 ms (paper's "99.8 % within 100 ms").
    pub within_100ms: f64,
    /// Fraction within the 5 s soft real-time budget of §I.
    pub within_5s: f64,
}

/// Exhaustive end-of-run classification of every sent message: each is
/// delivered, dropped (with a known cause), or still in flight when the
/// clock stops. Fault-injection campaigns assert [`Conservation::holds`]
/// to prove no message is double-counted or silently lost by the
/// accounting itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conservation {
    /// Messages the application sent.
    pub sent: u64,
    /// Messages the receiving application got (duplicates counted once).
    pub delivered: u64,
    /// Messages dropped with an attributed cause (link burst, partition,
    /// crash window, …) — supplied by the fault-injection accounting.
    pub dropped: u64,
    /// Messages neither delivered nor attributed-dropped by the end of
    /// the run (queued, buffered offline, or mid-retransmit).
    pub in_flight_at_end: u64,
}

impl Conservation {
    /// The conservation identity `sent == delivered + dropped +
    /// in_flight_at_end`. Fails only when causes are double-counted
    /// (`delivered + dropped > sent`), since `in_flight_at_end` is the
    /// residual class.
    pub fn holds(&self) -> bool {
        self.delivered
            .checked_add(self.dropped)
            .and_then(|v| v.checked_add(self.in_flight_at_end))
            == Some(self.sent)
    }
}

/// The measurement service: middlewares and clients report instants; the
/// experiment reads the summary at the end.
///
/// Raw instants are the only thing stored during the run. All derived
/// statistics (Welford moments, the latency histogram) are computed by
/// [`summary`](Self::summary) from the record map in probe-id order, so a
/// merged collector and a serial one produce bit-identical summaries —
/// the accumulation order is a function of the *keys*, never of the
/// event interleaving that produced the records.
pub struct RttCollector {
    records: BTreeMap<u64, Record>,
    lane_seqs: HashMap<u32, u32>,
}

impl Default for RttCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl RttCollector {
    /// Empty collector.
    pub fn new() -> Self {
        RttCollector {
            records: BTreeMap::new(),
            lane_seqs: HashMap::new(),
        }
    }

    /// The application is about to send; returns the probe handle.
    /// `lane` is the publishing actor's kernel lane (actor index) — it
    /// keys the id so probe identities are shard-invariant.
    pub fn before_sending(&mut self, lane: u32, now: SimTime) -> ProbeId {
        let seq = self.lane_seqs.entry(lane).or_insert(0);
        let id = ProbeId::compose(lane, *seq);
        *seq = seq.checked_add(1).expect("2^32 probes from one publisher");
        keep_min(
            &mut self.records.entry(id.0).or_default().before_sending,
            now,
        );
        id
    }

    /// The synchronous send completed.
    pub fn after_sending(&mut self, id: ProbeId, now: SimTime) {
        let r = self.records.entry(id.0).or_default();
        debug_assert!(r.after_sending.is_none(), "double after_sending");
        keep_min(&mut r.after_sending, now);
    }

    /// The middleware made the message available to the subscriber.
    /// Idempotent: with redelivery (UDP retransmit) the first instant
    /// wins. On a shard that does not host the publisher this creates a
    /// partial record, completed by the end-of-run [`merged`](Self::merged).
    pub fn before_receiving(&mut self, id: ProbeId, now: SimTime) {
        keep_min(
            &mut self.records.entry(id.0).or_default().before_receiving,
            now,
        );
    }

    /// The receiving application has the message. Duplicate deliveries
    /// (UDP retransmission) are counted once — first delivery wins.
    pub fn after_receiving(&mut self, id: ProbeId, now: SimTime) {
        keep_min(
            &mut self.records.entry(id.0).or_default().after_receiving,
            now,
        );
    }

    /// Union per-shard collectors into the whole-run collector. Records
    /// merge field-wise keeping the earliest instant per phase, so the
    /// publisher shard's send half and the subscriber shard's receive
    /// half combine into the record a serial run would have written.
    /// Merged-of-one is the identity.
    pub fn merged(parts: impl IntoIterator<Item = RttCollector>) -> RttCollector {
        let mut out = RttCollector::new();
        for part in parts {
            for (id, r) in part.records {
                let dst = out.records.entry(id).or_default();
                if let Some(t) = r.before_sending {
                    keep_min(&mut dst.before_sending, t);
                }
                if let Some(t) = r.after_sending {
                    keep_min(&mut dst.after_sending, t);
                }
                if let Some(t) = r.before_receiving {
                    keep_min(&mut dst.before_receiving, t);
                }
                if let Some(t) = r.after_receiving {
                    keep_min(&mut dst.after_receiving, t);
                }
            }
            for (lane, seq) in part.lane_seqs {
                let s = out.lane_seqs.entry(lane).or_insert(0);
                *s = (*s).max(seq);
            }
        }
        out
    }

    /// Messages sent so far (records with a publish instant; partial
    /// receive-side records on a subscriber shard don't count until the
    /// merge restores their send half).
    pub fn sent(&self) -> u64 {
        self.records
            .values()
            .filter(|r| r.before_sending.is_some())
            .count() as u64
    }

    /// Messages received so far.
    pub fn received(&self) -> u64 {
        self.records
            .values()
            .filter(|r| r.after_receiving.is_some())
            .count() as u64
    }

    /// Every probe id with a record, in id order.
    pub fn probe_ids(&self) -> impl Iterator<Item = ProbeId> + '_ {
        self.records.keys().map(|&k| ProbeId(k))
    }

    /// Raw instants of one probe (`None` if the id was never issued).
    pub fn instants(&self, id: ProbeId) -> Option<ProbeInstants> {
        let r = self.records.get(&id.0)?;
        Some(ProbeInstants {
            before_sending: r.before_sending?,
            after_sending: r.after_sending,
            before_receiving: r.before_receiving,
            after_receiving: r.after_receiving,
        })
    }

    /// Classify every sent message at end of run. `dropped` is the
    /// cause-attributed drop count from the fault accounting; messages
    /// neither delivered nor attributed fall into `in_flight_at_end`.
    /// The result's [`Conservation::holds`] detects double-counting:
    /// it is violated exactly when `delivered + dropped > sent`.
    pub fn conservation(&self, dropped: u64) -> Conservation {
        let sent = self.sent();
        let delivered = self.received();
        let in_flight_at_end = sent.saturating_sub(delivered).saturating_sub(dropped);
        Conservation {
            sent,
            delivered,
            dropped,
            in_flight_at_end,
        }
    }

    /// Summarize at end of experiment. Statistics accumulate in probe-id
    /// order — a pure function of the record map — so any partition of
    /// the same run summarizes, after [`merged`](Self::merged), to
    /// bit-identical floats.
    pub fn summary(&self) -> RttSummary {
        let mut rtt = Welford::new();
        let mut prt = Welford::new();
        let mut pt = Welford::new();
        let mut srt = Welford::new();
        let mut hist = LatencyHistogram::new();
        for r in self.records.values() {
            let (Some(sent_at), Some(rx)) = (r.before_sending, r.after_receiving) else {
                continue;
            };
            let d = rx.saturating_since(sent_at);
            rtt.push(d.as_millis_f64());
            hist.record(d.as_micros());
            if let Some(aft) = r.after_sending {
                prt.push(aft.saturating_since(sent_at).as_millis_f64());
                if let Some(bef_rx) = r.before_receiving {
                    pt.push(bef_rx.saturating_since(aft).as_millis_f64());
                    srt.push(rx.saturating_since(bef_rx).as_millis_f64());
                }
            }
        }
        let sent = self.sent();
        let received = rtt.count();
        let loss_rate = if sent == 0 {
            0.0
        } else {
            (sent - received) as f64 / sent as f64
        };
        RttSummary {
            sent,
            received,
            loss_rate,
            rtt_mean_ms: rtt.mean(),
            rtt_stddev_ms: rtt.stddev(),
            percentiles_ms: hist
                .percentile_series()
                .into_iter()
                .map(|(p, us)| (p, us as f64 / 1000.0))
                .collect(),
            distribution_us: hist.summary(),
            prt_mean_ms: prt.mean(),
            pt_mean_ms: pt.mean(),
            srt_mean_ms: srt.mean(),
            within_100ms: hist.fraction_le(100_000),
            within_5s: hist.fraction_le(5_000_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn full_lifecycle_decomposition() {
        let mut c = RttCollector::new();
        let id = c.before_sending(0, t(1000));
        c.after_sending(id, t(1010));
        c.before_receiving(id, t(1500));
        c.after_receiving(id, t(1520));
        let s = c.summary();
        assert_eq!(s.sent, 1);
        assert_eq!(s.received, 1);
        assert_eq!(s.loss_rate, 0.0);
        assert!((s.rtt_mean_ms - 520.0).abs() < 1e-9);
        assert!((s.prt_mean_ms - 10.0).abs() < 1e-9);
        assert!((s.pt_mean_ms - 490.0).abs() < 1e-9);
        assert!((s.srt_mean_ms - 20.0).abs() < 1e-9);
        // RTT = PRT + PT + SRT (the paper's equation).
        assert!((s.rtt_mean_ms - (s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms)).abs() < 1e-9);
    }

    #[test]
    fn probe_ids_are_lane_keyed_and_merge_reassembles_split_records() {
        // Serial reference: two publishers (lanes 3 and 9) interleaved.
        let mut serial = RttCollector::new();
        // Sharded: publishers live on shard A, the subscriber on shard B —
        // each record is split into its send half and receive half.
        let mut send_side = RttCollector::new();
        let mut recv_side = RttCollector::new();
        for i in 0..20u64 {
            let lane = if i % 2 == 0 { 3 } else { 9 };
            let sid = serial.before_sending(lane, t(i));
            let aid = send_side.before_sending(lane, t(i));
            assert_eq!(sid, aid, "content-derived ids agree across worlds");
            assert_eq!(sid, ProbeId::compose(lane, (i / 2) as u32));
            serial.after_sending(sid, t(i + 1));
            send_side.after_sending(aid, t(i + 1));
            if i % 5 != 0 {
                serial.before_receiving(sid, t(i + 4));
                serial.after_receiving(sid, t(i + 6));
                recv_side.before_receiving(aid, t(i + 4));
                recv_side.after_receiving(aid, t(i + 6));
            }
        }
        let merged = RttCollector::merged([send_side, recv_side]);
        let (m, s) = (merged.summary(), serial.summary());
        assert_eq!((m.sent, m.received), (s.sent, s.received));
        assert_eq!(m.rtt_mean_ms.to_bits(), s.rtt_mean_ms.to_bits());
        assert_eq!(m.rtt_stddev_ms.to_bits(), s.rtt_stddev_ms.to_bits());
        assert_eq!(m.pt_mean_ms.to_bits(), s.pt_mean_ms.to_bits());
        assert_eq!(m.percentiles_ms, s.percentiles_ms);
        assert_eq!(
            merged.probe_ids().collect::<Vec<_>>(),
            serial.probe_ids().collect::<Vec<_>>()
        );
        // Merged-of-one is the identity.
        let once = RttCollector::merged([serial]);
        let o = once.summary();
        assert_eq!(o.rtt_mean_ms.to_bits(), s.rtt_mean_ms.to_bits());
    }

    #[test]
    fn loss_counts_unreceived() {
        let mut c = RttCollector::new();
        for i in 0..10 {
            let id = c.before_sending(0, t(i));
            c.after_sending(id, t(i + 1));
            if i % 5 != 0 {
                c.after_receiving(id, t(i + 3));
            }
        }
        let s = c.summary();
        assert_eq!(s.sent, 10);
        assert_eq!(s.received, 8);
        assert!((s.loss_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_delivery_counted_once() {
        let mut c = RttCollector::new();
        let id = c.before_sending(0, t(0));
        c.after_sending(id, t(1));
        c.after_receiving(id, t(5));
        c.after_receiving(id, t(9)); // retransmitted duplicate
        let s = c.summary();
        assert_eq!(s.received, 1);
        assert!((s.rtt_mean_ms - 5.0).abs() < 1e-9, "first delivery wins");
    }

    #[test]
    fn percentiles_and_budgets() {
        let mut c = RttCollector::new();
        for i in 1..=100u64 {
            let id = c.before_sending(0, t(0));
            c.after_sending(id, t(0));
            c.before_receiving(id, t(i));
            c.after_receiving(id, t(i));
        }
        let s = c.summary();
        assert_eq!(s.percentiles_ms.len(), 6);
        assert_eq!(s.percentiles_ms[5], (100, 100.0));
        assert!(s.within_100ms >= 0.99);
        assert_eq!(s.within_5s, 1.0);
        // The full distribution rides along, below p95 included.
        let d = s.distribution_us.expect("messages completed");
        assert_eq!(d.count, 100);
        assert_eq!(d.max, 100_000);
        assert!(d.p50 <= d.p90 && d.p90 <= d.p99 && d.p999 <= d.max);
    }

    #[test]
    fn stddev_matches_paper_definition() {
        // Two RTTs: 10 and 20 ms → mean 15, population stddev 5.
        let mut c = RttCollector::new();
        for ms in [10u64, 20] {
            let id = c.before_sending(0, t(0));
            c.after_sending(id, t(0));
            c.after_receiving(id, t(ms));
        }
        let s = c.summary();
        assert!((s.rtt_mean_ms - 15.0).abs() < 1e-9);
        assert!((s.rtt_stddev_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_classifies_exhaustively() {
        let mut c = RttCollector::new();
        for i in 0..10 {
            let id = c.before_sending(0, t(i));
            c.after_sending(id, t(i + 1));
            if i < 6 {
                c.after_receiving(id, t(i + 3));
            }
        }
        // 10 sent, 6 delivered, 3 attributed drops → 1 in flight.
        let cons = c.conservation(3);
        assert_eq!(cons.sent, 10);
        assert_eq!(cons.delivered, 6);
        assert_eq!(cons.dropped, 3);
        assert_eq!(cons.in_flight_at_end, 1);
        assert!(cons.holds());
        // Over-attribution (double-counted drops) breaks the identity.
        let over = c.conservation(5);
        assert!(!over.holds(), "delivered + dropped > sent must not hold");
    }

    #[test]
    fn empty_summary() {
        let s = RttCollector::new().summary();
        assert_eq!(s.sent, 0);
        assert_eq!(s.loss_rate, 0.0);
        assert!(s.percentiles_ms.is_empty());
    }
}
