//! Per-message round-trip records, loss accounting, and the paper's RTT
//! decomposition `RTT = PRT + PT + SRT`.
//!
//! Instrumentation points mirror fig 15:
//!
//! * `before_sending`  — the application calls publish/insert.
//! * `after_sending`   — the synchronous send operation returns.
//! * `before_receiving`— the middleware makes the message available to the
//!   receiving client (notification fired / poll response begins).
//! * `after_receiving` — the receiving application has the message.
//!
//! PRT = after_sending − before_sending (Publishing Response Time),
//! PT = before_receiving − after_sending (Process Time),
//! SRT = after_receiving − before_receiving (Subscribing Response Time).

use crate::histogram::LatencyHistogram;
use crate::stats::Welford;
use simcore::SimTime;

/// Handle to one in-flight probe record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Record {
    before_sending: SimTime,
    after_sending: Option<SimTime>,
    before_receiving: Option<SimTime>,
    after_receiving: Option<SimTime>,
}

/// The four raw instants of one probe, in fig 15 order. Exposed so an
/// independent observer (the `simtrace` subsystem) can cross-check its
/// own per-message reconstruction against this collector — any
/// disagreement means one of the two instrumentation paths is buggy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInstants {
    /// The application called publish/insert.
    pub before_sending: SimTime,
    /// The synchronous send returned.
    pub after_sending: Option<SimTime>,
    /// The middleware made the message available.
    pub before_receiving: Option<SimTime>,
    /// The receiving application had the message.
    pub after_receiving: Option<SimTime>,
}

/// Summary of a completed experiment's message telemetry.
#[derive(Debug, Clone)]
pub struct RttSummary {
    /// Messages sent.
    pub sent: u64,
    /// Messages fully received.
    pub received: u64,
    /// Loss rate in `[0,1]`.
    pub loss_rate: f64,
    /// Mean round-trip time, milliseconds.
    pub rtt_mean_ms: f64,
    /// RTT standard deviation, milliseconds.
    pub rtt_stddev_ms: f64,
    /// RTT at 95..100 percentiles, milliseconds.
    pub percentiles_ms: Vec<(u32, f64)>,
    /// Mean PRT (publishing response time), ms.
    pub prt_mean_ms: f64,
    /// Mean PT (middleware process time), ms.
    pub pt_mean_ms: f64,
    /// Mean SRT (subscribing response time), ms.
    pub srt_mean_ms: f64,
    /// Fraction of messages within 100 ms (paper's "99.8 % within 100 ms").
    pub within_100ms: f64,
    /// Fraction within the 5 s soft real-time budget of §I.
    pub within_5s: f64,
}

/// Exhaustive end-of-run classification of every sent message: each is
/// delivered, dropped (with a known cause), or still in flight when the
/// clock stops. Fault-injection campaigns assert [`Conservation::holds`]
/// to prove no message is double-counted or silently lost by the
/// accounting itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conservation {
    /// Messages the application sent.
    pub sent: u64,
    /// Messages the receiving application got (duplicates counted once).
    pub delivered: u64,
    /// Messages dropped with an attributed cause (link burst, partition,
    /// crash window, …) — supplied by the fault-injection accounting.
    pub dropped: u64,
    /// Messages neither delivered nor attributed-dropped by the end of
    /// the run (queued, buffered offline, or mid-retransmit).
    pub in_flight_at_end: u64,
}

impl Conservation {
    /// The conservation identity `sent == delivered + dropped +
    /// in_flight_at_end`. Fails only when causes are double-counted
    /// (`delivered + dropped > sent`), since `in_flight_at_end` is the
    /// residual class.
    pub fn holds(&self) -> bool {
        self.delivered
            .checked_add(self.dropped)
            .and_then(|v| v.checked_add(self.in_flight_at_end))
            == Some(self.sent)
    }
}

/// The measurement service: middlewares and clients report instants; the
/// experiment reads the summary at the end.
pub struct RttCollector {
    records: Vec<Record>,
    rtt: Welford,
    prt: Welford,
    pt: Welford,
    srt: Welford,
    hist: LatencyHistogram,
}

impl Default for RttCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl RttCollector {
    /// Empty collector.
    pub fn new() -> Self {
        RttCollector {
            records: Vec::new(),
            rtt: Welford::new(),
            prt: Welford::new(),
            pt: Welford::new(),
            srt: Welford::new(),
            hist: LatencyHistogram::new(),
        }
    }

    /// The application is about to send; returns the probe handle.
    pub fn before_sending(&mut self, now: SimTime) -> ProbeId {
        let id = ProbeId(self.records.len() as u64);
        self.records.push(Record {
            before_sending: now,
            after_sending: None,
            before_receiving: None,
            after_receiving: None,
        });
        id
    }

    /// The synchronous send completed.
    pub fn after_sending(&mut self, id: ProbeId, now: SimTime) {
        let r = &mut self.records[id.0 as usize];
        debug_assert!(r.after_sending.is_none(), "double after_sending");
        r.after_sending = Some(now);
    }

    /// The middleware made the message available to the subscriber.
    pub fn before_receiving(&mut self, id: ProbeId, now: SimTime) {
        let r = &mut self.records[id.0 as usize];
        // Idempotent: with redelivery (UDP retransmit) keep the first.
        if r.before_receiving.is_none() {
            r.before_receiving = Some(now);
        }
    }

    /// The receiving application has the message. Duplicate deliveries
    /// (UDP retransmission) are counted once — first delivery wins.
    pub fn after_receiving(&mut self, id: ProbeId, now: SimTime) {
        let r = &mut self.records[id.0 as usize];
        if r.after_receiving.is_some() {
            return;
        }
        r.after_receiving = Some(now);
        let rtt = now.saturating_since(r.before_sending);
        self.rtt.push(rtt.as_millis_f64());
        self.hist.record(rtt.as_micros());
        if let Some(aft) = r.after_sending {
            self.prt
                .push(aft.saturating_since(r.before_sending).as_millis_f64());
            if let Some(bef_rx) = r.before_receiving {
                self.pt.push(bef_rx.saturating_since(aft).as_millis_f64());
                self.srt.push(now.saturating_since(bef_rx).as_millis_f64());
            }
        }
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.records.len() as u64
    }

    /// Messages received so far.
    pub fn received(&self) -> u64 {
        self.rtt.count()
    }

    /// Direct access to the latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Raw instants of one probe (`None` if the id was never issued).
    pub fn instants(&self, id: ProbeId) -> Option<ProbeInstants> {
        self.records.get(id.0 as usize).map(|r| ProbeInstants {
            before_sending: r.before_sending,
            after_sending: r.after_sending,
            before_receiving: r.before_receiving,
            after_receiving: r.after_receiving,
        })
    }

    /// Classify every sent message at end of run. `dropped` is the
    /// cause-attributed drop count from the fault accounting; messages
    /// neither delivered nor attributed fall into `in_flight_at_end`.
    /// The result's [`Conservation::holds`] detects double-counting:
    /// it is violated exactly when `delivered + dropped > sent`.
    pub fn conservation(&self, dropped: u64) -> Conservation {
        let sent = self.sent();
        let delivered = self.received();
        let in_flight_at_end = sent.saturating_sub(delivered).saturating_sub(dropped);
        Conservation {
            sent,
            delivered,
            dropped,
            in_flight_at_end,
        }
    }

    /// Summarize at end of experiment.
    pub fn summary(&self) -> RttSummary {
        let sent = self.sent();
        let received = self.received();
        let loss_rate = if sent == 0 {
            0.0
        } else {
            (sent - received) as f64 / sent as f64
        };
        RttSummary {
            sent,
            received,
            loss_rate,
            rtt_mean_ms: self.rtt.mean(),
            rtt_stddev_ms: self.rtt.stddev(),
            percentiles_ms: self
                .hist
                .percentile_series()
                .into_iter()
                .map(|(p, us)| (p, us as f64 / 1000.0))
                .collect(),
            prt_mean_ms: self.prt.mean(),
            pt_mean_ms: self.pt.mean(),
            srt_mean_ms: self.srt.mean(),
            within_100ms: self.hist.fraction_le(100_000),
            within_5s: self.hist.fraction_le(5_000_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn full_lifecycle_decomposition() {
        let mut c = RttCollector::new();
        let id = c.before_sending(t(1000));
        c.after_sending(id, t(1010));
        c.before_receiving(id, t(1500));
        c.after_receiving(id, t(1520));
        let s = c.summary();
        assert_eq!(s.sent, 1);
        assert_eq!(s.received, 1);
        assert_eq!(s.loss_rate, 0.0);
        assert!((s.rtt_mean_ms - 520.0).abs() < 1e-9);
        assert!((s.prt_mean_ms - 10.0).abs() < 1e-9);
        assert!((s.pt_mean_ms - 490.0).abs() < 1e-9);
        assert!((s.srt_mean_ms - 20.0).abs() < 1e-9);
        // RTT = PRT + PT + SRT (the paper's equation).
        assert!((s.rtt_mean_ms - (s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms)).abs() < 1e-9);
    }

    #[test]
    fn loss_counts_unreceived() {
        let mut c = RttCollector::new();
        for i in 0..10 {
            let id = c.before_sending(t(i));
            c.after_sending(id, t(i + 1));
            if i % 5 != 0 {
                c.after_receiving(id, t(i + 3));
            }
        }
        let s = c.summary();
        assert_eq!(s.sent, 10);
        assert_eq!(s.received, 8);
        assert!((s.loss_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_delivery_counted_once() {
        let mut c = RttCollector::new();
        let id = c.before_sending(t(0));
        c.after_sending(id, t(1));
        c.after_receiving(id, t(5));
        c.after_receiving(id, t(9)); // retransmitted duplicate
        let s = c.summary();
        assert_eq!(s.received, 1);
        assert!((s.rtt_mean_ms - 5.0).abs() < 1e-9, "first delivery wins");
    }

    #[test]
    fn percentiles_and_budgets() {
        let mut c = RttCollector::new();
        for i in 1..=100u64 {
            let id = c.before_sending(t(0));
            c.after_sending(id, t(0));
            c.before_receiving(id, t(i));
            c.after_receiving(id, t(i));
        }
        let s = c.summary();
        assert_eq!(s.percentiles_ms.len(), 6);
        assert_eq!(s.percentiles_ms[5], (100, 100.0));
        assert!(s.within_100ms >= 0.99);
        assert_eq!(s.within_5s, 1.0);
    }

    #[test]
    fn stddev_matches_paper_definition() {
        // Two RTTs: 10 and 20 ms → mean 15, population stddev 5.
        let mut c = RttCollector::new();
        for ms in [10u64, 20] {
            let id = c.before_sending(t(0));
            c.after_sending(id, t(0));
            c.after_receiving(id, t(ms));
        }
        let s = c.summary();
        assert!((s.rtt_mean_ms - 15.0).abs() < 1e-9);
        assert!((s.rtt_stddev_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_classifies_exhaustively() {
        let mut c = RttCollector::new();
        for i in 0..10 {
            let id = c.before_sending(t(i));
            c.after_sending(id, t(i + 1));
            if i < 6 {
                c.after_receiving(id, t(i + 3));
            }
        }
        // 10 sent, 6 delivered, 3 attributed drops → 1 in flight.
        let cons = c.conservation(3);
        assert_eq!(cons.sent, 10);
        assert_eq!(cons.delivered, 6);
        assert_eq!(cons.dropped, 3);
        assert_eq!(cons.in_flight_at_end, 1);
        assert!(cons.holds());
        // Over-attribution (double-counted drops) breaks the identity.
        let over = c.conservation(5);
        assert!(!over.holds(), "delivered + dropped > sent must not hold");
    }

    #[test]
    fn empty_summary() {
        let s = RttCollector::new().summary();
        assert_eq!(s.sent, 0);
        assert_eq!(s.loss_rate, 0.0);
        assert!(s.percentiles_ms.is_empty());
    }
}
