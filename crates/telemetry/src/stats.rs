//! Streaming moment statistics (Welford's algorithm).

/// Numerically stable running mean/variance/min/max.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (the paper's STDDEV is over all samples).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!(close(w.mean(), 5.0));
        assert!(close(w.stddev(), 2.0));
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!(close(a.mean(), whole.mean()));
        assert!(close(a.variance(), whole.variance()));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert!(close(c.mean(), 1.0));
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(1e9 + (i % 2) as f64);
        }
        assert!(close(w.mean(), 1e9 + 0.5));
        assert!((w.stddev() - 0.5).abs() < 1e-6);
    }
}
