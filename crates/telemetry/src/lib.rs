#![warn(missing_docs)]
//! # telemetry — measurement and reporting
//!
//! Implements the paper's metrics (§III.C): mean RTT, RTT standard
//! deviation, percentile-of-RTT, loss rate, the decomposition
//! `RTT = PRT + PT + SRT` (fig 15), and table/figure rendering for the
//! reproduction harness.
//!
//! * [`Welford`] — streaming moments (mergeable for parallel sweeps).
//! * [`LatencyHistogram`] — log-bucketed, <1.6 % relative quantile error.
//! * [`RttCollector`] — the kernel service middleware code reports
//!   instrumentation points to.
//! * [`MetricsRegistry`] — the time-series metrics plane: named
//!   counters/gauges/histograms sampled on the vmstat cadence, exported
//!   as Prometheus text format and deterministic CSV.
//! * [`Table`] / [`Figure`] — paper-style text and CSV rendering.

pub mod histogram;
pub mod metrics;
pub mod report;
pub mod rtt;
pub mod stats;

pub use histogram::{HistogramSummary, LatencyHistogram};
pub use metrics::{with_metrics, MetricsRegistry};
pub use report::{degradation_table, trim_float, Figure, Series, Table};
pub use rtt::{Conservation, ProbeId, ProbeInstants, RttCollector, RttSummary};
pub use stats::Welford;
