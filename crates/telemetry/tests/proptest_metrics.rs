//! Property tests for the measurement substrate: histogram quantiles
//! against exact order statistics, Welford against naive moments, and
//! collector conservation.

use proptest::prelude::*;
use simcore::SimTime;
use telemetry::{LatencyHistogram, RttCollector, Welford};

proptest! {
    #[test]
    fn histogram_quantiles_bounded_relative_error(
        mut values in proptest::collection::vec(1u64..10_000_000, 1..500),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let approx = h.quantile(q).unwrap();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let exact = values[rank];
        // The log-bucketed histogram guarantees the returned value is a
        // lower bound within one bucket (≤ 1/64 relative width) of some
        // order statistic near the rank; allow 5 % + one bucket slack.
        let rel = (approx as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(
            rel < 0.05 || {
                // Accept landing on a neighbouring order statistic when
                // duplicates/rounding shift the rank by one.
                let lo = values[rank.saturating_sub(1)] as f64;
                let hi = values[(rank + 1).min(values.len() - 1)] as f64;
                approx as f64 >= lo * 0.95 && (approx as f64) <= hi * 1.05
            },
            "q={q} approx={approx} exact={exact}"
        );
    }

    #[test]
    fn histogram_count_min_max_exact(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
        prop_assert_eq!(h.quantile(1.0), values.iter().max().copied());
    }

    #[test]
    fn histogram_merge_equals_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for q in [0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    #[test]
    fn welford_sharded_merge_equals_sequential(
        values in proptest::collection::vec(-1e6f64..1e6, 1..300),
        shards in 1usize..8,
    ) {
        // Parallel reduction: split the stream into `shards` chunks, fold
        // each into its own accumulator, merge left-to-right — the result
        // must agree with a single sequential accumulator to float
        // tolerance (and exactly on count/min/max).
        let mut whole = Welford::new();
        for &v in &values {
            whole.push(v);
        }
        let per = values.len().div_ceil(shards);
        let mut merged = Welford::new();
        for chunk in values.chunks(per.max(1)) {
            let mut w = Welford::new();
            for &v in chunk {
                w.push(v);
            }
            merged.merge(&w);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (merged.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance().abs())
        );
    }

    #[test]
    fn histogram_sharded_merge_equals_sequential(
        values in proptest::collection::vec(0u64..10_000_000, 1..300),
        shards in 1usize..8,
    ) {
        // Same reduction shape as the parallel sweep uses: chunked shards
        // merged into one histogram must be indistinguishable from
        // recording the whole stream sequentially.
        let mut whole = LatencyHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let per = values.len().div_ceil(shards);
        let mut merged = LatencyHistogram::new();
        for chunk in values.chunks(per.max(1)) {
            let mut h = LatencyHistogram::new();
            for &v in chunk {
                h.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn welford_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &v in &values {
            w.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(w.count(), values.len() as u64);
    }

    #[test]
    fn collector_conservation(
        // (send_at_us, deliver: Option<delay_us>)
        msgs in proptest::collection::vec((0u64..1_000_000, proptest::option::of(1u64..100_000)), 0..200),
    ) {
        let mut c = RttCollector::new();
        let mut expected_received = 0u64;
        for &(at, delivery) in &msgs {
            let id = c.before_sending(0, SimTime::from_micros(at));
            c.after_sending(id, SimTime::from_micros(at + 10));
            if let Some(d) = delivery {
                c.before_receiving(id, SimTime::from_micros(at + 10 + d / 2));
                c.after_receiving(id, SimTime::from_micros(at + 10 + d));
                expected_received += 1;
            }
        }
        let s = c.summary();
        prop_assert_eq!(s.sent, msgs.len() as u64);
        prop_assert_eq!(s.received, expected_received);
        let expected_loss = if msgs.is_empty() {
            0.0
        } else {
            (msgs.len() as u64 - expected_received) as f64 / msgs.len() as f64
        };
        prop_assert!((s.loss_rate - expected_loss).abs() < 1e-12);
        // RTT = PRT + PT + SRT in expectation over complete records.
        if expected_received > 0 {
            let total = s.prt_mean_ms + s.pt_mean_ms + s.srt_mean_ms;
            prop_assert!((total - s.rtt_mean_ms).abs() < 1e-6,
                "decomposition {total} vs rtt {}", s.rtt_mean_ms);
        }
    }
}
