//! SQL lexer for the R-GMA subset.

use std::fmt;

/// SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (table/column name); case preserved.
    Ident(String),
    /// Keyword, normalized to uppercase.
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Create,
    Table,
    Insert,
    Into,
    Values,
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Null,
    True,
    False,
    Integer,
    Int,
    Bigint,
    Real,
    Double,
    Precision,
    Char,
    Varchar,
}

impl Keyword {
    fn parse(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_uppercase().as_str() {
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "INTEGER" => Keyword::Integer,
            "INT" => Keyword::Int,
            "BIGINT" => Keyword::Bigint,
            "REAL" => Keyword::Real,
            "DOUBLE" => Keyword::Double,
            "PRECISION" => Keyword::Precision,
            "CHAR" => Keyword::Char,
            "VARCHAR" => Keyword::Varchar,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Byte offset.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize SQL text.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".into(),
                        at: i,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            at: i,
                        });
                    }
                    if bytes[j] == b'\'' {
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        let ch = input[j..].chars().next().expect("valid utf-8");
                        s.push(ch);
                        j += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            '-' | '0'..='9' | '.' => {
                // '-' only starts a number here if followed by a digit
                // (the subset has no arithmetic).
                let negative = c == '-';
                if negative
                    && !bytes
                        .get(i + 1)
                        .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
                {
                    return Err(LexError {
                        message: "unexpected '-'".into(),
                        at: i,
                    });
                }
                let start = i;
                if negative {
                    i += 1;
                }
                let mut saw_dot = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !saw_dot => {
                            saw_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' => {
                            saw_dot = true; // force float parse
                            i += 1;
                            if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                let tok = if saw_dot {
                    Token::Float(text.parse::<f64>().map_err(|e| LexError {
                        message: format!("bad float {text:?}: {e}"),
                        at: start,
                    })?)
                } else {
                    Token::Int(text.parse::<i64>().map_err(|e| LexError {
                        message: format!("bad integer {text:?}: {e}"),
                        at: start,
                    })?)
                };
                out.push(tok);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::parse(word) {
                    Some(k) => out.push(Token::Keyword(k)),
                    None => out.push(Token::Ident(word.to_owned())),
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_insert() {
        let toks = lex("INSERT INTO generator (id, power) VALUES (1, 850.5)").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Insert));
        assert!(toks.contains(&Token::Ident("generator".into())));
        assert!(toks.contains(&Token::Int(1)));
        assert!(toks.contains(&Token::Float(850.5)));
    }

    #[test]
    fn lex_select_with_comparison() {
        let toks = lex("SELECT * FROM t WHERE a >= 10 AND b <> 'x'").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Str("x".into())));
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(lex("-5").unwrap(), vec![Token::Int(-5)]);
        assert_eq!(lex("-2.5").unwrap(), vec![Token::Float(-2.5)]);
        assert!(lex("- 5").is_err(), "bare minus is not arithmetic");
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            lex("select Select SELECT").unwrap(),
            vec![Token::Keyword(Keyword::Select); 3]
        );
    }

    #[test]
    fn quoted_escapes() {
        assert_eq!(lex("'it''s'").unwrap(), vec![Token::Str("it's".into())]);
    }

    #[test]
    fn errors() {
        assert!(lex("'open").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn bang_equals() {
        assert_eq!(lex("a != 1").unwrap()[1], Token::Ne);
    }
}
