//! Recursive-descent parser for the SQL subset.

use crate::ast::{CmpOp, ColumnDef, Predicate, SqlType, Statement};
use crate::lexer::{lex, Keyword, LexError, Token};
use std::fmt;
use wire::Value;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token / end of input.
    Unexpected {
        /// What was found (None = end).
        found: Option<Token>,
        /// What was expected.
        expected: String,
    },
    /// Trailing tokens after a complete statement.
    TrailingInput(Token),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => match found {
                Some(t) => write!(f, "unexpected `{t}` (expected {expected})"),
                None => write!(f, "unexpected end of SQL (expected {expected})"),
            },
            ParseError::TrailingInput(t) => write!(f, "trailing input at `{t}`"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semi);
    if let Some(t) = p.peek() {
        return Err(ParseError::TrailingInput(t.clone()));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{k:?}")))
        }
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<(), ParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().cloned(),
            expected: expected.to_owned(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw(Keyword::Create) {
            self.create_table()
        } else if self.eat_kw(Keyword::Insert) {
            self.insert()
        } else if self.eat_kw(Keyword::Select) {
            self.select()
        } else {
            Err(self.unexpected("CREATE, INSERT or SELECT"))
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Table)?;
        let table = self.ident("table name")?;
        self.expect(Token::LParen, "'(' before column list")?;
        let mut columns = Vec::new();
        loop {
            let name = self.ident("column name")?;
            let ty = self.sql_type()?;
            columns.push(ColumnDef { name, ty });
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(Token::RParen, "')' after column list")?;
            break;
        }
        Ok(Statement::CreateTable { table, columns })
    }

    fn sql_type(&mut self) -> Result<SqlType, ParseError> {
        if self.eat_kw(Keyword::Integer) || self.eat_kw(Keyword::Int) {
            Ok(SqlType::Integer)
        } else if self.eat_kw(Keyword::Bigint) {
            Ok(SqlType::Bigint)
        } else if self.eat_kw(Keyword::Real) {
            Ok(SqlType::Real)
        } else if self.eat_kw(Keyword::Double) {
            // Optional PRECISION.
            self.eat_kw(Keyword::Precision);
            Ok(SqlType::Double)
        } else if self.eat_kw(Keyword::Char) {
            Ok(SqlType::Char(self.width()?))
        } else if self.eat_kw(Keyword::Varchar) {
            Ok(SqlType::Varchar(self.width()?))
        } else {
            Err(self.unexpected("column type"))
        }
    }

    fn width(&mut self) -> Result<u16, ParseError> {
        self.expect(Token::LParen, "'(' before width")?;
        let w = match self.peek() {
            Some(Token::Int(v)) if (1..=65535).contains(v) => *v as u16,
            _ => return Err(self.unexpected("width 1..65535")),
        };
        self.pos += 1;
        self.expect(Token::RParen, "')' after width")?;
        Ok(w)
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Into)?;
        let table = self.ident("table name")?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.ident("column name")?);
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(Token::RParen, "')' after columns")?;
                break;
            }
        }
        self.expect_kw(Keyword::Values)?;
        self.expect(Token::LParen, "'(' before values")?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(Token::RParen, "')' after values")?;
            break;
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        let v = match self.peek() {
            Some(Token::Int(v)) => {
                // SQL integer literals fit the column's width at insert
                // validation time; carry as the widest integer.
                Value::Long(*v)
            }
            Some(Token::Float(v)) => Value::Double(*v),
            Some(Token::Str(s)) => Value::Str(s.clone()),
            Some(Token::Keyword(Keyword::True)) => Value::Bool(true),
            Some(Token::Keyword(Keyword::False)) => Value::Bool(false),
            _ => return Err(self.unexpected("literal value")),
        };
        self.pos += 1;
        Ok(v)
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        let mut columns = Vec::new();
        if !self.eat(&Token::Star) {
            loop {
                columns.push(self.ident("column name or '*'")?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw(Keyword::From)?;
        let table = self.ident("table name")?;
        let predicate = if self.eat_kw(Keyword::Where) {
            Some(self.or_pred()?)
        } else {
            None
        };
        Ok(Statement::Select {
            columns,
            table,
            predicate,
        })
    }

    fn or_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut lhs = self.and_pred()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.and_pred()?;
            lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut lhs = self.not_pred()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_pred()?;
            lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_kw(Keyword::Not) {
            Ok(Predicate::Not(Box::new(self.not_pred()?)))
        } else {
            self.atom_pred()
        }
    }

    fn atom_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat(&Token::LParen) {
            let inner = self.or_pred()?;
            self.expect(Token::RParen, "closing ')'")?;
            return Ok(inner);
        }
        if self.eat_kw(Keyword::True) {
            return Ok(Predicate::Const(true));
        }
        if self.eat_kw(Keyword::False) {
            return Ok(Predicate::Const(false));
        }
        let column = self.ident("column name")?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.unexpected("comparison operator")),
        };
        self.pos += 1;
        let value = self.literal()?;
        Ok(Predicate::Cmp { column, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_generator() {
        // The R-GMA test payload: 4 int, 8 double, 4 char(20).
        let stmt = parse(
            "CREATE TABLE generator (id INTEGER, seq INTEGER, node INTEGER, flags INT, \
             p1 DOUBLE PRECISION, p2 DOUBLE, p3 DOUBLE, p4 DOUBLE, \
             p5 DOUBLE, p6 DOUBLE, p7 DOUBLE, p8 DOUBLE, \
             c1 CHAR(20), c2 CHAR(20), c3 CHAR(20), c4 CHAR(20))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { table, columns } => {
                assert_eq!(table, "generator");
                assert_eq!(columns.len(), 16);
                assert_eq!(columns[0].ty, SqlType::Integer);
                assert_eq!(columns[4].ty, SqlType::Double);
                assert_eq!(columns[12].ty, SqlType::Char(20));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn insert_with_and_without_columns() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(values, vec![Value::Long(1), Value::Str("x".into())]);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("INSERT INTO t VALUES (1.5, TRUE, -3)").unwrap();
        match s {
            Statement::Insert {
                columns, values, ..
            } => {
                assert!(columns.is_empty());
                assert_eq!(
                    values,
                    vec![Value::Double(1.5), Value::Bool(true), Value::Long(-3)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star_and_projection() {
        let s = parse("SELECT * FROM generator").unwrap();
        match s {
            Statement::Select {
                columns, predicate, ..
            } => {
                assert!(columns.is_empty());
                assert!(predicate.is_none());
            }
            other => panic!("{other:?}"),
        }
        let s = parse("SELECT id, power FROM generator WHERE id < 100").unwrap();
        match s {
            Statement::Select {
                columns, predicate, ..
            } => {
                assert_eq!(columns, vec!["id", "power"]);
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_precedence() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3").unwrap();
        let Statement::Select { predicate, .. } = s else {
            panic!()
        };
        match predicate.unwrap() {
            Predicate::Or(_, rhs) => match *rhs {
                Predicate::And(_, r2) => assert!(matches!(*r2, Predicate::Not(_))),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn error_cases() {
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("INSERT INTO t VALUES ()").is_err());
        assert!(parse("CREATE TABLE t (a FANCYTYPE)").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t WHERE a ~ 1").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("CREATE TABLE t (a CHAR(0))").is_err());
        assert!(parse("CREATE TABLE t (a CHAR(99999))").is_err());
    }

    #[test]
    fn error_display() {
        let e = parse("SELECT").unwrap_err().to_string();
        assert!(e.contains("end of SQL"), "{e}");
    }
}
