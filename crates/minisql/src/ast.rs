//! AST for the SQL subset.

use wire::{Value, ValueType};

/// A column type as declared in `CREATE TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlType {
    /// `INTEGER` / `INT`.
    Integer,
    /// `BIGINT`.
    Bigint,
    /// `REAL`.
    Real,
    /// `DOUBLE PRECISION` / `DOUBLE`.
    Double,
    /// `CHAR(n)`.
    Char(u16),
    /// `VARCHAR(n)`.
    Varchar(u16),
}

impl SqlType {
    /// The wire value type this column stores.
    pub fn value_type(self) -> ValueType {
        match self {
            SqlType::Integer => ValueType::Int,
            SqlType::Bigint => ValueType::Long,
            SqlType::Real => ValueType::Float,
            SqlType::Double => ValueType::Double,
            SqlType::Char(_) => ValueType::Char,
            SqlType::Varchar(_) => ValueType::Str,
        }
    }
}

impl std::fmt::Display for SqlType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Bigint => write!(f, "BIGINT"),
            SqlType::Real => write!(f, "REAL"),
            SqlType::Double => write!(f, "DOUBLE PRECISION"),
            SqlType::Char(n) => write!(f, "CHAR({n})"),
            SqlType::Varchar(n) => write!(f, "VARCHAR({n})"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
}

/// Comparison operators in WHERE clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column-vs-literal comparison.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal value.
        value: Value,
    },
    /// `a AND b`.
    And(Box<Predicate>, Box<Predicate>),
    /// `a OR b`.
    Or(Box<Predicate>, Box<Predicate>),
    /// `NOT a`.
    Not(Box<Predicate>),
    /// `TRUE` / `FALSE` literal.
    Const(bool),
}

impl Predicate {
    /// Node count (CPU cost accounting).
    pub fn node_count(&self) -> usize {
        match self {
            Predicate::Cmp { .. } | Predicate::Const(_) => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => 1 + a.node_count() + b.node_count(),
            Predicate::Not(a) => 1 + a.node_count(),
        }
    }
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        table: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO name [(cols)] VALUES (…)`.
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list (empty = table order).
        columns: Vec<String>,
        /// Literal values.
        values: Vec<Value>,
    },
    /// `SELECT cols FROM name [WHERE pred]`.
    Select {
        /// Projected columns (empty = `*`).
        columns: Vec<String>,
        /// Table name.
        table: String,
        /// Optional predicate.
        predicate: Option<Predicate>,
    },
}

impl Statement {
    /// Table the statement targets.
    pub fn table(&self) -> &str {
        match self {
            Statement::CreateTable { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Select { table, .. } => table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_type_mapping() {
        assert_eq!(SqlType::Integer.value_type(), ValueType::Int);
        assert_eq!(SqlType::Char(20).value_type(), ValueType::Char);
        assert_eq!(format!("{}", SqlType::Double), "DOUBLE PRECISION");
        assert_eq!(format!("{}", SqlType::Char(20)), "CHAR(20)");
    }

    #[test]
    fn predicate_node_count() {
        let p = Predicate::And(
            Box::new(Predicate::Cmp {
                column: "a".into(),
                op: CmpOp::Lt,
                value: Value::Int(5),
            }),
            Box::new(Predicate::Not(Box::new(Predicate::Const(true)))),
        );
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn statement_table() {
        let s = Statement::Select {
            columns: vec![],
            table: "generator".into(),
            predicate: None,
        };
        assert_eq!(s.table(), "generator");
    }
}
