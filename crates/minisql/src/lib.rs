#![warn(missing_docs)]
//! # minisql — the SQL subset behind the R-GMA virtual database
//!
//! R-GMA presents the Grid as one large relational database: producers
//! `INSERT`, consumers `SELECT`, and the middleware mediates. This crate
//! implements the SQL surface the paper's tests exercise:
//!
//! * `CREATE TABLE` with `INTEGER`/`BIGINT`/`REAL`/`DOUBLE
//!   PRECISION`/`CHAR(n)`/`VARCHAR(n)` columns,
//! * `INSERT INTO … VALUES …` with validation, coercion and width checks,
//! * `SELECT cols FROM t WHERE …` with three-valued predicates,
//!
//! plus a per-evaluation CPU cost model charged to R-GMA server nodes.
//! (Joins and aggregate functions are outside the study's workload and are
//! deliberately not implemented; R-GMA query *types* — latest, history,
//! continuous — are API-level concepts implemented in the `rgma` crate.)

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod schema;

pub use ast::{CmpOp, ColumnDef, Predicate, SqlType, Statement};
pub use eval::{eval_predicate, predicate_cost, row_matches};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, ParseError};
pub use schema::{Catalog, SchemaError, TableSchema};
