//! Predicate evaluation over rows (three-valued SQL semantics) and the
//! CPU cost model for query execution on the reference node.

use crate::ast::{CmpOp, Predicate};
use crate::schema::TableSchema;
use simcore::SimDuration;
use wire::Value;

/// Evaluate a predicate against a row. `None` = UNKNOWN (incomparable
/// kinds); rows match only on `Some(true)`, as in SQL.
pub fn eval_predicate(pred: &Predicate, schema: &TableSchema, row: &[Value]) -> Option<bool> {
    match pred {
        Predicate::Const(b) => Some(*b),
        Predicate::Cmp { column, op, value } => {
            let ix = schema.column_index(column)?;
            let cell = row.get(ix)?;
            let ord = cell.sql_cmp(value)?;
            Some(match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            })
        }
        Predicate::And(a, b) => {
            match (
                eval_predicate(a, schema, row),
                eval_predicate(b, schema, row),
            ) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        Predicate::Or(a, b) => {
            match (
                eval_predicate(a, schema, row),
                eval_predicate(b, schema, row),
            ) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
        Predicate::Not(a) => eval_predicate(a, schema, row).map(|b| !b),
    }
}

/// True iff the row definitely satisfies the predicate (`None` = no
/// predicate = match all).
pub fn row_matches(pred: Option<&Predicate>, schema: &TableSchema, row: &[Value]) -> bool {
    match pred {
        None => true,
        Some(p) => eval_predicate(p, schema, row) == Some(true),
    }
}

/// CPU cost of evaluating a predicate once on the reference node.
pub fn predicate_cost(pred: Option<&Predicate>) -> SimDuration {
    match pred {
        None => SimDuration::from_micros(1),
        Some(p) => SimDuration::from_micros(2 + 2 * p.node_count() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use crate::schema::Catalog;

    fn setup() -> (Catalog, Vec<Value>) {
        let mut c = Catalog::new();
        c.create(&parse("CREATE TABLE g (id INTEGER, power DOUBLE, site CHAR(8))").unwrap())
            .unwrap();
        let row = vec![
            Value::Int(42),
            Value::Double(850.5),
            Value::fixed_char("hydra1", 8),
        ];
        (c, row)
    }

    fn pred(sql: &str) -> Predicate {
        let Statement::Select { predicate, .. } =
            parse(&format!("SELECT * FROM g WHERE {sql}")).unwrap()
        else {
            panic!()
        };
        predicate.unwrap()
    }

    #[test]
    fn comparisons() {
        let (c, row) = setup();
        let s = c.table("g").unwrap();
        assert_eq!(eval_predicate(&pred("id = 42"), s, &row), Some(true));
        assert_eq!(eval_predicate(&pred("id <> 42"), s, &row), Some(false));
        assert_eq!(eval_predicate(&pred("power > 850"), s, &row), Some(true));
        assert_eq!(eval_predicate(&pred("power <= 850"), s, &row), Some(false));
        assert_eq!(
            eval_predicate(&pred("site = 'hydra1'"), s, &row),
            Some(true)
        );
        assert_eq!(eval_predicate(&pred("site < 'z'"), s, &row), Some(true));
    }

    #[test]
    fn logic_and_unknown() {
        let (c, row) = setup();
        let s = c.table("g").unwrap();
        assert_eq!(
            eval_predicate(&pred("id = 42 AND power > 0"), s, &row),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&pred("id = 0 OR power > 0"), s, &row),
            Some(true)
        );
        assert_eq!(eval_predicate(&pred("NOT id = 42"), s, &row), Some(false));
        // Type mismatch → UNKNOWN; AND false short-circuits it away.
        assert_eq!(eval_predicate(&pred("id = 'x'"), s, &row), None);
        assert_eq!(
            eval_predicate(&pred("id = 'x' AND id = 0"), s, &row),
            Some(false)
        );
        assert_eq!(
            eval_predicate(&pred("id = 'x' OR id = 42"), s, &row),
            Some(true)
        );
        // Unknown column → UNKNOWN (registry mismatch safety).
        let p = Predicate::Cmp {
            column: "ghost".into(),
            op: CmpOp::Eq,
            value: Value::Int(1),
        };
        assert_eq!(eval_predicate(&p, s, &row), None);
    }

    #[test]
    fn row_matches_semantics() {
        let (c, row) = setup();
        let s = c.table("g").unwrap();
        assert!(row_matches(None, s, &row));
        assert!(row_matches(Some(&pred("id = 42")), s, &row));
        assert!(
            !row_matches(Some(&pred("id = 'x'")), s, &row),
            "UNKNOWN rejects"
        );
    }

    #[test]
    fn cost_scales() {
        assert!(predicate_cost(Some(&pred("id = 1 AND power > 2"))) > predicate_cost(None));
    }
}
