//! Table schemas and insert validation (the R-GMA Schema service's data
//! model).

use crate::ast::{ColumnDef, SqlType, Statement};
use std::collections::HashMap;
use std::fmt;
use wire::{Tuple, Value};

/// Validation failure for an insert.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// Column count mismatch.
    ArityMismatch {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// Value type incompatible with the column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: SqlType,
        /// Provided value (display form).
        got: String,
    },
    /// String too long for CHAR(n)/VARCHAR(n).
    TooLong {
        /// Column name.
        column: String,
        /// Declared width.
        width: u16,
        /// Actual length.
        len: usize,
    },
    /// Table already exists.
    DuplicateTable(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NoSuchTable(t) => write!(f, "no such table {t}"),
            SchemaError::NoSuchColumn(c) => write!(f, "no such column {c}"),
            SchemaError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            SchemaError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column} expects {expected}, got {got}"),
            SchemaError::TooLong { column, width, len } => {
                write!(
                    f,
                    "value too long for {column} (CHAR({width})): {len} chars"
                )
            }
            SchemaError::DuplicateTable(t) => write!(f, "table {t} already exists"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// One table's schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    index: HashMap<String, usize>,
}

impl TableSchema {
    /// Build from a parsed `CREATE TABLE`.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        let name = name.into();
        let index = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        TableSchema {
            name,
            columns,
            index,
        }
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validate and normalize an insert: reorders named columns into
    /// declaration order, coerces integer widening and Str→Char, and
    /// checks widths. Returns the normalized row values.
    pub fn normalize_insert(
        &self,
        columns: &[String],
        values: &[Value],
    ) -> Result<Vec<Value>, SchemaError> {
        let order: Vec<usize> = if columns.is_empty() {
            (0..self.arity()).collect()
        } else {
            let mut order = Vec::with_capacity(columns.len());
            for c in columns {
                order.push(
                    self.column_index(c)
                        .ok_or_else(|| SchemaError::NoSuchColumn(c.clone()))?,
                );
            }
            order
        };
        if order.len() != values.len() || order.len() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        let mut row = vec![Value::Int(0); self.arity()];
        for (slot, v) in order.into_iter().zip(values) {
            let col = &self.columns[slot];
            row[slot] = coerce(v, col)?;
        }
        Ok(row)
    }

    /// Project a row onto a column list (empty = all columns).
    pub fn project(&self, row: &[Value], columns: &[String]) -> Result<Vec<Value>, SchemaError> {
        if columns.is_empty() {
            return Ok(row.to_vec());
        }
        columns
            .iter()
            .map(|c| {
                self.column_index(c)
                    .map(|ix| row[ix].clone())
                    .ok_or_else(|| SchemaError::NoSuchColumn(c.clone()))
            })
            .collect()
    }

    /// Convert a normalized row into a wire tuple.
    pub fn to_tuple(&self, row: Vec<Value>) -> Tuple {
        Tuple::new(self.name.clone(), row)
    }
}

fn coerce(v: &Value, col: &ColumnDef) -> Result<Value, SchemaError> {
    let mismatch = || SchemaError::TypeMismatch {
        column: col.name.clone(),
        expected: col.ty,
        got: v.to_string(),
    };
    Ok(match (col.ty, v) {
        (SqlType::Integer, Value::Int(x)) => Value::Int(*x),
        (SqlType::Integer, Value::Long(x)) => {
            Value::Int(i32::try_from(*x).map_err(|_| mismatch())?)
        }
        (SqlType::Bigint, Value::Int(x)) => Value::Long(i64::from(*x)),
        (SqlType::Bigint, Value::Long(x)) => Value::Long(*x),
        (SqlType::Real, Value::Float(x)) => Value::Float(*x),
        (SqlType::Real, Value::Int(x)) => Value::Float(*x as f32),
        (SqlType::Real, Value::Long(x)) => Value::Float(*x as f32),
        (SqlType::Real, Value::Double(x)) => Value::Float(*x as f32),
        (SqlType::Double, Value::Double(x)) => Value::Double(*x),
        (SqlType::Double, Value::Float(x)) => Value::Double(f64::from(*x)),
        (SqlType::Double, Value::Int(x)) => Value::Double(f64::from(*x)),
        (SqlType::Double, Value::Long(x)) => Value::Double(*x as f64),
        (SqlType::Char(w), Value::Str(s)) | (SqlType::Char(w), Value::Char { content: s, .. }) => {
            if s.len() > w as usize {
                return Err(SchemaError::TooLong {
                    column: col.name.clone(),
                    width: w,
                    len: s.len(),
                });
            }
            Value::fixed_char(s.clone(), w)
        }
        (SqlType::Varchar(w), Value::Str(s))
        | (SqlType::Varchar(w), Value::Char { content: s, .. }) => {
            if s.len() > w as usize {
                return Err(SchemaError::TooLong {
                    column: col.name.clone(),
                    width: w,
                    len: s.len(),
                });
            }
            Value::Str(s.clone())
        }
        _ => return Err(mismatch()),
    })
}

/// A catalogue of table schemas (the Schema service's store).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, TableSchema>,
}

impl Catalog {
    /// Empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Execute a `CREATE TABLE` statement.
    pub fn create(&mut self, stmt: &Statement) -> Result<&TableSchema, SchemaError> {
        let Statement::CreateTable { table, columns } = stmt else {
            panic!("create() requires a CREATE TABLE statement");
        };
        if self.tables.contains_key(table) {
            return Err(SchemaError::DuplicateTable(table.clone()));
        }
        self.tables.insert(
            table.clone(),
            TableSchema::new(table.clone(), columns.clone()),
        );
        Ok(&self.tables[table])
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&TableSchema, SchemaError> {
        self.tables
            .get(name)
            .ok_or_else(|| SchemaError::NoSuchTable(name.to_owned()))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(&parse("CREATE TABLE g (id INTEGER, power DOUBLE, site CHAR(8))").unwrap())
            .unwrap();
        c
    }

    #[test]
    fn create_and_lookup() {
        let c = catalog();
        let t = c.table("g").unwrap();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.column_index("power"), Some(1));
        assert!(c.table("nope").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = catalog();
        let err = c
            .create(&parse("CREATE TABLE g (x INTEGER)").unwrap())
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateTable("g".into()));
    }

    #[test]
    fn normalize_insert_in_order() {
        let c = catalog();
        let row = c
            .table("g")
            .unwrap()
            .normalize_insert(
                &[],
                &[
                    Value::Long(1),
                    Value::Double(2.5),
                    Value::Str("hydra".into()),
                ],
            )
            .unwrap();
        assert_eq!(
            row,
            vec![
                Value::Int(1),
                Value::Double(2.5),
                Value::fixed_char("hydra", 8)
            ]
        );
    }

    #[test]
    fn normalize_insert_reorders_named_columns() {
        let c = catalog();
        let row = c
            .table("g")
            .unwrap()
            .normalize_insert(
                &["site".into(), "id".into(), "power".into()],
                &[Value::Str("x".into()), Value::Long(9), Value::Long(3)],
            )
            .unwrap();
        assert_eq!(row[0], Value::Int(9));
        assert_eq!(row[1], Value::Double(3.0));
        assert_eq!(row[2], Value::fixed_char("x", 8));
    }

    #[test]
    fn insert_validation_errors() {
        let c = catalog();
        let t = c.table("g").unwrap();
        assert!(matches!(
            t.normalize_insert(&[], &[Value::Long(1)]),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.normalize_insert(
                &[],
                &[
                    Value::Str("not int".into()),
                    Value::Double(0.0),
                    Value::Str("x".into())
                ]
            ),
            Err(SchemaError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.normalize_insert(
                &[],
                &[
                    Value::Long(1),
                    Value::Double(0.0),
                    Value::Str("waaaaaay too long".into())
                ]
            ),
            Err(SchemaError::TooLong { .. })
        ));
        assert!(matches!(
            t.normalize_insert(&["bogus".into()], &[Value::Long(1)]),
            Err(SchemaError::NoSuchColumn(_))
        ));
        // Integer overflow into INT column.
        assert!(matches!(
            t.normalize_insert(
                &[],
                &[
                    Value::Long(i64::MAX),
                    Value::Double(0.0),
                    Value::Str("x".into())
                ]
            ),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn projection() {
        let c = catalog();
        let t = c.table("g").unwrap();
        let row = vec![Value::Int(1), Value::Double(2.0), Value::fixed_char("s", 8)];
        assert_eq!(t.project(&row, &[]).unwrap().len(), 3);
        let p = t.project(&row, &["power".into()]).unwrap();
        assert_eq!(p, vec![Value::Double(2.0)]);
        assert!(t.project(&row, &["zzz".into()]).is_err());
    }

    #[test]
    fn to_tuple_carries_table_name() {
        let c = catalog();
        let t = c.table("g").unwrap();
        let tuple = t.to_tuple(vec![
            Value::Int(1),
            Value::Double(2.0),
            Value::fixed_char("s", 8),
        ]);
        assert_eq!(tuple.table, "g");
        assert_eq!(tuple.values.len(), 3);
    }
}
