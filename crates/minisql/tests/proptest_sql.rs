//! Property tests for the SQL subset: total parser, round-trippable
//! generated statements, and insert normalization type safety.

use minisql::{parse, Catalog, SqlType, Statement};
use proptest::prelude::*;
use wire::Value;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,11}".prop_filter("not a keyword", |s| {
        ![
            "create",
            "table",
            "insert",
            "into",
            "values",
            "select",
            "from",
            "where",
            "and",
            "or",
            "not",
            "null",
            "true",
            "false",
            "integer",
            "int",
            "bigint",
            "real",
            "double",
            "precision",
            "char",
            "varchar",
        ]
        .contains(&s.as_str())
    })
}

fn arb_type() -> impl Strategy<Value = SqlType> {
    prop_oneof![
        Just(SqlType::Integer),
        Just(SqlType::Bigint),
        Just(SqlType::Real),
        Just(SqlType::Double),
        (1u16..64).prop_map(SqlType::Char),
        (1u16..64).prop_map(SqlType::Varchar),
    ]
}

prop_compose! {
    /// A CREATE TABLE with distinct column names plus a value generator
    /// matching each column type.
    fn arb_table()(
        name in ident(),
        cols in proptest::collection::btree_map(ident(), arb_type(), 1..8),
    ) -> (String, Vec<(String, SqlType)>) {
        let cols: Vec<(String, SqlType)> = cols.into_iter().collect();
        let ddl = format!(
            "CREATE TABLE {name} ({})",
            cols.iter()
                .map(|(c, t)| format!("{c} {t}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        (ddl, cols)
    }
}

fn value_for(ty: SqlType, seed: i64) -> (String, Value) {
    match ty {
        SqlType::Integer => (
            format!("{}", seed as i32),
            Value::Long(i64::from(seed as i32)),
        ),
        SqlType::Bigint => (format!("{seed}"), Value::Long(seed)),
        SqlType::Real | SqlType::Double => {
            let v = (seed % 10_000) as f64 / 4.0;
            (format!("{v:.2}"), Value::Double(v))
        }
        SqlType::Char(w) | SqlType::Varchar(w) => {
            let s: String = "abcdefgh"
                .chars()
                .cycle()
                .take((seed.unsigned_abs() as usize % w as usize).clamp(1, 8))
                .collect();
            (format!("'{s}'"), Value::Str(s))
        }
    }
}

proptest! {
    #[test]
    fn parser_never_panics(s in "[ -~]{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn generated_ddl_and_inserts_execute((ddl, cols) in arb_table(), seed in 0i64..1_000_000) {
        let mut cat = Catalog::new();
        let stmt = parse(&ddl).unwrap_or_else(|e| panic!("{ddl:?}: {e}"));
        cat.create(&stmt).unwrap();
        let table = stmt.table().to_owned();
        // Build a matching INSERT.
        let mut texts = Vec::new();
        let mut vals = Vec::new();
        for (i, (_, ty)) in cols.iter().enumerate() {
            let (text, v) = value_for(*ty, seed + i as i64);
            texts.push(text);
            vals.push(v);
        }
        let insert = format!("INSERT INTO {table} VALUES ({})", texts.join(", "));
        let parsed = parse(&insert).unwrap_or_else(|e| panic!("{insert:?}: {e}"));
        let Statement::Insert { columns, values, .. } = parsed else {
            panic!("expected insert");
        };
        prop_assert_eq!(&values, &vals);
        // Normalization coerces every literal into the declared type.
        let schema = cat.table(&table).unwrap();
        let row = schema.normalize_insert(&columns, &values)
            .unwrap_or_else(|e| panic!("{insert:?}: {e}"));
        prop_assert_eq!(row.len(), cols.len());
        for (cell, (_, ty)) in row.iter().zip(&cols) {
            prop_assert_eq!(cell.value_type(), ty.value_type(), "{} vs {}", cell, ty);
        }
    }

    #[test]
    fn predicates_evaluate_without_panic(
        (ddl, cols) in arb_table(),
        seed in 0i64..1_000_000,
        cmp_col in 0usize..8,
        lit in -1000i64..1000,
    ) {
        let mut cat = Catalog::new();
        let stmt = parse(&ddl).unwrap();
        cat.create(&stmt).unwrap();
        let table = stmt.table().to_owned();
        let schema = cat.table(&table).unwrap();
        let (col, _) = &cols[cmp_col % cols.len()];
        let sel = format!("SELECT * FROM {table} WHERE {col} >= {lit} OR NOT {col} = {lit}");
        let Statement::Select { predicate, .. } = parse(&sel).unwrap() else {
            panic!()
        };
        let pred = predicate.unwrap();
        // Build one row and evaluate; must not panic, result is a
        // three-valued bool.
        let mut vals = Vec::new();
        for (i, (_, ty)) in cols.iter().enumerate() {
            let (_, v) = value_for(*ty, seed + i as i64);
            vals.push(v);
        }
        let row = schema.normalize_insert(&[], &vals).unwrap();
        let r1 = minisql::eval_predicate(&pred, schema, &row);
        let r2 = minisql::eval_predicate(&pred, schema, &row);
        prop_assert_eq!(r1, r2, "deterministic");
    }
}
