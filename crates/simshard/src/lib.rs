#![warn(missing_docs)]
//! # simshard — conservative parallel execution of a partitioned world
//!
//! Splits one simulated cluster into per-node-group *shards*, each a full
//! replica of the world (`simcore`'s ghost/replicated build) advancing in
//! conservative lockstep, CMB/HELICS style:
//!
//! 1. every shard posts the timestamp of its earliest pending event;
//! 2. a barrier; the global minimum is the **LBTS** (lower bound on
//!    timestamp) — no shard can receive anything earlier;
//! 3. every shard executes its events in the half-open window
//!    `[LBTS, LBTS + lookahead)`, routing messages for foreign actors
//!    through per-destination mailboxes;
//! 4. a barrier; mailboxes drain, and the cycle repeats.
//!
//! The *lookahead* is the minimum cross-shard latency (in this project:
//! `simnet`'s fabric `base_latency`) — a message sent during a window can
//! never land inside that same window, so every shard may execute its
//! window without hearing from the others first. Violations trip a
//! `debug_assert` in [`Simulation::inject_remote`].
//!
//! Determinism does **not** depend on barrier or mailbox timing: every
//! event carries its sender-assigned key `(at, lane, lane_seq)` and the
//! kernel queue is totally ordered on that key, so the merged event history
//! is byte-identical to a serial run of the same seed no matter how the
//! shards interleave. The differential suite in `tests/shard_equivalence.rs`
//! and the proptests in this crate enforce exactly that.
//!
//! [`Simulation::inject_remote`]: simcore::Simulation::inject_remote

use simcore::{RemoteEnvelope, RemoteRouter, SimDuration, SimTime, Simulation};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Node-to-shard assignment for one run.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    node_shard: Arc<Vec<usize>>,
    shards: usize,
}

impl ShardPlan {
    /// Build a plan from an explicit node → shard map (e.g.
    /// `simnet::partition_nodes`). `shards` may exceed the largest
    /// assigned shard (empty shards idle at the barrier); it must cover
    /// every assignment in the map.
    pub fn new(node_shard: Vec<usize>, shards: usize) -> ShardPlan {
        assert!(shards > 0, "need at least one shard");
        assert!(
            node_shard.iter().all(|&s| s < shards),
            "node assigned to a shard >= shard count"
        );
        ShardPlan {
            node_shard: Arc::new(node_shard),
            shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard hosting `node`. Nodes beyond the map (no such node was
    /// declared at plan time) fall back to shard 0 rather than panicking,
    /// so ad-hoc test nodes stay usable.
    pub fn shard_of(&self, node: u16) -> usize {
        self.node_shard.get(node as usize).copied().unwrap_or(0)
    }

    /// The locality predicate for one shard, suitable for
    /// [`Simulation::set_locality`].
    ///
    /// [`Simulation::set_locality`]: simcore::Simulation::set_locality
    pub fn locality(&self, shard: usize) -> impl Fn(u16) -> bool + 'static {
        let map = Arc::clone(&self.node_shard);
        move |node| map.get(node as usize).copied().unwrap_or(0) == shard
    }
}

/// Sense-reversing barrier that spins briefly then yields. The simulation
/// is routinely run on machines with fewer cores than shards (CI boxes,
/// the 1-core container this project develops in), where pure spinning
/// would deadlock-by-starvation; after a short spin the waiters yield the
/// CPU so the straggler can run.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
}

/// Spins before the first `yield_now`. Small: on an undersubscribed
/// machine the other shard almost certainly is not running *right now*.
const SPINS_BEFORE_YIELD: u32 = 64;

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Wait for all `n` participants. `local_sense` is the caller's
    /// thread-local phase flag (start `false`, pass the same variable to
    /// every wait). Panics if a peer poisoned the barrier (its thread
    /// panicked mid-round) instead of spinning forever.
    fn wait(&self, local_sense: &mut bool) {
        *local_sense = !*local_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("peer shard panicked; barrier poisoned");
                }
                spins += 1;
                if spins < SPINS_BEFORE_YIELD {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }
}

/// Sentinel for "no pending events" in the per-shard time slots.
const NO_EVENTS: u64 = u64::MAX;

/// State shared by every shard of one lockstep run: cross-shard mailboxes,
/// per-shard next-event-time slots, and the round barrier.
pub struct SharedLockstep {
    mailboxes: Vec<Mutex<Vec<RemoteEnvelope>>>,
    times: Vec<AtomicU64>,
    barrier: SpinBarrier,
}

impl SharedLockstep {
    /// Shared state for `shards` participants.
    pub fn new(shards: usize) -> SharedLockstep {
        assert!(shards > 0);
        SharedLockstep {
            mailboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            times: (0..shards).map(|_| AtomicU64::new(NO_EVENTS)).collect(),
            barrier: SpinBarrier::new(shards),
        }
    }

    /// Deposit one envelope for `dst_shard` (used by [`MailboxRouter`]).
    /// Arrival order into the mailbox is timing-dependent and deliberately
    /// irrelevant: the kernel queue totally orders events by their
    /// sender-assigned `(at, lane, lane_seq)` key.
    pub fn post(&self, dst_shard: usize, env: RemoteEnvelope) {
        self.mailboxes[dst_shard]
            .lock()
            .expect("mailbox poisoned")
            .push(env);
    }
}

/// The [`RemoteRouter`] installed on every shard: resolves the target
/// node's owning shard from the plan and drops the envelope in that
/// shard's mailbox.
pub struct MailboxRouter {
    shared: Arc<SharedLockstep>,
    plan: ShardPlan,
}

impl MailboxRouter {
    /// Router posting into `shared` according to `plan`.
    pub fn new(shared: Arc<SharedLockstep>, plan: ShardPlan) -> MailboxRouter {
        MailboxRouter { shared, plan }
    }
}

impl RemoteRouter for MailboxRouter {
    fn route(&mut self, env: RemoteEnvelope, target_node: u16) {
        self.shared.post(self.plan.shard_of(target_node), env);
    }
}

/// Poisons the barrier if the owning thread unwinds, so peer shards
/// blocked on [`SpinBarrier::wait`] panic instead of spinning forever.
struct PoisonOnPanic<'a>(&'a SharedLockstep);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.barrier.poison();
        }
    }
}

/// Drive one shard to completion in conservative lockstep with its peers
/// (every shard of the run must call this with the same `shared`,
/// `horizon` and `lookahead`).
///
/// `on_inject` receives each envelope this shard owns; it must end by
/// calling [`Simulation::inject_remote`] (after any service-side
/// materialisation, e.g. `simnet`'s `ensure_conn`).
///
/// On return the shard clock matches a serial `run_until(horizon)`:
/// `horizon` if events remain beyond it anywhere, otherwise the time of
/// the globally last executed event.
///
/// [`Simulation::inject_remote`]: simcore::Simulation::inject_remote
pub fn run_lockstep(
    shard_ix: usize,
    sim: &mut Simulation,
    shared: &SharedLockstep,
    horizon: SimTime,
    lookahead: SimDuration,
    mut on_inject: impl FnMut(&mut Simulation, RemoteEnvelope),
) {
    assert!(
        lookahead > SimDuration::ZERO,
        "conservative lockstep needs strictly positive lookahead"
    );
    let _poison = PoisonOnPanic(shared);
    let mut sense = false;
    // Force `on_start` before the first LBTS round: its timers are part
    // of the initial event population this shard is about to report.
    sim.start();
    let drained = loop {
        // Drain the mailbox. No peer writes between the execute barrier
        // and the post barrier, so this sees every envelope of the
        // previous window and nothing else.
        let incoming =
            std::mem::take(&mut *shared.mailboxes[shard_ix].lock().expect("mailbox poisoned"));
        for env in incoming {
            on_inject(sim, env);
        }
        let next = sim.next_event_time().map_or(NO_EVENTS, |t| t.as_micros());
        shared.times[shard_ix].store(next, Ordering::Release);
        shared.barrier.wait(&mut sense);
        // Every shard reads the same slot values here (writes only happen
        // after the *next* execute barrier), so all compute the same LBTS
        // and take the same branch.
        let lbts = shared
            .times
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if lbts == NO_EVENTS {
            break true;
        }
        let lbts = SimTime::from_micros(lbts);
        if lbts > horizon {
            break false;
        }
        sim.run_window(lbts + lookahead, horizon);
        shared.barrier.wait(&mut sense);
    };
    // End-of-run clock normalisation, matching serial `run_until`: the
    // horizon when events remain past it, else the globally last executed
    // instant. Reuses the time slots for one more max-reduction round —
    // but only after a barrier: overwriting a slot while a slower peer is
    // still reading the all-drained verdict would send that peer down the
    // loop path and desynchronise the barrier counts (a deadlock).
    if drained {
        shared.barrier.wait(&mut sense);
        shared.times[shard_ix].store(sim.now().as_micros(), Ordering::Release);
        shared.barrier.wait(&mut sense);
        let last = shared
            .times
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .max()
            .expect("at least one shard");
        sim.advance_to(SimTime::from_micros(last));
    } else {
        sim.advance_to(horizon);
    }
}

/// Build, run and tear down a whole sharded simulation on scoped threads.
///
/// Each shard thread constructs its own full replica of the world
/// (`build` runs once per shard, *after* the locality filter, accounting
/// primary and mailbox router are installed, so plain `on_node` +
/// `add_actor` sequences shard correctly), drives it with
/// [`run_lockstep`], then reduces it to a `Send` partial via `extract`.
/// Returns the partials in shard order.
///
/// `build`'s return value is handed to `extract` on the same thread, so
/// thread-local build artifacts (e.g. `Rc` stats handles the world's
/// actors share with the driver) flow to extraction without needing to
/// be `Send`; only the extracted partial crosses threads.
pub fn run_sharded<B, T: Send>(
    plan: &ShardPlan,
    seed: u64,
    horizon: SimTime,
    lookahead: SimDuration,
    build: impl Fn(usize, &mut Simulation) -> B + Sync,
    inject: impl Fn(&mut Simulation, RemoteEnvelope) + Sync,
    extract: impl Fn(usize, Simulation, B) -> T + Sync,
) -> Vec<T> {
    let shards = plan.shards();
    let shared = Arc::new(SharedLockstep::new(shards));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard_ix| {
                let shared = Arc::clone(&shared);
                let plan = plan.clone();
                let build = &build;
                let inject = &inject;
                let extract = &extract;
                scope.spawn(move || {
                    let mut sim = Simulation::new(seed);
                    sim.set_locality(plan.locality(shard_ix));
                    sim.set_primary(shard_ix == 0);
                    sim.set_router(MailboxRouter::new(Arc::clone(&shared), plan));
                    let world = build(shard_ix, &mut sim);
                    run_lockstep(shard_ix, &mut sim, &shared, horizon, lookahead, |s, env| {
                        inject(s, env)
                    });
                    extract(shard_ix, sim, world)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Actor, Context, KernelStats, Payload, SimDuration, SimTime};
    use std::sync::{Arc, Mutex};

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(150);

    /// Execution log one shard accumulates: (at, actor ix, counter value).
    #[derive(Default)]
    struct Log(Vec<(u64, usize, u64)>);

    /// Ring of `n` actors (one per node): each receipt logs the counter,
    /// draws a per-actor random delay >= lookahead, and forwards
    /// counter+1 around the ring until `limit`.
    struct RingHop {
        ix: usize,
        next: simcore::ActorId,
        limit: u64,
    }

    impl Actor for RingHop {
        fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
            let n = *msg.downcast::<u64>().unwrap();
            let at = ctx.now().as_micros();
            let ix = self.ix;
            ctx.service_mut::<Log>().0.push((at, ix, n));
            if n < self.limit {
                let extra = ctx
                    .rng()
                    .duration_between(SimDuration::ZERO, SimDuration::from_micros(400));
                ctx.send_in(LOOKAHEAD + extra, self.next, n + 1);
            }
        }
        fn name(&self) -> &str {
            "ring-hop"
        }
    }

    /// Build the ring world: actor i on node i.
    fn build_ring(sim: &mut Simulation, nodes: usize, limit: u64) {
        let ids: Vec<simcore::ActorId> = (0..nodes).map(simcore::ActorId::from_index).collect();
        sim.add_service(Log::default());
        for i in 0..nodes {
            sim.on_node(i as u16);
            let id = sim.add_actor(RingHop {
                ix: i,
                next: ids[(i + 1) % nodes],
                limit,
            });
            assert_eq!(id, ids[i]);
        }
        // Two independent tokens so shards genuinely overlap.
        sim.schedule(SimDuration::from_micros(200), ids[0], Box::new(0u64));
        sim.schedule(
            SimDuration::from_micros(350),
            ids[nodes / 2],
            Box::new(1000u64),
        );
    }

    /// Canonical history: merged shard logs sorted by (at, actor, value).
    /// Each actor runs on exactly one shard and is internally FIFO, so
    /// this is a total order in both serial and sharded worlds.
    fn canonical(parts: Vec<Log>) -> Vec<(u64, usize, u64)> {
        let mut all: Vec<_> = parts.into_iter().flat_map(|l| l.0).collect();
        all.sort_unstable();
        all
    }

    fn serial_run(
        nodes: usize,
        limit: u64,
        horizon: SimTime,
    ) -> (Vec<(u64, usize, u64)>, KernelStats, SimTime) {
        let mut sim = Simulation::new(42);
        build_ring(&mut sim, nodes, limit);
        sim.run_until(horizon);
        let log = std::mem::take(sim.service_mut::<Log>().unwrap());
        (canonical(vec![log]), sim.stats(), sim.now())
    }

    fn sharded_run(
        shards: usize,
        nodes: usize,
        limit: u64,
        horizon: SimTime,
    ) -> (Vec<(u64, usize, u64)>, KernelStats, SimTime) {
        let plan = ShardPlan::new((0..nodes).map(|n| n % shards).collect(), shards);
        let parts = run_sharded(
            &plan,
            42,
            horizon,
            LOOKAHEAD,
            |_, sim| build_ring(sim, nodes, limit),
            |sim, env| sim.inject_remote(env),
            |_, mut sim, ()| {
                let log = std::mem::take(sim.service_mut::<Log>().unwrap());
                (log, sim.stats(), sim.now())
            },
        );
        let nows: Vec<SimTime> = parts.iter().map(|p| p.2).collect();
        assert!(
            nows.windows(2).all(|w| w[0] == w[1]),
            "shard clocks disagree"
        );
        let stats = KernelStats::merged(&parts.iter().map(|p| p.1.clone()).collect::<Vec<_>>());
        let now = nows[0];
        (
            canonical(parts.into_iter().map(|p| p.0).collect()),
            stats,
            now,
        )
    }

    #[test]
    fn sharded_ring_matches_serial_exactly() {
        let horizon = SimTime::from_secs(60);
        let (serial_log, serial_stats, serial_now) = serial_run(8, 40, horizon);
        assert!(!serial_log.is_empty());
        for shards in [1, 2, 4] {
            let (log, stats, now) = sharded_run(shards, 8, 40, horizon);
            assert_eq!(log, serial_log, "{shards} shards: event history diverged");
            assert_eq!(
                stats.determinism_digest(),
                serial_stats.determinism_digest(),
                "{shards} shards: kernel accounting diverged"
            );
            assert_eq!(now, serial_now, "{shards} shards: final clock diverged");
        }
    }

    #[test]
    fn horizon_cuts_sharded_and_serial_at_the_same_instant() {
        // Horizon inside the run: events remain, clock normalises to it.
        let horizon = SimTime::from_millis(5);
        let (serial_log, _, serial_now) = serial_run(6, 1_000, horizon);
        assert_eq!(serial_now, horizon);
        let (log, _, now) = sharded_run(3, 6, 1_000, horizon);
        assert_eq!(log, serial_log);
        assert_eq!(now, horizon);
    }

    #[test]
    fn empty_shards_idle_at_the_barrier() {
        // 4 shards, 2 nodes: shards 2 and 3 host nothing and must still
        // terminate.
        let horizon = SimTime::from_secs(60);
        let (serial_log, _, _) = serial_run(2, 10, horizon);
        let plan = ShardPlan::new(vec![0, 1], 4);
        let parts = run_sharded(
            &plan,
            42,
            horizon,
            LOOKAHEAD,
            |_, sim| build_ring(sim, 2, 10),
            |sim, env| sim.inject_remote(env),
            |_, mut sim, ()| std::mem::take(sim.service_mut::<Log>().unwrap()),
        );
        assert_eq!(canonical(parts), serial_log);
    }

    #[test]
    fn plan_rejects_out_of_range_assignments() {
        let r = std::panic::catch_unwind(|| ShardPlan::new(vec![0, 3], 2));
        assert!(r.is_err());
        let plan = ShardPlan::new(vec![0, 1, 0], 2);
        assert_eq!(plan.shard_of(1), 1);
        assert_eq!(plan.shard_of(99), 0, "unmapped nodes fall back to shard 0");
        assert!(plan.locality(1)(1));
        assert!(!plan.locality(1)(0));
    }

    #[test]
    fn barrier_poisoning_unblocks_peers() {
        let plan = ShardPlan::new(vec![0, 1], 2);
        let result = std::panic::catch_unwind(|| {
            run_sharded(
                &plan,
                1,
                SimTime::from_secs(1),
                LOOKAHEAD,
                |shard_ix, sim| {
                    sim.on_node(shard_ix as u16);
                    struct Bomb;
                    impl Actor for Bomb {
                        fn on_start(&mut self, ctx: &mut Context<'_>) {
                            ctx.timer(SimDuration::from_micros(10), ());
                        }
                        fn handle(&mut self, _m: Payload, _c: &mut Context<'_>) {
                            panic!("boom");
                        }
                    }
                    // Both shards build both actors; only one hosts the bomb.
                    sim.on_node(0);
                    sim.add_actor(Bomb);
                    sim.on_node(1);
                    sim.add_actor(simcore::NullActor);
                },
                |sim, env| sim.inject_remote(env),
                |_, _, ()| (),
            )
        });
        assert!(result.is_err(), "panic must propagate, not deadlock");
    }

    #[test]
    fn mailbox_order_is_irrelevant() {
        // Post two envelopes to one shard in "wrong" wall order; the keyed
        // queue still fires them in key order.
        let shared = SharedLockstep::new(1);
        let mut sim = Simulation::new(7);
        let seen: Arc<Mutex<Vec<u32>>> = Default::default();
        let s2 = Arc::clone(&seen);
        let a = sim.add_actor(simcore::FnActor(move |m: Payload, _c: &mut Context| {
            s2.lock().unwrap().push(*m.downcast::<u32>().unwrap());
        }));
        for (lane_seq, val) in [(1, 2u32), (0, 1u32)] {
            shared.post(
                0,
                RemoteEnvelope {
                    at: SimTime::from_micros(500),
                    lane: 9,
                    lane_seq,
                    target: a,
                    payload: Box::new(val),
                    type_name: Some("u32"),
                },
            );
        }
        run_lockstep(
            0,
            &mut sim,
            &shared,
            SimTime::from_secs(1),
            LOOKAHEAD,
            |s, env| s.inject_remote(env),
        );
        assert_eq!(&*seen.lock().unwrap(), &[1, 2]);
    }
}
