//! The gridlog driver programs: a fleet actor hosting one batching
//! producer per generator (staggered creation, random warm-up sleep,
//! fixed publish period — identical workload shape to the narada fleet)
//! and a subscriber actor hosting a consumer group whose members split
//! the topic's partitions between them.

use crate::generator::{GeneratorState, TOPIC};
use crate::narada_fleet::FleetStatsHandle;
use gridlog::{ClientEvent, ClientTimer, GridlogClientSet, GridlogConfig, OffsetReset};
use simcore::{Actor, Context, Payload, SimDuration, SimRng};
use simnet::{ConnId, Delivery, Endpoint};
use simos::{OsModel, ProcessId};
use std::collections::HashMap;

/// Configuration of one gridlog producer fleet (one driver JVM).
#[derive(Clone)]
pub struct GridlogFleetConfig {
    /// Node hosting the driver program.
    pub node: simos::NodeId,
    /// Its JVM (generator threads are accounted here).
    pub proc: ProcessId,
    /// Log broker to connect to.
    pub broker_ep: Endpoint,
    /// Number of simulated generators.
    pub n_generators: usize,
    /// First generator id (offset for multi-node fleets; also the
    /// stable producer id and partitioning key).
    pub first_id: u32,
    /// Interval between generator creations (paper: 0.5 s).
    pub creation_interval: SimDuration,
    /// Warm-up sleep range before the first publish (paper: 10–20 s).
    pub warmup: (SimDuration, SimDuration),
    /// Publish period (paper: 10 s).
    pub publish_interval: SimDuration,
    /// Payload multiplier (the "Triple" test used 3).
    pub payload_repeat: usize,
    /// Messages each generator publishes (paper: 30 min at 10 s = 180).
    pub msgs_per_generator: u32,
    /// Reconnect policy (`None` outside fault campaigns).
    pub reconnect: Option<gridlog::ReconnectPolicy>,
    /// Middleware configuration (client-side costs + batching).
    pub gridlog: GridlogConfig,
}

struct CreateGen(usize);
struct PubTick {
    ix: usize,
    remaining: u32,
}

/// The producer fleet actor.
pub struct GridlogFleet {
    cfg: GridlogFleetConfig,
    set: Option<GridlogClientSet>,
    gens: Vec<GeneratorState>,
    conn_of: Vec<Option<ConnId>>,
    gen_of_conn: HashMap<ConnId, usize>,
    rng: Option<SimRng>,
    stats: FleetStatsHandle,
    next_msg_id: u64,
}

impl GridlogFleet {
    /// New fleet; clone the returned stats handle before `add_actor`.
    pub fn new(cfg: GridlogFleetConfig) -> Self {
        let n = cfg.n_generators;
        GridlogFleet {
            cfg,
            set: None,
            gens: Vec::with_capacity(n),
            conn_of: vec![None; n],
            gen_of_conn: HashMap::new(),
            rng: None,
            stats: FleetStatsHandle::default(),
            next_msg_id: 0,
        }
    }

    /// Statistics handle.
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }

    /// Remap producer connections across reconnects and count losses.
    fn note_event(&mut self, ev: &ClientEvent) {
        match ev {
            ClientEvent::Reconnecting { old, new } => {
                if let Some(ix) = self.gen_of_conn.remove(old) {
                    self.conn_of[ix] = Some(*new);
                    self.gen_of_conn.insert(*new, ix);
                }
            }
            ClientEvent::Reconnected(_) => {
                self.stats.borrow_mut().reconnects += 1;
            }
            ClientEvent::ConnectionLost(conn) => {
                if let Some(ix) = self.gen_of_conn.remove(conn) {
                    self.conn_of[ix] = None;
                }
                self.stats.borrow_mut().lost += 1;
            }
            ClientEvent::ProduceAbandoned { .. } => {
                self.stats.borrow_mut().abandoned += 1;
            }
            _ => {}
        }
    }
}

impl Actor for GridlogFleet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.set = Some(GridlogClientSet::new(
            self.cfg.gridlog.clone(),
            self.cfg.node,
        ));
        let mut rng = ctx.rng().derive(u64::from(self.cfg.first_id) + 1);
        for ix in 0..self.cfg.n_generators {
            self.gens
                .push(GeneratorState::new(self.cfg.first_id + ix as u32, &mut rng));
            ctx.timer(
                self.cfg.creation_interval.saturating_mul(ix as u64),
                CreateGen(ix),
            );
        }
        self.rng = Some(rng);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<CreateGen>() {
            Ok(c) => {
                let ix = c.0;
                // One generator thread in the driver JVM.
                let proc = self.cfg.proc;
                let _ = ctx.with_service::<OsModel, _>(|os, _| os.spawn_thread(proc));
                let gen_id = self.cfg.first_id + ix as u32;
                let set = self.set.as_mut().expect("started");
                let conn = set.connect_producer(
                    ctx,
                    self.cfg.broker_ep,
                    u64::from(gen_id),
                    TOPIC,
                    self.cfg.reconnect,
                );
                self.conn_of[ix] = Some(conn);
                self.gen_of_conn.insert(conn, ix);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PubTick>() {
            Ok(t) => {
                let PubTick { ix, remaining } = *t;
                if remaining == 0 {
                    return;
                }
                let Some(conn) = self.conn_of[ix] else {
                    return;
                };
                let rng = self.rng.as_mut().expect("started");
                let gen = &mut self.gens[ix];
                gen.step(rng, self.cfg.publish_interval.as_secs_f64());
                self.next_msg_id += 1;
                let key = gen.id;
                let message =
                    gen.narada_message(self.next_msg_id, ctx.now(), self.cfg.payload_repeat);
                let set = self.set.as_mut().expect("started");
                set.produce(ctx, conn, key, message);
                self.stats.borrow_mut().published += 1;
                if remaining > 1 {
                    ctx.timer(
                        self.cfg.publish_interval,
                        PubTick {
                            ix,
                            remaining: remaining - 1,
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                let set = self.set.as_mut().expect("started");
                let events = set.handle_timer(ctx, *t);
                for ev in events {
                    self.note_event(&ev);
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let set = self.set.as_mut().expect("started");
            let events = set.handle_delivery(ctx, *d);
            for ev in events {
                match ev {
                    ClientEvent::Connected(conn) => {
                        self.stats.borrow_mut().connected += 1;
                        if let Some(&ix) = self.gen_of_conn.get(&conn) {
                            let (lo, hi) = self.cfg.warmup;
                            let delay = ctx.rng().duration_between(lo, hi);
                            ctx.timer(
                                delay,
                                PubTick {
                                    ix,
                                    remaining: self.cfg.msgs_per_generator,
                                },
                            );
                        }
                    }
                    ClientEvent::Refused(conn, _) => {
                        if let Some(ix) = self.gen_of_conn.remove(&conn) {
                            self.conn_of[ix] = None;
                        }
                        self.stats.borrow_mut().refused += 1;
                    }
                    ev => self.note_event(&ev),
                }
            }
        }
    }

    fn name(&self) -> &str {
        "gridlog-fleet"
    }
}

/// The receiving program: a consumer group of `members` connections that
/// split the topic's partitions, counting fetched records. The set-level
/// duplicate filter inside [`GridlogClientSet`] makes the count exact
/// across partition handoffs.
pub struct GridlogSubscriber {
    node: simos::NodeId,
    broker_ep: Endpoint,
    group: String,
    members: u32,
    reset: OffsetReset,
    reconnect: Option<gridlog::ReconnectPolicy>,
    gridlog: GridlogConfig,
    set: Option<GridlogClientSet>,
    member_of_conn: HashMap<ConnId, u64>,
    stats: FleetStatsHandle,
}

impl GridlogSubscriber {
    /// New subscriber hosting `members` group members.
    pub fn new(
        node: simos::NodeId,
        broker_ep: Endpoint,
        members: u32,
        reset: OffsetReset,
        reconnect: Option<gridlog::ReconnectPolicy>,
        gridlog: GridlogConfig,
    ) -> Self {
        GridlogSubscriber {
            node,
            broker_ep,
            group: "power-consumers".to_owned(),
            members,
            reset,
            reconnect,
            gridlog,
            set: None,
            member_of_conn: HashMap::new(),
            stats: FleetStatsHandle::default(),
        }
    }

    /// Statistics handle (`received` counts fetched records).
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }

    fn join(&mut self, ctx: &mut Context<'_>, member: u64) {
        let group = self.group.clone();
        let set = self.set.as_mut().expect("started");
        let conn = set.connect_consumer(
            ctx,
            self.broker_ep,
            group,
            member,
            TOPIC,
            self.reset,
            self.reconnect,
        );
        self.member_of_conn.insert(conn, member);
    }

    /// React to client events from either the timer or the delivery
    /// path. The subscriber is the experiment's measurement tap, so a
    /// member that exhausts its reconnect budget is bootstrapped again
    /// from scratch under the same member identity.
    fn note_events(&mut self, ctx: &mut Context<'_>, events: Vec<ClientEvent>) {
        let mut rebootstrap = Vec::new();
        for ev in events {
            match ev {
                ClientEvent::Connected(_) => {
                    self.stats.borrow_mut().connected += 1;
                }
                ClientEvent::Refused(conn, _) => {
                    self.member_of_conn.remove(&conn);
                    self.stats.borrow_mut().refused += 1;
                }
                ClientEvent::RecordArrived { .. } => {
                    self.stats.borrow_mut().received += 1;
                }
                ClientEvent::Reconnecting { old, new } => {
                    if let Some(m) = self.member_of_conn.remove(&old) {
                        self.member_of_conn.insert(new, m);
                    }
                }
                ClientEvent::Reconnected(_) => {
                    self.stats.borrow_mut().reconnects += 1;
                }
                ClientEvent::ConnectionLost(conn) => {
                    self.stats.borrow_mut().lost += 1;
                    if let Some(m) = self.member_of_conn.remove(&conn) {
                        rebootstrap.push(m);
                    }
                }
                _ => {}
            }
        }
        for m in rebootstrap {
            self.join(ctx, m);
        }
    }
}

impl Actor for GridlogSubscriber {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.set = Some(GridlogClientSet::new(self.gridlog.clone(), self.node));
        for m in 0..self.members {
            self.join(ctx, u64::from(m));
        }
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                let set = self.set.as_mut().expect("started");
                let events = set.handle_timer(ctx, *t);
                self.note_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let set = self.set.as_mut().expect("started");
            let events = set.handle_delivery(ctx, *d);
            self.note_events(ctx, events);
        }
    }

    fn name(&self) -> &str {
        "gridlog-subscriber"
    }
}
