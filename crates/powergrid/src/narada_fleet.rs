//! The Narada driver programs: a fleet actor that simulates many
//! generators publishing over JMS (one connection each, staggered
//! creation, random warm-up sleep, fixed publish period), and a
//! subscriber actor using the JMS notification mechanism with the
//! paper's selector.

use crate::generator::{GeneratorState, PAPER_SELECTOR, TOPIC};
use narada::{ClientEvent, ClientTimer, ConnSettings, NaradaClientSet, NaradaConfig};
use simcore::{Actor, Context, Payload, SimDuration, SimRng};
use simnet::{ConnId, Delivery, Endpoint};
use simos::{OsModel, ProcessId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Counters shared with the experiment driver.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Connections established.
    pub connected: u32,
    /// Connections refused by the middleware.
    pub refused: u32,
    /// Messages published.
    pub published: u64,
    /// UDP publishes abandoned after retries.
    pub abandoned: u64,
    /// Messages received (subscriber side).
    pub received: u64,
    /// Successful broker reconnections (fault campaigns only).
    pub reconnects: u32,
    /// Connections lost for good after exhausting reconnect attempts.
    pub lost: u32,
}

/// Shared handle to fleet statistics.
pub type FleetStatsHandle = Rc<RefCell<FleetStats>>;

/// Configuration of one Narada generator fleet (one driver JVM).
#[derive(Clone)]
pub struct NaradaFleetConfig {
    /// Node hosting the driver program.
    pub node: simos::NodeId,
    /// Its JVM (generator threads are accounted here).
    pub proc: ProcessId,
    /// Broker to connect to.
    pub broker_ep: Endpoint,
    /// Number of simulated generators.
    pub n_generators: usize,
    /// First generator id (offset for multi-node fleets).
    pub first_id: u32,
    /// Interval between generator creations (paper: 0.5 s).
    pub creation_interval: SimDuration,
    /// Warm-up sleep range before the first publish (paper: 10–20 s).
    pub warmup: (SimDuration, SimDuration),
    /// Publish period (paper: 10 s; the "80" test used 1 s).
    pub publish_interval: SimDuration,
    /// Transport + ack mode (Table II).
    pub settings: ConnSettings,
    /// Payload multiplier (the "Triple" test used 3).
    pub payload_repeat: usize,
    /// Messages each generator publishes (paper: 30 min at 10 s = 180).
    pub msgs_per_generator: u32,
    /// Middleware configuration (client-side costs).
    pub narada: NaradaConfig,
}

struct CreateGen(usize);
struct PubTick {
    ix: usize,
    remaining: u32,
}

/// The fleet actor.
pub struct NaradaFleet {
    cfg: NaradaFleetConfig,
    set: Option<NaradaClientSet>,
    gens: Vec<GeneratorState>,
    conn_of: Vec<Option<ConnId>>,
    gen_of_conn: HashMap<ConnId, usize>,
    rng: Option<SimRng>,
    stats: FleetStatsHandle,
    next_msg_id: u64,
}

impl NaradaFleet {
    /// New fleet; clone the returned stats handle before `add_actor`.
    pub fn new(cfg: NaradaFleetConfig) -> Self {
        let n = cfg.n_generators;
        NaradaFleet {
            cfg,
            set: None,
            gens: Vec::with_capacity(n),
            conn_of: vec![None; n],
            gen_of_conn: HashMap::new(),
            rng: None,
            stats: FleetStatsHandle::default(),
            next_msg_id: 0,
        }
    }

    /// Statistics handle.
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }

    /// Fleet bookkeeping shared between the timer and delivery paths:
    /// remap generator connections across reconnects and count losses.
    fn note_event(&mut self, ev: &ClientEvent) {
        match ev {
            ClientEvent::Reconnecting { old, new } => {
                if let Some(ix) = self.gen_of_conn.remove(old) {
                    self.conn_of[ix] = Some(*new);
                    self.gen_of_conn.insert(*new, ix);
                }
            }
            ClientEvent::Reconnected(_) => {
                self.stats.borrow_mut().reconnects += 1;
            }
            ClientEvent::ConnectionLost(conn) => {
                if let Some(ix) = self.gen_of_conn.remove(conn) {
                    self.conn_of[ix] = None;
                }
                self.stats.borrow_mut().lost += 1;
            }
            ClientEvent::PublishAbandoned { .. } => {
                self.stats.borrow_mut().abandoned += 1;
            }
            _ => {}
        }
    }
}

impl Actor for NaradaFleet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.set = Some(NaradaClientSet::new(self.cfg.narada.clone(), self.cfg.node));
        let mut rng = ctx.rng().derive(u64::from(self.cfg.first_id) + 1);
        for ix in 0..self.cfg.n_generators {
            self.gens
                .push(GeneratorState::new(self.cfg.first_id + ix as u32, &mut rng));
            ctx.timer(
                self.cfg.creation_interval.saturating_mul(ix as u64),
                CreateGen(ix),
            );
        }
        self.rng = Some(rng);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<CreateGen>() {
            Ok(c) => {
                let ix = c.0;
                // One generator thread in the driver JVM.
                let proc = self.cfg.proc;
                let _ = ctx.with_service::<OsModel, _>(|os, _| os.spawn_thread(proc));
                let set = self.set.as_mut().expect("started");
                let conn = set.connect(ctx, self.cfg.broker_ep, self.cfg.settings);
                self.conn_of[ix] = Some(conn);
                self.gen_of_conn.insert(conn, ix);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PubTick>() {
            Ok(t) => {
                let PubTick { ix, remaining } = *t;
                if remaining == 0 {
                    return;
                }
                let Some(conn) = self.conn_of[ix] else {
                    return;
                };
                let rng = self.rng.as_mut().expect("started");
                let gen = &mut self.gens[ix];
                gen.step(rng, self.cfg.publish_interval.as_secs_f64());
                self.next_msg_id += 1;
                let message =
                    gen.narada_message(self.next_msg_id, ctx.now(), self.cfg.payload_repeat);
                let set = self.set.as_mut().expect("started");
                set.publish(ctx, conn, message);
                self.stats.borrow_mut().published += 1;
                if remaining > 1 {
                    ctx.timer(
                        self.cfg.publish_interval,
                        PubTick {
                            ix,
                            remaining: remaining - 1,
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                let set = self.set.as_mut().expect("started");
                let events = set.handle_timer(ctx, *t);
                for ev in events {
                    self.note_event(&ev);
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let set = self.set.as_mut().expect("started");
            let events = set.handle_delivery(ctx, *d);
            for ev in events {
                match ev {
                    ClientEvent::Connected(conn) => {
                        self.stats.borrow_mut().connected += 1;
                        if let Some(&ix) = self.gen_of_conn.get(&conn) {
                            let (lo, hi) = self.cfg.warmup;
                            let delay = ctx.rng().duration_between(lo, hi);
                            ctx.timer(
                                delay,
                                PubTick {
                                    ix,
                                    remaining: self.cfg.msgs_per_generator,
                                },
                            );
                        }
                    }
                    ClientEvent::Refused(conn, _) => {
                        // A refused *re*connect attempt still holds the
                        // generator's conn slot; clear it so publish ticks
                        // stop instead of publishing into a dead handle.
                        if let Some(ix) = self.gen_of_conn.remove(&conn) {
                            self.conn_of[ix] = None;
                        }
                        self.stats.borrow_mut().refused += 1;
                    }
                    ev => self.note_event(&ev),
                }
            }
        }
    }

    fn name(&self) -> &str {
        "narada-fleet"
    }
}

/// The receiving program: one JMS connection, one topic subscription with
/// the paper's selector, counting notified messages.
pub struct NaradaSubscriber {
    node: simos::NodeId,
    broker_ep: Endpoint,
    settings: ConnSettings,
    narada: NaradaConfig,
    selector: String,
    set: Option<NaradaClientSet>,
    stats: FleetStatsHandle,
}

impl NaradaSubscriber {
    /// New subscriber with the paper's selector.
    pub fn new(
        node: simos::NodeId,
        broker_ep: Endpoint,
        settings: ConnSettings,
        narada: NaradaConfig,
    ) -> Self {
        NaradaSubscriber {
            node,
            broker_ep,
            settings,
            narada,
            selector: PAPER_SELECTOR.to_owned(),
            set: None,
            stats: FleetStatsHandle::default(),
        }
    }

    /// Statistics handle (only `received` is used).
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }

    /// React to client events from either the timer or the delivery path.
    /// The subscriber is the experiment's measurement tap, so it never
    /// stays down: if the client library exhausts its reconnect budget,
    /// the host bootstraps a fresh connection from scratch — exactly what
    /// a monitoring operator (or an `ExceptionListener` restart loop)
    /// would do.
    fn note_events(&mut self, ctx: &mut Context<'_>, events: Vec<ClientEvent>) {
        let mut rebootstrap = false;
        for ev in events {
            match ev {
                ClientEvent::Connected(conn) => {
                    let selector = self.selector.clone();
                    let set = self.set.as_mut().expect("started");
                    set.subscribe(ctx, conn, 0, TOPIC, selector);
                }
                ClientEvent::MessageArrived { .. } => {
                    self.stats.borrow_mut().received += 1;
                }
                ClientEvent::Reconnected(_) => {
                    self.stats.borrow_mut().reconnects += 1;
                }
                ClientEvent::ConnectionLost(_) => {
                    self.stats.borrow_mut().lost += 1;
                    rebootstrap = true;
                }
                _ => {}
            }
        }
        if rebootstrap {
            let set = self.set.as_mut().expect("started");
            set.connect(ctx, self.broker_ep, self.settings);
        }
    }
}

impl Actor for NaradaSubscriber {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = NaradaClientSet::new(self.narada.clone(), self.node);
        set.connect(ctx, self.broker_ep, self.settings);
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                // Reconnects re-subscribe internally; only count outcomes.
                let events = set.handle_timer(ctx, *t);
                self.note_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let events = set.handle_delivery(ctx, *d);
            self.note_events(ctx, events);
        }
    }

    fn name(&self) -> &str {
        "narada-subscriber"
    }
}
