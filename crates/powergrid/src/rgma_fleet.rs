//! The R-GMA driver programs: a fleet of Primary Producer clients
//! (staggered creation at 1 s, warm-up wait, 10 s insert period) and a
//! subscriber polling the Consumer servlet every 100 ms.

use crate::generator::{GeneratorState, TABLE};
use crate::narada_fleet::FleetStatsHandle;
use rgma::{ProducerHandle, RgmaClientSet, RgmaConfig, RgmaEvent, RgmaTimer};
use simcore::{Actor, Context, Payload, SimDuration, SimRng};
use simnet::{Delivery, Endpoint};
use simos::{OsModel, ProcessId};
use std::collections::HashMap;

/// Configuration of one R-GMA generator fleet (one driver JVM).
#[derive(Clone)]
pub struct RgmaFleetConfig {
    /// Node hosting the driver program.
    pub node: simos::NodeId,
    /// Its JVM.
    pub proc: ProcessId,
    /// Producer servlet to publish through.
    pub producer_ep: Endpoint,
    /// Number of simulated generators.
    pub n_generators: usize,
    /// First generator id.
    pub first_id: u32,
    /// Interval between producer creations (paper: 1 s).
    pub creation_interval: SimDuration,
    /// Warm-up wait range before the first insert (paper: 10–20 s; the
    /// no-warm-up loss test sets this near zero).
    pub warmup: (SimDuration, SimDuration),
    /// Insert period (paper: 10 s).
    pub publish_interval: SimDuration,
    /// Inserts each generator performs (paper: 30 min at 10 s = 180).
    pub msgs_per_generator: u32,
    /// Middleware configuration.
    pub rgma: RgmaConfig,
}

struct CreateGen(usize);
struct InsertTick {
    ix: usize,
    remaining: u32,
}

/// The R-GMA fleet actor.
pub struct RgmaFleet {
    cfg: RgmaFleetConfig,
    set: Option<RgmaClientSet>,
    gens: Vec<GeneratorState>,
    handle_of: Vec<Option<ProducerHandle>>,
    gen_of_handle: HashMap<ProducerHandle, usize>,
    rng: Option<SimRng>,
    stats: FleetStatsHandle,
}

impl RgmaFleet {
    /// New fleet.
    pub fn new(cfg: RgmaFleetConfig) -> Self {
        let n = cfg.n_generators;
        RgmaFleet {
            cfg,
            set: None,
            gens: Vec::with_capacity(n),
            handle_of: vec![None; n],
            gen_of_handle: HashMap::new(),
            rng: None,
            stats: FleetStatsHandle::default(),
        }
    }

    /// Statistics handle.
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }
}

impl Actor for RgmaFleet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.set = Some(RgmaClientSet::new(self.cfg.rgma.clone(), self.cfg.node));
        let mut rng = ctx.rng().derive(u64::from(self.cfg.first_id) + 0x5EC0);
        for ix in 0..self.cfg.n_generators {
            self.gens
                .push(GeneratorState::new(self.cfg.first_id + ix as u32, &mut rng));
            ctx.timer(
                self.cfg.creation_interval.saturating_mul(ix as u64),
                CreateGen(ix),
            );
        }
        self.rng = Some(rng);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let msg = match msg.downcast::<CreateGen>() {
            Ok(c) => {
                let ix = c.0;
                let proc = self.cfg.proc;
                let _ = ctx.with_service::<OsModel, _>(|os, _| os.spawn_thread(proc));
                let set = self.set.as_mut().expect("started");
                let handle = set.create_producer(ctx, self.cfg.producer_ep, TABLE);
                self.handle_of[ix] = Some(handle);
                self.gen_of_handle.insert(handle, ix);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InsertTick>() {
            Ok(t) => {
                let InsertTick { ix, remaining } = *t;
                if remaining == 0 {
                    return;
                }
                let Some(handle) = self.handle_of[ix] else {
                    return;
                };
                let rng = self.rng.as_mut().expect("started");
                let gen = &mut self.gens[ix];
                gen.step(rng, self.cfg.publish_interval.as_secs_f64());
                let sql = gen.rgma_insert_sql();
                let set = self.set.as_mut().expect("started");
                set.insert(ctx, handle, sql);
                self.stats.borrow_mut().published += 1;
                if remaining > 1 {
                    ctx.timer(
                        self.cfg.publish_interval,
                        InsertTick {
                            ix,
                            remaining: remaining - 1,
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RgmaTimer>() {
            Ok(t) => {
                let set = self.set.as_mut().expect("started");
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            let set = self.set.as_mut().expect("started");
            for ev in set.handle_delivery(ctx, *d) {
                match ev {
                    RgmaEvent::ProducerReady(h) => {
                        self.stats.borrow_mut().connected += 1;
                        if let Some(&ix) = self.gen_of_handle.get(&h) {
                            let (lo, hi) = self.cfg.warmup;
                            let delay = if hi > lo {
                                ctx.rng().duration_between(lo, hi)
                            } else {
                                lo
                            };
                            ctx.timer(
                                delay,
                                InsertTick {
                                    ix,
                                    remaining: self.cfg.msgs_per_generator,
                                },
                            );
                        }
                    }
                    RgmaEvent::ProducerFailed(_, _) => {
                        self.stats.borrow_mut().refused += 1;
                    }
                    _ => {}
                }
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-fleet"
    }
}

/// The subscriber program: creates one consumer running the continuous
/// query and polls it every 100 ms (counting tuples as they arrive).
pub struct RgmaSubscriber {
    node: simos::NodeId,
    consumer_ep: Endpoint,
    query: String,
    rgma: RgmaConfig,
    set: Option<RgmaClientSet>,
    stats: FleetStatsHandle,
}

impl RgmaSubscriber {
    /// New subscriber running `query`.
    pub fn new(
        node: simos::NodeId,
        consumer_ep: Endpoint,
        query: impl Into<String>,
        rgma: RgmaConfig,
    ) -> Self {
        RgmaSubscriber {
            node,
            consumer_ep,
            query: query.into(),
            rgma,
            set: None,
            stats: FleetStatsHandle::default(),
        }
    }

    /// Statistics handle (only `received` is used).
    pub fn stats_handle(&self) -> FleetStatsHandle {
        self.stats.clone()
    }
}

impl Actor for RgmaSubscriber {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = RgmaClientSet::new(self.rgma.clone(), self.node);
        set.create_subscriber(ctx, self.consumer_ep, &self.query);
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<RgmaTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<Delivery>() {
            for ev in set.handle_delivery(ctx, *d) {
                if let RgmaEvent::Polled(_, n) = ev {
                    self.stats.borrow_mut().received += n as u64;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-subscriber"
    }
}
