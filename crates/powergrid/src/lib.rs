#![warn(missing_docs)]
//! # powergrid — the monitoring workload
//!
//! The paper's driver programs, reproduced: fleets of simulated power
//! generators with realistic telemetry dynamics, created at the paper's
//! stagger (0.5 s Narada / 1 s R-GMA), sleeping a random 10–20 s warm-up,
//! then publishing every 10 s. Payloads match the paper exactly (Narada:
//! 2 int + 5 float + 2 long + 3 double + 4 string in a MapMessage;
//! R-GMA: 4 int + 8 double + 4 char(20) in an SQL INSERT), and the
//! subscriber uses the paper's selector `id<10000`.

pub mod generator;
pub mod gridlog_fleet;
pub mod narada_fleet;
pub mod rgma_fleet;

pub use generator::{GeneratorState, PAPER_SELECTOR, TABLE, TABLE_SQL, TOPIC};
pub use gridlog_fleet::{GridlogFleet, GridlogFleetConfig, GridlogSubscriber};
pub use narada_fleet::{
    FleetStats, FleetStatsHandle, NaradaFleet, NaradaFleetConfig, NaradaSubscriber,
};
pub use rgma_fleet::{RgmaFleet, RgmaFleetConfig, RgmaSubscriber};
