//! Simulated power generators: telemetry state with realistic dynamics
//! and the paper's exact payload shapes.
//!
//! Narada tests: "Two integer, five float, two long, three double and
//! four string values were packaged in a JMS MapMessage".
//! R-GMA tests: "four integer, eight double and four char (length 20)
//! values, which were wrapped in an SQL statement".

use simcore::{SimRng, SimTime};
use wire::{Headers, Message, MessageId, Value};

/// Operating state of one small renewable generator.
#[derive(Debug, Clone)]
pub struct GeneratorState {
    /// Fleet-unique id (the paper's selector filters on `id < 10000`).
    pub id: u32,
    /// Power output, kW (random walk around the rating).
    pub power_kw: f64,
    /// Rated output, kW.
    pub rating_kw: f64,
    /// Grid voltage at the point of connection, V.
    pub voltage_v: f64,
    /// Frequency, Hz.
    pub frequency_hz: f64,
    /// Cumulative energy, kWh.
    pub energy_kwh: f64,
    /// Messages produced so far.
    pub seq: u64,
    /// On-line flag.
    pub online: bool,
}

impl GeneratorState {
    /// New generator with a rating drawn from a realistic small-generator
    /// range (5–2000 kW).
    pub fn new(id: u32, rng: &mut SimRng) -> Self {
        let rating = 5.0 + rng.f64() * 1995.0;
        GeneratorState {
            id,
            power_kw: rating * (0.3 + 0.5 * rng.f64()),
            rating_kw: rating,
            voltage_v: 230.0,
            frequency_hz: 50.0,
            energy_kwh: 0.0,
            seq: 0,
            online: true,
        }
    }

    /// Advance the telemetry by one reporting period.
    pub fn step(&mut self, rng: &mut SimRng, period_secs: f64) {
        // Mean-reverting random walk toward 60 % of rating.
        let target = 0.6 * self.rating_kw;
        let drift = 0.05 * (target - self.power_kw);
        let noise = rng.normal(0.0, 0.02 * self.rating_kw);
        self.power_kw = (self.power_kw + drift + noise).clamp(0.0, self.rating_kw);
        self.voltage_v = (self.voltage_v + rng.normal(0.0, 0.4)).clamp(215.0, 245.0);
        self.frequency_hz = (self.frequency_hz + rng.normal(0.0, 0.01)).clamp(49.5, 50.5);
        self.energy_kwh += self.power_kw * period_secs / 3600.0;
        self.seq += 1;
    }

    /// The Narada test payload: a JMS MapMessage with 2 int + 5 float +
    /// 2 long + 3 double + 4 string values, with the `id` property the
    /// paper's selector (`id<10000`) filters on. `repeat` multiplies the
    /// payload (the "Triple" test used `repeat = 3`).
    pub fn narada_message(&self, msg_id: u64, now: SimTime, repeat: usize) -> Message {
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(16 * repeat);
        for r in 0..repeat {
            let p = |name: &str| {
                if r == 0 {
                    name.to_owned()
                } else {
                    format!("{name}_{r}")
                }
            };
            entries.extend([
                // 2 int
                (p("gen_id"), Value::Int(self.id as i32)),
                (p("status"), Value::Int(i32::from(self.online))),
                // 5 float
                (p("voltage"), Value::Float(self.voltage_v as f32)),
                (p("frequency"), Value::Float(self.frequency_hz as f32)),
                (
                    p("current"),
                    Value::Float((self.power_kw * 1000.0 / self.voltage_v) as f32),
                ),
                (p("temp_c"), Value::Float(35.5)),
                (p("wind_ms"), Value::Float(7.25)),
                // 2 long
                (p("seq"), Value::Long(self.seq as i64)),
                (p("uptime_s"), Value::Long((self.seq * 10) as i64)),
                // 3 double
                (p("power_kw"), Value::Double(self.power_kw)),
                (p("energy_kwh"), Value::Double(self.energy_kwh)),
                (p("rating_kw"), Value::Double(self.rating_kw)),
                // 4 string
                (p("site"), Value::Str(format!("site-{:04}", self.id % 977))),
                (p("operator"), Value::Str("gridcc".into())),
                (p("model"), Value::Str("WT-2000/E".into())),
                (p("fw"), Value::Str("v1.1.3".into())),
            ]);
        }
        Message::map(Headers::new(MessageId(msg_id), TOPIC, now), entries)
            .with_property("id", self.id as i32)
    }

    /// The R-GMA test payload: an SQL INSERT with 4 integer + 8 double +
    /// 4 char(20) values.
    pub fn rgma_insert_sql(&self) -> String {
        format!(
            "INSERT INTO {TABLE} (id, status, seq, uptime, \
             power, energy, rating, voltage, frequency, current, temp, wind, \
             site, operator, model, fw) VALUES \
             ({}, {}, {}, {}, {:.3}, {:.3}, {:.3}, {:.2}, {:.3}, {:.3}, {:.1}, {:.2}, \
             'site-{:04}', 'gridcc', 'WT-2000/E', 'glite-3.0')",
            self.id,
            i32::from(self.online),
            self.seq,
            self.seq * 10,
            self.power_kw,
            self.energy_kwh,
            self.rating_kw,
            self.voltage_v,
            self.frequency_hz,
            self.power_kw * 1000.0 / self.voltage_v,
            35.5,
            7.25,
            self.id % 977,
        )
    }
}

/// Topic used by the Narada tests.
pub const TOPIC: &str = "power.monitor";
/// Table used by the R-GMA tests.
pub const TABLE: &str = "generator";
/// `CREATE TABLE` for the R-GMA payload.
pub const TABLE_SQL: &str = "CREATE TABLE generator (\
     id INTEGER, status INTEGER, seq INTEGER, uptime INTEGER, \
     power DOUBLE PRECISION, energy DOUBLE PRECISION, rating DOUBLE PRECISION, \
     voltage DOUBLE PRECISION, frequency DOUBLE PRECISION, current DOUBLE PRECISION, \
     temp DOUBLE PRECISION, wind DOUBLE PRECISION, \
     site CHAR(20), operator CHAR(20), model CHAR(20), fw CHAR(20))";
/// The selector used in the paper ("did not filter out any data but just
/// to simulate real uses").
pub const PAPER_SELECTOR: &str = "id<10000";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamics_stay_in_range() {
        let mut rng = SimRng::new(1);
        let mut g = GeneratorState::new(7, &mut rng);
        for _ in 0..1000 {
            g.step(&mut rng, 10.0);
            assert!(g.power_kw >= 0.0 && g.power_kw <= g.rating_kw);
            assert!((215.0..=245.0).contains(&g.voltage_v));
            assert!((49.5..=50.5).contains(&g.frequency_hz));
        }
        assert!(g.energy_kwh > 0.0);
        assert_eq!(g.seq, 1000);
    }

    #[test]
    fn narada_payload_shape() {
        let mut rng = SimRng::new(2);
        let g = GeneratorState::new(42, &mut rng);
        let m = g.narada_message(1, SimTime::ZERO, 1);
        let wire::Body::Map(map) = &m.body else {
            panic!("map message")
        };
        let count = |t: wire::ValueType| map.values().filter(|v| v.value_type() == t).count();
        assert_eq!(count(wire::ValueType::Int), 2);
        assert_eq!(count(wire::ValueType::Float), 5);
        assert_eq!(count(wire::ValueType::Long), 2);
        assert_eq!(count(wire::ValueType::Double), 3);
        assert_eq!(count(wire::ValueType::Str), 4);
        assert_eq!(m.property("id"), Some(&Value::Int(42)));
        // The paper's selector matches.
        let sel = jms::Selector::compile(PAPER_SELECTOR).unwrap();
        assert!(sel.matches(&m));
    }

    #[test]
    fn triple_payload_triples_size() {
        let mut rng = SimRng::new(3);
        let g = GeneratorState::new(1, &mut rng);
        let single = g.narada_message(1, SimTime::ZERO, 1).wire_size();
        let triple = g.narada_message(1, SimTime::ZERO, 3).wire_size();
        assert!(triple > 2 * single, "triple {triple} vs single {single}");
        assert!(triple < 4 * single);
    }

    #[test]
    fn rgma_sql_parses_and_conforms() {
        let mut rng = SimRng::new(4);
        let mut g = GeneratorState::new(9, &mut rng);
        g.step(&mut rng, 10.0);
        let create = minisql::parse(TABLE_SQL).unwrap();
        let mut cat = minisql::Catalog::new();
        cat.create(&create).unwrap();
        let stmt = minisql::parse(&g.rgma_insert_sql()).unwrap();
        let minisql::Statement::Insert {
            table,
            columns,
            values,
        } = stmt
        else {
            panic!("INSERT expected")
        };
        assert_eq!(table, TABLE);
        let schema = cat.table(&table).unwrap();
        let row = schema.normalize_insert(&columns, &values).unwrap();
        assert_eq!(row.len(), 16);
        // 4 int + 8 double + 4 char(20), as in the paper.
        let count = |t: wire::ValueType| row.iter().filter(|v| v.value_type() == t).count();
        assert_eq!(count(wire::ValueType::Int), 4);
        assert_eq!(count(wire::ValueType::Double), 8);
        assert_eq!(count(wire::ValueType::Char), 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let make = |seed| {
            let mut rng = SimRng::new(seed);
            let mut g = GeneratorState::new(1, &mut rng);
            for _ in 0..10 {
                g.step(&mut rng, 10.0);
            }
            (g.power_kw, g.voltage_v, g.energy_kwh)
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }
}
