#![warn(missing_docs)]
//! # simslo — data freshness (Age-of-Information) and deadline/SLO plane
//!
//! The planes built so far measure *mechanism* (RTT probes, self-time,
//! hot paths). This one measures the monitoring-level outcome the paper
//! actually asks about: how **stale** is the freshest reading each
//! subscriber holds, and what fraction of readings beat a deadline.
//!
//! * [`SloSpec`] — a declarative per-scenario objective:
//!   `{ deadline, target_fraction }`.
//! * [`SloCollector`] — the kernel service publish/delivery sites report
//!   to. Like [`telemetry::RttCollector`] it stores only raw,
//!   content-keyed records during the run; every derived statistic is a
//!   pure function of the merged record set, so sharded runs summarize
//!   to bit-identical reports.
//! * [`SloReport`] — Age-of-Information sawtooth samples on the vmstat
//!   cadence, windowed delivery-latency percentiles, deadline-miss
//!   counters, compliance, and windowed error-budget burn.
//!
//! ## Sharding model
//!
//! A publish is recorded on the shard that owns the publishing client;
//! a delivery on the shard that owns the subscriber. Records are keyed
//! by the content-derived [`telemetry::ProbeId`] (publish) and
//! `(subscriber lane, probe)` (delivery) — never by event interleaving
//! — so [`SloCollector::merged`] is a commutative keyed union and the
//! canonical `extract_partial`/`merge_results` pipeline applies
//! unchanged. The publish instant additionally rides **out-of-band** on
//! the wire message (the way `simtrace` threads `TraceId` through
//! `wire::Headers`, zero wire bytes); the report cross-checks the
//! carried stamp against the publish record and counts disagreements —
//! any non-zero count means an instrumentation path is buggy.
//!
//! ## Accounting semantics
//!
//! The unit of SLO accounting is the **published reading**. A reading
//! is *on time* when its earliest delivery age (virtual delivery time −
//! virtual publish time, minimized across subscribers) is within the
//! deadline; *late* when delivered only after it; *lost* when never
//! delivered. Deadline misses = late + lost, so a broker crash burns
//! error budget instead of vanishing from a delivered-only denominator.

use simcore::{Context, SimDuration, SimTime};
use std::collections::BTreeMap;
use telemetry::{trim_float, HistogramSummary, LatencyHistogram, ProbeId};

/// A declarative service-level objective for one scenario: the fraction
/// of published readings that must be delivered within the deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Maximum acceptable delivery age (publish → subscriber delivery).
    pub deadline: SimDuration,
    /// Fraction of published readings that must beat the deadline,
    /// in `[0, 1]` (e.g. `0.99`).
    pub target_fraction: f64,
}

impl SloSpec {
    /// An SLO with the given deadline and target fraction.
    pub fn new(deadline: SimDuration, target_fraction: f64) -> SloSpec {
        SloSpec {
            deadline,
            target_fraction: target_fraction.clamp(0.0, 1.0),
        }
    }

    /// The paper's §I soft real-time budget: 99 % of readings within 5 s.
    pub fn grid_default() -> SloSpec {
        SloSpec::new(SimDuration::from_secs(5), 0.99)
    }
}

/// Window length for burn / windowed-percentile accounting: three
/// publish periods of the paper workload, so every generator
/// contributes a few readings per window.
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(30);

/// The sawtooth sampling cadence — the existing vmstat cadence, so the
/// staleness series lines up with the CPU/memory series sample for
/// sample.
pub const SAMPLE_CADENCE: SimDuration = SimDuration::from_secs(1);

#[derive(Debug, Clone)]
struct PublishRec {
    topic: String,
    at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct DeliveryRec {
    at: SimTime,
    /// The out-of-band publish stamp carried on the wire message, when
    /// the contender could thread it. Cross-checked against the publish
    /// record at report time.
    carried: Option<SimTime>,
}

/// The freshness measurement service: publish and delivery sites report
/// instants; the experiment merge computes the report at end of run.
///
/// Raw records only — no derived state — so per-shard collectors union
/// into exactly the collector a serial run would have built.
#[derive(Debug, Clone, Default)]
pub struct SloCollector {
    /// Keyed by probe id (content-derived, shard-invariant).
    publishes: BTreeMap<u64, PublishRec>,
    /// Keyed by `(subscriber lane, probe id)`: the same reading delivered
    /// to two subscribers is two records; a duplicate redelivery to the
    /// same subscriber keeps the first instant.
    deliveries: BTreeMap<(u32, u64), DeliveryRec>,
}

impl SloCollector {
    /// Empty collector.
    pub fn new() -> SloCollector {
        SloCollector::default()
    }

    /// The application published a reading on `topic`. First write wins
    /// (publish-side retries reuse the probe id).
    pub fn record_publish(&mut self, probe: ProbeId, topic: &str, at: SimTime) {
        self.publishes.entry(probe.0).or_insert_with(|| PublishRec {
            topic: topic.to_owned(),
            at,
        });
    }

    /// The subscriber application on kernel lane `sub_lane` received the
    /// reading. Duplicate deliveries (UDP retransmit, log replay) keep
    /// the earliest instant, mirroring `RttCollector::after_receiving`.
    pub fn record_delivery(
        &mut self,
        probe: ProbeId,
        sub_lane: u32,
        at: SimTime,
        carried: Option<SimTime>,
    ) {
        let e = self
            .deliveries
            .entry((sub_lane, probe.0))
            .or_insert(DeliveryRec { at, carried });
        if at < e.at {
            e.at = at;
            e.carried = carried;
        }
    }

    /// Readings published so far.
    pub fn published(&self) -> u64 {
        self.publishes.len() as u64
    }

    /// Deliveries recorded so far (unique per subscriber × reading).
    pub fn delivered(&self) -> u64 {
        self.deliveries.len() as u64
    }

    /// Union per-shard collectors into the whole-run collector:
    /// publishes first-wins by probe, deliveries keep the earliest
    /// instant per `(subscriber, probe)`. Merged-of-one is the identity.
    pub fn merged(parts: impl IntoIterator<Item = SloCollector>) -> SloCollector {
        let mut out = SloCollector::new();
        for part in parts {
            for (id, rec) in part.publishes {
                let e = out.publishes.entry(id).or_insert_with(|| rec.clone());
                if rec.at < e.at {
                    *e = rec;
                }
            }
            for (key, rec) in part.deliveries {
                let e = out.deliveries.entry(key).or_insert(rec);
                if rec.at < e.at {
                    *e = rec;
                }
            }
        }
        out
    }

    /// Windowed delivery-latency histograms: delivery ages (µs) bucketed
    /// by the delivery-time window `floor(delivered_at / window)`.
    /// Windows built from per-shard collectors and merged window-wise
    /// with [`LatencyHistogram::merge`] equal the serial windows — each
    /// delivery record lives on exactly one shard. Deliveries whose
    /// publish half sits on another shard are skipped until the merge
    /// restores it.
    pub fn windowed_histograms(&self, window: SimDuration) -> BTreeMap<u64, LatencyHistogram> {
        let w = window.as_micros().max(1);
        let mut out: BTreeMap<u64, LatencyHistogram> = BTreeMap::new();
        for ((_lane, probe), d) in &self.deliveries {
            let Some(p) = self.publishes.get(probe) else {
                continue;
            };
            let age = d.at.saturating_since(p.at).as_micros();
            out.entry(d.at.as_micros() / w).or_default().record(age);
        }
        out
    }

    /// Compute the end-of-run report. A pure function of the record set
    /// (iteration in key order, no clocks, no RNG): merged shard
    /// collectors produce bit-identical reports.
    ///
    /// `horizon` bounds the sawtooth sampling (use the run's final
    /// virtual time); `cadence` is the sample period
    /// ([`SAMPLE_CADENCE`] in the experiment driver); `window` the burn
    /// window ([`DEFAULT_WINDOW`]).
    pub fn report(
        &self,
        spec: &SloSpec,
        horizon: SimTime,
        cadence: SimDuration,
        window: SimDuration,
    ) -> SloReport {
        let deadline = spec.deadline;
        let w_us = window.as_micros().max(1);

        // Per-reading outcome: earliest delivery age across subscribers.
        let mut first_delivery: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut stamp_disagreements = 0u64;
        let mut age_hist = LatencyHistogram::new();
        for ((_lane, probe), d) in &self.deliveries {
            let Some(p) = self.publishes.get(probe) else {
                continue;
            };
            if let Some(carried) = d.carried {
                if carried != p.at {
                    stamp_disagreements += 1;
                }
            }
            age_hist.record(d.at.saturating_since(p.at).as_micros());
            let e = first_delivery.entry(*probe).or_insert(d.at);
            *e = (*e).min(d.at);
        }

        let mut on_time = 0u64;
        let mut late = 0u64;
        let mut lost = 0u64;
        // Burn windows keyed by the *publish* instant: a reading that a
        // crash window swallowed burns the budget of the window it was
        // published in.
        let mut burn_windows: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // (published, missed)
        for (probe, p) in &self.publishes {
            let slot = burn_windows
                .entry(p.at.as_micros() / w_us)
                .or_insert((0, 0));
            slot.0 += 1;
            match first_delivery.get(probe) {
                Some(&rx) if rx.saturating_since(p.at) <= deadline => on_time += 1,
                Some(_) => {
                    late += 1;
                    slot.1 += 1;
                }
                None => {
                    lost += 1;
                    slot.1 += 1;
                }
            }
        }
        let published = self.publishes.len() as u64;
        let compliance = if published == 0 {
            1.0
        } else {
            on_time as f64 / published as f64
        };
        let budget = (1.0 - spec.target_fraction).max(1e-9);

        // Assemble windows: burn (publish-keyed) + delivery percentiles
        // (delivery-keyed) on the same window grid.
        let delivery_windows = self.windowed_histograms(window);
        let mut keys: Vec<u64> = burn_windows
            .keys()
            .chain(delivery_windows.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut worst_burn = 0.0f64;
        let windows: Vec<SloWindow> = keys
            .into_iter()
            .map(|k| {
                let (published, missed) = burn_windows.get(&k).copied().unwrap_or((0, 0));
                let burn = if published == 0 {
                    0.0
                } else {
                    (missed as f64 / published as f64) / budget
                };
                worst_burn = worst_burn.max(burn);
                let hist = delivery_windows.get(&k);
                SloWindow {
                    start: SimTime::from_micros(k.saturating_mul(w_us)),
                    published,
                    missed,
                    burn,
                    delivered: hist.map_or(0, LatencyHistogram::count),
                    age_us: hist.and_then(LatencyHistogram::summary),
                }
            })
            .collect();

        SloReport {
            spec: spec.clone(),
            published,
            delivered: self.deliveries.len() as u64,
            on_time,
            late,
            lost,
            compliance,
            compliant: compliance >= spec.target_fraction,
            age_us: age_hist.summary(),
            aoi: self.sample_aoi(horizon, cadence),
            windows,
            worst_burn,
            stamp_disagreements,
        }
    }

    /// Group deliveries into per-`(subscriber lane, topic)` streams of
    /// `(delivered_at, published_at)`, sorted by delivery time — the raw
    /// material for the sawtooth and the per-subscriber gauge series.
    fn pair_streams(&self) -> BTreeMap<(u32, &str), Vec<(SimTime, SimTime)>> {
        let mut pairs: BTreeMap<(u32, &str), Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for ((lane, probe), d) in &self.deliveries {
            let Some(p) = self.publishes.get(probe) else {
                continue;
            };
            pairs
                .entry((*lane, p.topic.as_str()))
                .or_default()
                .push((d.at, p.at));
        }
        for stream in pairs.values_mut() {
            stream.sort_unstable();
        }
        pairs
    }

    /// Sample the Age-of-Information sawtooth on `cadence` up to
    /// `horizon`. At instant `t` a `(subscriber, topic)` pair's age is
    /// `t − max{publish_at : delivered_at ≤ t}` — the staleness of the
    /// freshest reading the subscriber holds. Pairs that have not yet
    /// received anything are excluded (age undefined). The series
    /// aggregates mean and peak across pairs; accumulation order is the
    /// `(lane, topic)` key order, never event interleaving.
    fn sample_aoi(&self, horizon: SimTime, cadence: SimDuration) -> Vec<AoiSample> {
        let step = cadence.as_micros().max(1);
        let n = (horizon.as_micros() / step) as usize;
        if n == 0 {
            return Vec::new();
        }
        let mut sum = vec![0.0f64; n];
        let mut peak = vec![0.0f64; n];
        let mut live = vec![0u64; n];
        for stream in self.pair_streams().values() {
            let mut i = 0usize;
            let mut freshest: Option<SimTime> = None;
            for s in 0..n {
                let t = SimTime::from_micros((s as u64 + 1) * step);
                while i < stream.len() && stream[i].0 <= t {
                    let pub_at = stream[i].1;
                    freshest = Some(freshest.map_or(pub_at, |f| f.max(pub_at)));
                    i += 1;
                }
                if let Some(f) = freshest {
                    let age = t.saturating_since(f).as_millis_f64();
                    sum[s] += age;
                    peak[s] = peak[s].max(age);
                    live[s] += 1;
                }
            }
        }
        (0..n)
            .map(|s| AoiSample {
                at: SimTime::from_micros((s as u64 + 1) * step),
                mean_ms: if live[s] == 0 {
                    0.0
                } else {
                    sum[s] / live[s] as f64
                },
                peak_ms: peak[s],
                pairs: live[s],
            })
            .collect()
    }

    /// Derived metric series for the `MetricsRegistry` plane, sampled on
    /// `cadence`: aggregate + per-subscriber `freshness_age_ms` gauges
    /// (a subscriber's gauge is its stalest topic's age) and cumulative
    /// `deadline_miss_total` counters (late deliveries, attributed to
    /// the subscriber that received them late). Spliced into the metrics
    /// op log by the experiment merge exactly like `probes_in_flight`.
    pub fn metric_series(
        &self,
        deadline: SimDuration,
        horizon: SimTime,
        cadence: SimDuration,
    ) -> Vec<(String, Vec<(SimTime, f64)>)> {
        let step = cadence.as_micros().max(1);
        let n = (horizon.as_micros() / step) as usize;
        if n == 0 {
            return Vec::new();
        }
        let ts = |s: usize| SimTime::from_micros((s as u64 + 1) * step);
        // Per-lane peak age and cumulative late-delivery counts.
        let mut lane_age: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        let mut lane_miss: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for ((lane, _topic), stream) in self.pair_streams() {
            let age = lane_age.entry(lane).or_insert_with(|| vec![0.0; n]);
            let miss = lane_miss.entry(lane).or_insert_with(|| vec![0.0; n]);
            let mut i = 0usize;
            let mut freshest: Option<SimTime> = None;
            let mut late_so_far = 0u64;
            for s in 0..n {
                let t = ts(s);
                while i < stream.len() && stream[i].0 <= t {
                    let (rx, pub_at) = stream[i];
                    freshest = Some(freshest.map_or(pub_at, |f| f.max(pub_at)));
                    if rx.saturating_since(pub_at) > deadline {
                        late_so_far += 1;
                    }
                    i += 1;
                }
                if let Some(f) = freshest {
                    age[s] = age[s].max(t.saturating_since(f).as_millis_f64());
                }
                miss[s] += late_so_far as f64;
            }
        }
        let mut out: Vec<(String, Vec<(SimTime, f64)>)> = Vec::new();
        let series = |vals: &[f64]| -> Vec<(SimTime, f64)> {
            vals.iter().enumerate().map(|(s, &v)| (ts(s), v)).collect()
        };
        let mut total_miss = vec![0.0f64; n];
        let mut peak_age = vec![0.0f64; n];
        for (lane, vals) in &lane_age {
            for s in 0..n {
                peak_age[s] = peak_age[s].max(vals[s]);
            }
            out.push((format!("freshness_age_ms/lane{lane}"), series(vals)));
        }
        for (lane, vals) in &lane_miss {
            for s in 0..n {
                total_miss[s] += vals[s];
            }
            out.push((format!("deadline_miss_total/lane{lane}"), series(vals)));
        }
        out.push(("freshness_age_ms/peak".into(), series(&peak_age)));
        out.push(("deadline_miss_total".into(), series(&total_miss)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// One sample of the aggregated Age-of-Information sawtooth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AoiSample {
    /// Sample instant (multiples of the cadence).
    pub at: SimTime,
    /// Mean staleness across live `(subscriber, topic)` pairs, ms.
    pub mean_ms: f64,
    /// Worst staleness across live pairs, ms.
    pub peak_ms: f64,
    /// Pairs that had received at least one reading by this instant.
    pub pairs: u64,
}

/// One burn/percentile window of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindow {
    /// Window start (multiples of the window length).
    pub start: SimTime,
    /// Readings published in this window.
    pub published: u64,
    /// Of those, readings that missed the deadline (late or lost).
    pub missed: u64,
    /// Error-budget burn: window miss fraction ÷ (1 − target). 1.0
    /// means this window consumed its budget exactly; >1 overspent.
    pub burn: f64,
    /// Deliveries landing in this window (by delivery time).
    pub delivered: u64,
    /// Delivery-age distribution of those deliveries, µs.
    pub age_us: Option<HistogramSummary>,
}

/// End-of-run freshness/SLO report for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The objective this report was evaluated against.
    pub spec: SloSpec,
    /// Readings published.
    pub published: u64,
    /// Deliveries (unique per subscriber × reading).
    pub delivered: u64,
    /// Readings whose earliest delivery beat the deadline.
    pub on_time: u64,
    /// Readings delivered only after the deadline.
    pub late: u64,
    /// Readings never delivered.
    pub lost: u64,
    /// `on_time / published` (1.0 when nothing was published).
    pub compliance: f64,
    /// `compliance >= target_fraction`.
    pub compliant: bool,
    /// Whole-run delivery-age distribution, µs.
    pub age_us: Option<HistogramSummary>,
    /// Aggregated AoI sawtooth samples on the vmstat cadence.
    pub aoi: Vec<AoiSample>,
    /// Burn/percentile windows.
    pub windows: Vec<SloWindow>,
    /// The worst single-window burn (the fault-campaign headline).
    pub worst_burn: f64,
    /// Carried out-of-band stamps that disagreed with the publish
    /// record. Always 0 unless an instrumentation path is buggy.
    pub stamp_disagreements: u64,
}

impl SloReport {
    /// Deadline misses: late + lost readings.
    pub fn deadline_misses(&self) -> u64 {
        self.late + self.lost
    }

    /// Render `slo.csv`: `t_s,metric,value` rows (the metrics-CSV
    /// shape), AoI sawtooth first, then the window series. Deterministic
    /// byte-for-byte for a given report.
    pub fn csv(&self) -> String {
        let mut out = String::from("t_s,metric,value\n");
        use std::fmt::Write as _;
        for s in &self.aoi {
            let t = trim_float(s.at.as_secs_f64());
            let _ = writeln!(out, "{t},aoi_mean_ms,{}", trim_float(s.mean_ms));
            let _ = writeln!(out, "{t},aoi_peak_ms,{}", trim_float(s.peak_ms));
        }
        for w in &self.windows {
            let t = trim_float(w.start.as_secs_f64());
            let _ = writeln!(out, "{t},window_published,{}", w.published);
            let _ = writeln!(out, "{t},window_missed,{}", w.missed);
            let _ = writeln!(out, "{t},window_burn,{}", trim_float(w.burn));
            let _ = writeln!(out, "{t},window_delivered,{}", w.delivered);
            if let Some(a) = &w.age_us {
                let _ = writeln!(
                    out,
                    "{t},window_age_p50_ms,{}",
                    trim_float(a.p50 as f64 / 1000.0)
                );
                let _ = writeln!(
                    out,
                    "{t},window_age_p99_ms,{}",
                    trim_float(a.p99 as f64 / 1000.0)
                );
            }
        }
        out
    }

    /// One row of the per-contender compliance table; pair with
    /// [`SloReport::table_columns`].
    pub fn table_row(&self, name: &str) -> Vec<String> {
        let (p50, p99) = self
            .age_us
            .map(|a| (a.p50 as f64 / 1000.0, a.p99 as f64 / 1000.0))
            .unwrap_or((0.0, 0.0));
        vec![
            name.to_owned(),
            format!("{}", self.spec.deadline),
            format!("{:.1}%", self.spec.target_fraction * 100.0),
            self.published.to_string(),
            self.on_time.to_string(),
            self.late.to_string(),
            self.lost.to_string(),
            format!("{:.2}%", self.compliance * 100.0),
            trim_float(p50),
            trim_float(p99),
            trim_float(self.worst_burn),
            if self.compliant { "PASS" } else { "FAIL" }.to_owned(),
        ]
    }

    /// Column headers matching [`SloReport::table_row`].
    pub fn table_columns() -> &'static [&'static str] {
        &[
            "scenario",
            "deadline",
            "target",
            "published",
            "on-time",
            "late",
            "lost",
            "compliance",
            "age p50 ms",
            "age p99 ms",
            "worst burn",
            "slo",
        ]
    }
}

/// Run `f` against the SLO collector if one is registered; a no-op
/// otherwise — the off-by-default discipline shared with `simtrace` and
/// `simprof`: when the plane is off, the only cost at an
/// instrumentation site is one failed type-map probe.
#[inline]
pub fn with_slo(ctx: &mut Context<'_>, f: impl FnOnce(&mut SloCollector, SimTime)) {
    let now = ctx.now();
    if let Some(slo) = ctx.try_service_mut::<SloCollector>() {
        f(slo, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn probe(lane: u32, seq: u32) -> ProbeId {
        ProbeId::compose(lane, seq)
    }

    #[test]
    fn on_time_late_lost_classification() {
        let mut c = SloCollector::new();
        let spec = SloSpec::new(SimDuration::from_millis(100), 0.9);
        // On time: delivered at +50 ms.
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_delivery(probe(1, 0), 7, t(50), Some(t(0)));
        // Late: delivered at +500 ms.
        c.record_publish(probe(1, 1), "a", t(1000));
        c.record_delivery(probe(1, 1), 7, t(1500), Some(t(1000)));
        // Lost: never delivered.
        c.record_publish(probe(1, 2), "a", t(2000));
        let r = c.report(
            &spec,
            t(3000),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!((r.published, r.delivered), (3, 2));
        assert_eq!((r.on_time, r.late, r.lost), (1, 1, 1));
        assert_eq!(r.deadline_misses(), 2);
        assert!((r.compliance - 1.0 / 3.0).abs() < 1e-12);
        assert!(!r.compliant);
        assert_eq!(r.stamp_disagreements, 0);
    }

    #[test]
    fn earliest_delivery_wins_and_duplicates_collapse() {
        let mut c = SloCollector::new();
        let spec = SloSpec::new(SimDuration::from_millis(100), 0.5);
        c.record_publish(probe(1, 0), "a", t(0));
        // Subscriber 7 gets it late, subscriber 8 on time: the reading
        // is on time (earliest delivery), and sub 7's copy still counts
        // as one delivery even if redelivered.
        c.record_delivery(probe(1, 0), 7, t(400), Some(t(0)));
        c.record_delivery(probe(1, 0), 7, t(900), Some(t(0))); // dup, ignored
        c.record_delivery(probe(1, 0), 8, t(60), Some(t(0)));
        let r = c.report(
            &spec,
            t(1000),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(r.delivered, 2);
        assert_eq!(r.on_time, 1);
        assert!(r.compliant);
    }

    #[test]
    fn aoi_sawtooth_tracks_freshest_reading() {
        let mut c = SloCollector::new();
        // One pair: publishes at 0 s and 4 s, delivered at 1 s and 5 s.
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_delivery(probe(1, 0), 7, t(1000), None);
        c.record_publish(probe(1, 1), "a", t(4000));
        c.record_delivery(probe(1, 1), 7, t(5000), None);
        let spec = SloSpec::grid_default();
        let r = c.report(&spec, t(6000), SimDuration::from_secs(1), DEFAULT_WINDOW);
        assert_eq!(r.aoi.len(), 6);
        // t=1s: freshest published at 0 → age 1000 ms; grows linearly.
        assert_eq!(r.aoi[0].peak_ms, 1000.0);
        assert_eq!(r.aoi[1].peak_ms, 2000.0);
        assert_eq!(r.aoi[3].peak_ms, 4000.0);
        // t=5s: second reading (published 4 s) arrived → age resets to 1 s.
        assert_eq!(r.aoi[4].peak_ms, 1000.0);
        assert_eq!(r.aoi[4].pairs, 1);
        assert_eq!(r.aoi[0].mean_ms, r.aoi[0].peak_ms, "single pair");
    }

    #[test]
    fn out_of_order_delivery_keeps_freshest_publish() {
        let mut c = SloCollector::new();
        // The older reading (published 0 s) arrives *after* the newer
        // one (published 2 s): age must track the newer publish.
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_publish(probe(1, 1), "a", t(2000));
        c.record_delivery(probe(1, 1), 7, t(2500), None);
        c.record_delivery(probe(1, 0), 7, t(3500), None);
        let r = c.report(
            &SloSpec::grid_default(),
            t(4000),
            SimDuration::from_secs(1),
            DEFAULT_WINDOW,
        );
        // t=4s: freshest is still the 2 s publish → age 2000 ms.
        assert_eq!(r.aoi[3].peak_ms, 2000.0);
    }

    #[test]
    fn burn_windows_attribute_loss_to_publish_window() {
        let mut c = SloCollector::new();
        let spec = SloSpec::new(SimDuration::from_millis(100), 0.9);
        // Window 0 (0–10 s): 10 readings, all on time.
        for i in 0..10 {
            c.record_publish(probe(1, i), "a", t(u64::from(i) * 100));
            c.record_delivery(probe(1, i), 7, t(u64::from(i) * 100 + 10), None);
        }
        // Window 1 (10–20 s): 10 readings, 5 lost in a crash.
        for i in 0..10 {
            c.record_publish(probe(2, i), "a", t(10_000 + u64::from(i) * 100));
            if i < 5 {
                c.record_delivery(probe(2, i), 7, t(10_000 + u64::from(i) * 100 + 10), None);
            }
        }
        let r = c.report(
            &spec,
            t(20_000),
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
        );
        let w: Vec<_> = r.windows.iter().filter(|w| w.published > 0).collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].missed, 0);
        assert_eq!(w[0].burn, 0.0);
        assert_eq!(w[1].missed, 5);
        // Miss fraction 0.5 against a 0.1 budget → burn 5×.
        assert!((w[1].burn - 5.0).abs() < 1e-9);
        assert!((r.worst_burn - 5.0).abs() < 1e-9);
    }

    #[test]
    fn carried_stamp_cross_check_counts_disagreements() {
        let mut c = SloCollector::new();
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_delivery(probe(1, 0), 7, t(50), Some(t(1))); // wrong stamp
        let r = c.report(
            &SloSpec::grid_default(),
            t(1000),
            SimDuration::from_secs(1),
            DEFAULT_WINDOW,
        );
        assert_eq!(r.stamp_disagreements, 1);
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let mut c = SloCollector::new();
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_delivery(probe(1, 0), 7, t(50), None);
        let spec = SloSpec::grid_default();
        let r = c.report(
            &spec,
            t(3000),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        let csv = r.csv();
        assert!(csv.starts_with("t_s,metric,value\n"));
        assert!(csv.contains("aoi_mean_ms"));
        assert!(csv.contains("window_burn"));
        assert_eq!(csv, r.csv(), "rendering is a pure function");
        // Table row/columns stay in lockstep.
        assert_eq!(r.table_row("x").len(), SloReport::table_columns().len());
    }

    #[test]
    fn metric_series_expose_lanes_and_totals() {
        let mut c = SloCollector::new();
        let deadline = SimDuration::from_millis(100);
        c.record_publish(probe(1, 0), "a", t(0));
        c.record_delivery(probe(1, 0), 7, t(50), None); // on time
        c.record_publish(probe(1, 1), "b", t(0));
        c.record_delivery(probe(1, 1), 9, t(600), None); // late
        let series = c.metric_series(deadline, t(2000), SimDuration::from_secs(1));
        let names: Vec<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "deadline_miss_total",
                "deadline_miss_total/lane7",
                "deadline_miss_total/lane9",
                "freshness_age_ms/lane7",
                "freshness_age_ms/lane9",
                "freshness_age_ms/peak",
            ]
        );
        let total = &series[0].1;
        assert_eq!(total.len(), 2);
        assert_eq!(total[1].1, 1.0, "one late delivery in total");
        // Gauge grows with staleness: lane 7's age at 1 s then 2 s.
        let lane7 = &series[3].1;
        assert_eq!(lane7[0].1, 1000.0);
        assert_eq!(lane7[1].1, 2000.0);
    }

    #[test]
    fn empty_collector_reports_cleanly() {
        let c = SloCollector::new();
        let r = c.report(
            &SloSpec::grid_default(),
            t(1000),
            SimDuration::from_secs(1),
            DEFAULT_WINDOW,
        );
        assert_eq!((r.published, r.delivered), (0, 0));
        assert_eq!(r.compliance, 1.0);
        assert!(r.compliant);
        assert!(r.age_us.is_none());
        assert_eq!(r.aoi.len(), 1);
        assert_eq!(r.aoi[0].pairs, 0);
        assert!(r.windows.is_empty());
    }

    /// Reference partitioning property: splitting the records across k
    /// collectors (publish half and delivery half on *different*
    /// collectors) and merging reproduces the serial report bit for bit,
    /// and the windowed histograms merge window-wise to the serial ones.
    fn split_merge_case(k: usize, events: &[(u32, u32, u64, u64, bool)]) {
        let spec = SloSpec::new(SimDuration::from_millis(250), 0.9);
        let mut serial = SloCollector::new();
        let mut parts: Vec<SloCollector> = (0..k).map(|_| SloCollector::new()).collect();
        for (i, &(lane, seq, pub_ms, age_ms, delivered)) in events.iter().enumerate() {
            let p = probe(lane, seq);
            let topic = format!("topic{}", lane % 3);
            serial.record_publish(p, &topic, t(pub_ms));
            parts[i % k].record_publish(p, &topic, t(pub_ms));
            if delivered {
                let sub = (lane % 2) + 100;
                serial.record_delivery(p, sub, t(pub_ms + age_ms), Some(t(pub_ms)));
                // Delivery recorded on a *different* shard than the publish.
                parts[(i + 1) % k].record_delivery(p, sub, t(pub_ms + age_ms), Some(t(pub_ms)));
            }
        }
        let merged = SloCollector::merged(parts.clone());
        let horizon = t(30_000);
        let cadence = SimDuration::from_secs(1);
        let sr = serial.report(&spec, horizon, cadence, DEFAULT_WINDOW);
        let mr = merged.report(&spec, horizon, cadence, DEFAULT_WINDOW);
        assert_eq!(sr, mr, "merged report equals serial");
        // Window-wise histogram merge equals the serial windows.
        let swin = serial.windowed_histograms(DEFAULT_WINDOW);
        let mut merged_win: BTreeMap<u64, LatencyHistogram> = BTreeMap::new();
        for part in &parts {
            // Per-shard windows see only locally-complete records; give
            // each part the publish map so the property isolates the
            // *window merge* (the pipeline merges collectors first).
            let mut with_pubs = part.clone();
            with_pubs.publishes = merged.publishes.clone();
            for (w, h) in with_pubs.windowed_histograms(DEFAULT_WINDOW) {
                merged_win.entry(w).or_default().merge(&h);
            }
        }
        assert_eq!(swin.len(), merged_win.len());
        for (w, h) in &swin {
            let m = &merged_win[w];
            assert_eq!(h.count(), m.count());
            // Bucketed quantiles are exactly order-invariant; the exact
            // Welford moments merge associatively (equal up to float
            // round-off, not bit order).
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), m.quantile(q), "window {w} q{q}");
            }
            assert!((h.mean() - m.mean()).abs() <= 1e-6 * h.mean().abs().max(1.0));
        }
    }

    #[test]
    fn merge_reassembles_split_records() {
        let events: Vec<(u32, u32, u64, u64, bool)> = (0..40u32)
            .map(|i| {
                (
                    i % 4,
                    i / 4,
                    u64::from(i) * 700,
                    u64::from(i % 7) * 90,
                    i % 5 != 0,
                )
            })
            .collect();
        for k in [2usize, 4] {
            split_merge_case(k, &events);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn windowed_merges_equal_serial_windows(
            events in proptest::collection::vec(
                (0u32..6, 0u32..64, 0u64..25_000, 0u64..2_000, any::<bool>()),
                1..80,
            ),
            k in prop_oneof![Just(2usize), Just(4)],
        ) {
            // Dedup (lane, seq) so each probe publishes once.
            let mut seen = std::collections::HashSet::new();
            let events: Vec<_> = events
                .into_iter()
                .filter(|e| seen.insert((e.0, e.1)))
                .collect();
            split_merge_case(k, &events);
        }
    }
}
