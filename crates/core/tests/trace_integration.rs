//! End-to-end tests for the `simtrace` lifecycle-tracing subsystem:
//! cross-checking the trace against `RttCollector`, verifying the RTT
//! decomposition telescopes exactly, and pinning down determinism
//! (same-seed runs must export byte-identical traces).

use gridmon_core::{run_experiment, ExperimentSpec, SystemUnderTest};

fn traced_spec(name: &str, system: SystemUnderTest, generators: usize) -> ExperimentSpec {
    ExperimentSpec::paper_default(name, system, generators)
        .scaled(4)
        .traced()
}

#[test]
fn untraced_run_produces_no_trace() {
    let spec =
        ExperimentSpec::paper_default("untraced", SystemUnderTest::NaradaSingle, 4).scaled(2);
    let r = run_experiment(&spec);
    assert!(r.trace.is_none(), "tracing must be off by default");
}

#[test]
fn traced_narada_run_cross_checks_clean() {
    let r = run_experiment(&traced_spec("tr-narada", SystemUnderTest::NaradaSingle, 6));
    let trace = r.trace.expect("traced spec yields artifacts");
    assert!(
        trace.disagreements.is_empty(),
        "trace vs RttCollector disagreements: {:?}",
        trace.disagreements
    );
    assert!(trace.summary.total_events > 0);
    assert!(!trace.summary.probes.is_empty());
    assert!(!trace.jsonl.is_empty());
    assert!(trace.chrome.starts_with('{'));
}

#[test]
fn traced_rgma_run_cross_checks_clean() {
    let r = run_experiment(&traced_spec("tr-rgma", SystemUnderTest::RgmaSingle, 6));
    let trace = r.trace.expect("traced spec yields artifacts");
    assert!(
        trace.disagreements.is_empty(),
        "trace vs RttCollector disagreements: {:?}",
        trace.disagreements
    );
    assert!(!trace.summary.probes.is_empty());
}

#[test]
fn trace_rtt_decomposition_telescopes_per_probe() {
    // For every completed probe the reconstructed phases must satisfy
    // RTT = PRT + PT + SRT *exactly* — these are integer microsecond
    // instants, not floats, so there is no tolerance.
    for system in [SystemUnderTest::NaradaSingle, SystemUnderTest::RgmaSingle] {
        let r = run_experiment(&traced_spec("tr-decomp", system, 4));
        let trace = r.trace.expect("traced");
        let mut complete = 0;
        for (id, probe) in &trace.summary.probes {
            if !probe.complete() {
                continue;
            }
            complete += 1;
            let (prt, pt, srt, rtt) = (
                probe.prt().unwrap(),
                probe.pt().unwrap(),
                probe.srt().unwrap(),
                probe.rtt().unwrap(),
            );
            assert_eq!(
                prt + pt + srt,
                rtt,
                "probe {id:?}: {prt} + {pt} + {srt} != {rtt}"
            );
        }
        assert!(complete > 0, "at least one probe completes end to end");
    }
}

#[test]
fn trace_covers_every_delivered_probe() {
    let r = run_experiment(&traced_spec(
        "tr-coverage",
        SystemUnderTest::NaradaSingle,
        4,
    ));
    let trace = r.trace.expect("traced");
    assert_eq!(trace.summary.evicted_events, 0, "ring must not wrap here");
    // Every probe the telemetry says was sent must appear in the trace
    // with a publish-begin instant. Probe ids are content-derived
    // (lane, seq) pairs — not dense — so coverage is checked by count:
    // the trace only ever learns a probe id from a publish event, so
    // begin-count == sent-count ⇔ every sent probe is traced.
    let with_begin = trace
        .summary
        .probes
        .values()
        .filter(|p| p.publish_begin.is_some())
        .count() as u64;
    assert_eq!(
        with_begin, r.summary.sent,
        "every sent probe must appear in the trace with a publish begin"
    );
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let spec = traced_spec("tr-det", SystemUnderTest::NaradaSingle, 6);
    let a = run_experiment(&spec).trace.expect("traced");
    let b = run_experiment(&spec).trace.expect("traced");
    assert_eq!(a.jsonl, b.jsonl, "JSONL export must be deterministic");
    assert_eq!(a.chrome, b.chrome, "Chrome export must be deterministic");
}

#[test]
fn different_seed_traces_differ() {
    let spec = traced_spec("tr-seeds", SystemUnderTest::NaradaSingle, 6);
    let mut other = spec.clone();
    other.seed += 1;
    let a = run_experiment(&spec).trace.expect("traced");
    let b = run_experiment(&other).trace.expect("traced");
    assert_ne!(
        a.jsonl, b.jsonl,
        "different seeds must perturb event timing"
    );
}
