//! The scenario catalogue: one spec set per table/figure of the paper.
//!
//! Every function takes a `msgs_per_generator` scale: `180` reproduces
//! the paper's 30-minute runs; smaller values exercise identical
//! mechanisms for tests and criterion benches.

use crate::experiment::{ExperimentSpec, SystemUnderTest};
use jms::AckMode;
use rgma::RgmaConfig;
use simcore::SimDuration;
use simnet::Transport;

/// The paper's full scale (30 min at one message per 10 s).
pub const FULL_SCALE: u32 = 180;

/// Table II / fig 3 / fig 4: the six comparison tests at 800 generators
/// (80 for test 6 at 10× rate; test 5 uses triple payload at 1/3 rate).
pub fn table2_specs(msgs: u32) -> Vec<ExperimentSpec> {
    let base = |name: &str| {
        ExperimentSpec::paper_default(format!("table2/{name}"), SystemUnderTest::NaradaSingle, 800)
            .scaled(msgs)
    };
    let mut specs = Vec::new();
    // Test 1: UDP, AUTO_ACKNOWLEDGE.
    let mut udp = base("UDP");
    udp.transport = Transport::Udp;
    specs.push(udp);
    // Test 2: UDP, CLIENT_ACKNOWLEDGE.
    let mut udp_cli = base("UDP CLI");
    udp_cli.transport = Transport::Udp;
    udp_cli.ack_mode = AckMode::Client;
    specs.push(udp_cli);
    // Test 3: NIO.
    let mut nio = base("NIO");
    nio.transport = Transport::Nio;
    specs.push(nio);
    // Test 4: TCP.
    specs.push(base("TCP"));
    // Test 5: triple payload at one third the rate (same bytes total).
    let mut triple = base("Triple");
    triple.payload_repeat = 3;
    triple.publish_interval = SimDuration::from_secs(30);
    triple.msgs_per_generator = msgs.div_ceil(3).max(1);
    specs.push(triple);
    // Test 6: 80 connections at 10× the rate (same messages total).
    let mut eighty = base("80");
    eighty.generators = 80;
    eighty.publish_interval = SimDuration::from_secs(1);
    eighty.msgs_per_generator = msgs * 10;
    specs.push(eighty);
    specs
}

/// Figs 6–8: single-broker scalability (500–3000 connections, plus the
/// 4000-connection attempt the paper reports as refused).
pub fn narada_single_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [500usize, 1000, 2000, 3000]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("narada/single/{n}"),
                SystemUnderTest::NaradaSingle,
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// The paper's failed attempt: 4000 connections on one broker.
pub fn narada_single_4000(msgs: u32) -> ExperimentSpec {
    ExperimentSpec::paper_default("narada/single/4000", SystemUnderTest::NaradaSingle, 4000)
        .scaled(msgs)
}

/// Figs 6, 7, 9: Distributed Broker Network (4 brokers) at 2000–4000.
pub fn narada_dbn_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [2000usize, 3000, 4000]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("narada/dbn/{n}"),
                SystemUnderTest::NaradaDbn { brokers: 3 },
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// Fig 10: Primary + Secondary Producer chain at 50–200 connections.
pub fn rgma_secondary_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [50usize, 100, 200]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("rgma/secondary/{n}"),
                SystemUnderTest::RgmaSecondary,
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// Figs 11–13: single R-GMA server at 100–600 connections (800 refused).
pub fn rgma_single_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [100usize, 200, 400, 600]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("rgma/single/{n}"),
                SystemUnderTest::RgmaSingle,
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// The paper's failed attempt: 800 connections on one R-GMA server.
pub fn rgma_single_800(msgs: u32) -> ExperimentSpec {
    ExperimentSpec::paper_default("rgma/single/800", SystemUnderTest::RgmaSingle, 800).scaled(msgs)
}

/// Figs 11, 13, 14: distributed R-GMA at 400–1000 connections.
pub fn rgma_distributed_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [400usize, 600, 800, 1000]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("rgma/dist/{n}"),
                SystemUnderTest::RgmaDistributed,
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// gridlog: single-broker scalability series for the third contender
/// (same workload shape as the Narada series; the batching/long-poll
/// pipeline trades per-message latency for per-connection cost).
pub fn gridlog_single_specs(msgs: u32) -> Vec<ExperimentSpec> {
    [500usize, 1000, 2000]
        .into_iter()
        .map(|n| {
            ExperimentSpec::paper_default(
                format!("gridlog/single/{n}"),
                SystemUnderTest::GridlogSingle,
                n,
            )
            .scaled(msgs)
        })
        .collect()
}

/// Three-way comparison: the identical workload (400 generators — the
/// largest all three deployments accept — same period, same payload,
/// same seed) across Narada, R-GMA, and gridlog. The basis of the
/// EXPERIMENTS.md RTT + crash-loss comparison.
pub fn three_way_specs(msgs: u32) -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::paper_default("compare/narada", SystemUnderTest::NaradaSingle, 400)
            .scaled(msgs),
        ExperimentSpec::paper_default("compare/rgma", SystemUnderTest::RgmaSingle, 400)
            .scaled(msgs),
        ExperimentSpec::paper_default("compare/gridlog", SystemUnderTest::GridlogSingle, 400)
            .scaled(msgs),
    ]
}

/// The outage leg of the three-way comparison: the [`three_way_specs`]
/// workload with each contender's analogous mid-run outage injected.
/// Narada and gridlog lose their broker at t = 120 s (restart 150 s);
/// R-GMA has no broker, so its equivalent is the 20 s producer-servlet
/// stall. The fourth spec re-runs gridlog with CLIENT_ACKNOWLEDGE,
/// which maps onto committed-offset resume: the consumer group replays
/// the crash window from the durable log and loses nothing.
pub fn three_way_outage_specs(msgs: u32) -> Vec<ExperimentSpec> {
    let crash = simfault::FaultSchedule::scenario("broker-crash").expect("known scenario");
    let stall = simfault::FaultSchedule::scenario("servlet-stall").expect("known scenario");
    let mut narada =
        ExperimentSpec::paper_default("compare/narada+crash", SystemUnderTest::NaradaSingle, 400)
            .scaled(msgs);
    narada.faults = crash.clone();
    let mut rgma =
        ExperimentSpec::paper_default("compare/rgma+stall", SystemUnderTest::RgmaSingle, 400)
            .scaled(msgs);
    rgma.faults = stall;
    let mut gridlog =
        ExperimentSpec::paper_default("compare/gridlog+crash", SystemUnderTest::GridlogSingle, 400)
            .scaled(msgs);
    gridlog.faults = crash.clone();
    let mut committed = ExperimentSpec::paper_default(
        "compare/gridlog-committed+crash",
        SystemUnderTest::GridlogSingle,
        400,
    )
    .scaled(msgs);
    committed.ack_mode = AckMode::Client;
    committed.faults = crash;
    vec![narada, rgma, gridlog, committed]
}

/// The perf-baseline suite (`repro bench`): one representative spec per
/// deployment shape, small enough to run on CI yet exercising every
/// mechanism (both transports, the DBN flood, the servlet chain). Every
/// spec carries the grid-default SLO so the baseline embeds the
/// deterministic freshness rows the gate's latency-percentile checks
/// need (`gridmon-bench/3`) — SLO measurement never perturbs the run.
pub fn bench_specs(msgs: u32) -> Vec<ExperimentSpec> {
    let mut udp =
        ExperimentSpec::paper_default("bench/narada-udp", SystemUnderTest::NaradaSingle, 800)
            .scaled(msgs);
    udp.transport = Transport::Udp;
    let specs = vec![
        ExperimentSpec::paper_default("bench/narada-tcp", SystemUnderTest::NaradaSingle, 800)
            .scaled(msgs),
        udp,
        ExperimentSpec::paper_default(
            "bench/narada-dbn",
            SystemUnderTest::NaradaDbn { brokers: 3 },
            800,
        )
        .scaled(msgs),
        ExperimentSpec::paper_default("bench/rgma-single", SystemUnderTest::RgmaSingle, 400)
            .scaled(msgs),
        ExperimentSpec::paper_default("bench/rgma-dist", SystemUnderTest::RgmaDistributed, 800)
            .scaled(msgs),
        ExperimentSpec::paper_default("bench/rgma-secondary", SystemUnderTest::RgmaSecondary, 100)
            .scaled(msgs),
        ExperimentSpec::paper_default("bench/gridlog", SystemUnderTest::GridlogSingle, 800)
            .scaled(msgs),
    ];
    specs
        .into_iter()
        .map(|s| s.with_slo(simslo::SloSpec::grid_default()))
        .collect()
}

/// Fig 15: RTT decomposition — Narada TCP at 800 and R-GMA single at 400.
pub fn fig15_specs(msgs: u32) -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::paper_default("fig15/narada", SystemUnderTest::NaradaSingle, 800)
            .scaled(msgs),
        ExperimentSpec::paper_default("fig15/rgma", SystemUnderTest::RgmaSingle, 400).scaled(msgs),
    ]
}

/// §III.F.1: 400 generators publishing with no warm-up wait (loss test).
pub fn rgma_no_warmup_spec(msgs: u32) -> ExperimentSpec {
    let mut spec =
        ExperimentSpec::paper_default("rgma/no-warmup/400", SystemUnderTest::RgmaSingle, 400)
            .scaled(msgs);
    spec.warmup = (SimDuration::from_millis(100), SimDuration::from_millis(300));
    spec
}

/// Ablation: DBN broadcast (v1.1.3) vs subscription-aware routing.
pub fn dbn_routing_ablation(msgs: u32, generators: usize) -> Vec<ExperimentSpec> {
    let mut broadcast = ExperimentSpec::paper_default(
        format!("ablation/dbn-broadcast/{generators}"),
        SystemUnderTest::NaradaDbn { brokers: 3 },
        generators,
    )
    .scaled(msgs);
    broadcast.dbn_broadcast = true;
    let mut routed = broadcast.clone();
    routed.name = format!("ablation/dbn-routed/{generators}");
    routed.dbn_broadcast = false;
    vec![broadcast, routed]
}

/// Ablation: the Secondary Producer's deliberate 30 s delay on vs off.
pub fn secondary_delay_ablation(msgs: u32) -> Vec<ExperimentSpec> {
    let with = ExperimentSpec::paper_default(
        "ablation/secondary-30s",
        SystemUnderTest::RgmaSecondary,
        100,
    )
    .scaled(msgs);
    let mut without = with.clone();
    without.name = "ablation/secondary-fast".into();
    without.rgma_config = Some(RgmaConfig::no_secondary_delay());
    vec![with, without]
}

/// Ablation: subscriber poll period (the paper's 100 ms quantization).
pub fn poll_period_ablation(msgs: u32) -> Vec<ExperimentSpec> {
    [10u64, 100, 500, 1000]
        .into_iter()
        .map(|ms| {
            let mut spec = ExperimentSpec::paper_default(
                format!("ablation/poll-{ms}ms"),
                SystemUnderTest::RgmaSingle,
                100,
            )
            .scaled(msgs);
            let mut cfg = RgmaConfig::glite_3_0();
            cfg.poll_period = SimDuration::from_millis(ms);
            spec.rgma_config = Some(cfg);
            spec
        })
        .collect()
}

/// Ablation: sender-side message aggregation (related work §IV, IBM
/// RMM): hold the byte rate constant while varying how many logical
/// readings share one wire message. Shows that message *quantity*, not
/// size, dominates middleware overhead.
pub fn aggregation_ablation(msgs: u32, generators: usize) -> Vec<ExperimentSpec> {
    [1usize, 3, 10]
        .into_iter()
        .map(|k| {
            let mut spec = ExperimentSpec::paper_default(
                format!("ablation/aggregate-{k}"),
                SystemUnderTest::NaradaSingle,
                generators,
            );
            spec.payload_repeat = k;
            spec.publish_interval = SimDuration::from_secs(10 * k as u64);
            spec.msgs_per_generator = (msgs / k as u32).max(1);
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_settings() {
        let specs = table2_specs(FULL_SCALE);
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].transport, Transport::Udp);
        assert_eq!(specs[1].ack_mode, AckMode::Client);
        assert_eq!(specs[3].transport, Transport::Tcp);
        // Equal total data: triple sends a third of the messages at 3×
        // payload; "80" sends 10× messages over a tenth the connections.
        assert_eq!(specs[4].payload_repeat, 3);
        assert_eq!(specs[4].msgs_per_generator, 60);
        assert_eq!(specs[5].generators, 80);
        assert_eq!(specs[5].msgs_per_generator, 1800);
        assert_eq!(
            specs[5].generators as u64 * u64::from(specs[5].msgs_per_generator),
            specs[3].total_messages()
        );
        // Paper totals: 800 generators × 180 messages = 144,000.
        assert_eq!(specs[0].total_messages(), 144_000);
    }

    #[test]
    fn scalability_series_cover_paper_axes() {
        let single = narada_single_specs(10);
        assert_eq!(single.len(), 4);
        assert_eq!(single.last().unwrap().generators, 3000);
        let dbn = narada_dbn_specs(10);
        assert_eq!(dbn.last().unwrap().generators, 4000);
        let rs = rgma_single_specs(10);
        assert_eq!(rs.last().unwrap().generators, 600);
        let rd = rgma_distributed_specs(10);
        assert_eq!(rd.last().unwrap().generators, 1000);
        let sec = rgma_secondary_specs(10);
        assert_eq!(sec[0].generators, 50);
        assert_eq!(narada_single_4000(10).generators, 4000);
        assert_eq!(rgma_single_800(10).generators, 800);
        assert_eq!(fig15_specs(10).len(), 2);
    }

    #[test]
    fn gridlog_series_and_three_way_share_the_workload() {
        let gl = gridlog_single_specs(10);
        assert_eq!(gl.len(), 3);
        assert!(gl
            .iter()
            .all(|s| s.system == SystemUnderTest::GridlogSingle));
        let tw = three_way_specs(10);
        assert_eq!(tw.len(), 3);
        // Identical workload and seed across the three contenders.
        for s in &tw {
            assert_eq!(s.generators, 400);
            assert_eq!(s.seed, tw[0].seed);
            assert_eq!(s.publish_interval, tw[0].publish_interval);
            assert_eq!(s.msgs_per_generator, tw[0].msgs_per_generator);
        }
        assert!(bench_specs(5)
            .iter()
            .any(|s| s.system == SystemUnderTest::GridlogSingle));
        // The outage leg keeps the workload and flips only the fault
        // schedule (plus the ack axis on the committed-offset spec).
        let ow = three_way_outage_specs(10);
        assert_eq!(ow.len(), 4);
        for s in &ow {
            assert_eq!(s.generators, 400);
            assert_eq!(s.seed, tw[0].seed);
            assert!(!s.faults.is_empty());
        }
        assert_eq!(ow[3].ack_mode, AckMode::Client);
        assert_eq!(ow[2].system, SystemUnderTest::GridlogSingle);
    }

    #[test]
    fn ablations_flip_one_knob() {
        let ab = dbn_routing_ablation(5, 100);
        assert!(ab[0].dbn_broadcast && !ab[1].dbn_broadcast);
        let sec = secondary_delay_ablation(5);
        assert!(sec[0].rgma_config.is_none() && sec[1].rgma_config.is_some());
        assert_eq!(poll_period_ablation(5).len(), 4);
        let nw = rgma_no_warmup_spec(5);
        assert!(nw.warmup.1 < SimDuration::from_secs(1));
        let agg = aggregation_ablation(30, 100);
        assert_eq!(agg.len(), 3);
        // Constant byte rate: payload × messages is invariant.
        let volume: Vec<u64> = agg
            .iter()
            .map(|s| s.payload_repeat as u64 * u64::from(s.msgs_per_generator))
            .collect();
        assert_eq!(volume[0], volume[1]);
        assert_eq!(volume[0], volume[2]);
    }
}
