#![warn(missing_docs)]
//! # gridmon-core — the study itself, as a library
//!
//! Ties the substrates together into reproducible experiments:
//!
//! * [`calibration`] — every constant pinned to the paper's testbed
//!   (Table I hardware, JVM flags, observed scalability cliffs).
//! * [`experiment`] — deploy a system (Narada single/DBN, R-GMA
//!   single/distributed/secondary) on a simulated Hydra cluster, run the
//!   paper's workload, and collect RTT/percentile/loss/CPU/memory data.
//! * [`scenarios`] — the catalogue: one spec set per table/figure.
//! * [`sweep`] — run many experiments in parallel across OS threads
//!   (each experiment is an independent deterministic simulation).

pub mod calibration;
pub mod experiment;
pub mod scenarios;
pub mod sweep;

pub use experiment::{
    run_experiment, ExperimentResult, ExperimentSpec, ProfileArtifacts, ScopeArtifacts,
    SloArtifacts, SystemUnderTest, TraceArtifacts,
};
pub use simfault::{FaultKind, FaultSchedule, FaultStats};
pub use simslo::{SloReport, SloSpec};
pub use sweep::run_all;
