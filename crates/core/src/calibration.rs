//! Calibration constants for the Hydra testbed (Table I) and derived
//! middleware process profiles.
//!
//! Everything with a physical meaning is set from the paper:
//!
//! * Pentium III 866 MHz, 2 GB RAM per node (Table I);
//! * isolated 100 Mbps switched LAN measured at 7–8 MB/s (§III.A);
//! * `-Xms1024m -Xmx1024m` for the Narada JVM, `-Xmx1024m` for Tomcat
//!   (§III.E, §III.F), `ulimit -n 50000`;
//! * observed scalability cliffs: a single Narada broker fails to accept
//!   4000 connections, a single R-GMA server fails near 800 — which pin
//!   the per-thread native reservations of the two JVM configurations.

use simcore::SimDuration;
use simnet::FabricConfig;
use simos::{Bytes, NodeSpec, ProcessSpec};

/// Number of nodes in the Hydra cluster.
pub const HYDRA_NODES: usize = 8;

/// Per-runnable-thread CPU inflation on middleware *server* nodes.
///
/// Thousands of thread-per-connection Java threads on a single-core
/// PIII + JVM 1.4.2 slow every operation; this coefficient sets the slope
/// of the RTT-vs-connections lines (fig 7, fig 11).
pub const SERVER_CS_COEFF: f64 = 0.0004;

/// Scheduler dispatch latency per runnable thread on server nodes: a
/// runnable servlet/broker job waits while the 2.4-era Linux scheduler
/// and the JVM cycle through the other threads. At 3000 connections this
/// contributes ~12 ms per CPU visit — the slope of fig 7.
pub const SERVER_SCHED_LATENCY_US: u64 = 7;

/// Per-thread inflation on client/driver nodes (the paper kept client CPU
/// idle above 85 % with 750 generators, so this is small).
pub const CLIENT_CS_COEFF: f64 = 0.00012;

/// A Hydra node spec for a middleware server role.
pub fn hydra_server(name: impl Into<String>) -> NodeSpec {
    NodeSpec::hydra(name, SERVER_CS_COEFF)
        .with_sched_latency(SimDuration::from_micros(SERVER_SCHED_LATENCY_US))
}

/// A Hydra node spec for a driver/client role.
pub fn hydra_client(name: impl Into<String>) -> NodeSpec {
    NodeSpec::hydra(name, CLIENT_CS_COEFF)
}

/// The isolated 100 Mbps LAN (§III.A).
pub fn hydra_fabric() -> FabricConfig {
    FabricConfig {
        bandwidth_bps: 7_500_000,
        base_latency: SimDuration::from_micros(150),
        jitter_mean: SimDuration::from_micros(120),
        mss: 1460,
        per_packet_overhead: SimDuration::from_micros(40),
        // Per-datagram loss: calibrated so the end-to-end UDP AUTO test
        // loses ~0.06 % (§III.E.1) — deliveries are unrecovered in AUTO
        // mode while publishes are retransmitted.
        udp_loss_prob: 0.0006,
    }
}

/// The Narada broker JVM: `-Xms1024m -Xmx1024m`, ~200 KiB per-thread
/// native reservation ⇒ the native pool (2 GB − OS − heap) admits ~3900
/// service threads: 3000 connections fine, 4000 refused, matching
/// §III.E.2.
pub fn narada_broker_process() -> ProcessSpec {
    ProcessSpec {
        heap_cap: Bytes::mib(1024),
        stack_size: Bytes::kib(200),
        baseline: Bytes::mib(56),
    }
}

/// The R-GMA/Tomcat JVM: `-Xmx1024m` with 1 MiB per-thread reservation
/// (Tomcat connector defaults of the era) ⇒ ~760 service threads: the
/// paper's single server failed to accept 800 connections.
pub fn rgma_server_process() -> ProcessSpec {
    ProcessSpec {
        heap_cap: Bytes::mib(1024),
        stack_size: Bytes::mib(1),
        baseline: Bytes::mib(72),
    }
}

/// A driver-program JVM (the generator simulators).
pub fn driver_process() -> ProcessSpec {
    ProcessSpec {
        heap_cap: Bytes::mib(512),
        stack_size: Bytes::kib(128),
        baseline: Bytes::mib(24),
    }
}

/// Maximum generators simulated per driver node (the paper used ≤750 for
/// most tests, 1000 once).
pub const MAX_GENERATORS_PER_NODE: usize = 1000;

/// The paper's standard test length (30 minutes).
pub fn standard_test_duration() -> SimDuration {
    SimDuration::from_secs(30 * 60)
}

/// The paper's generator creation stagger for Narada tests.
pub fn narada_creation_interval() -> SimDuration {
    SimDuration::from_millis(500)
}

/// The paper's generator creation stagger for R-GMA tests.
pub fn rgma_creation_interval() -> SimDuration {
    SimDuration::from_secs(1)
}

/// The warm-up sleep range (both middlewares): 10–20 s.
pub fn warmup_range() -> (SimDuration, SimDuration) {
    (SimDuration::from_secs(10), SimDuration::from_secs(20))
}

/// The standard publish period: every 10 s.
pub fn publish_interval() -> SimDuration {
    SimDuration::from_secs(10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::OsModel;

    #[test]
    fn narada_broker_thread_cliff_is_between_3000_and_4000() {
        let mut os = OsModel::new();
        let node = os.add_node(hydra_server("hydra1"));
        let proc = os.add_process(node, narada_broker_process());
        let headroom = os.mem(proc).thread_headroom();
        assert!(
            (3000..4000).contains(&headroom),
            "paper: 3000 conns fine, 4000 refused; headroom = {headroom}"
        );
    }

    #[test]
    fn rgma_server_thread_cliff_is_below_800() {
        let mut os = OsModel::new();
        let node = os.add_node(hydra_server("hydra1"));
        let proc = os.add_process(node, rgma_server_process());
        let headroom = os.mem(proc).thread_headroom();
        assert!(
            (500..800).contains(&headroom),
            "paper: one server cannot accept 800 connections; headroom = {headroom}"
        );
    }

    #[test]
    fn paper_timings() {
        assert_eq!(standard_test_duration().as_secs_f64(), 1800.0);
        assert_eq!(publish_interval().as_secs_f64(), 10.0);
        let (lo, hi) = warmup_range();
        assert!(lo < hi);
    }
}
