//! Experiment specification, deployment, execution, and result
//! collection — one call reproduces one data point of the paper.
//!
//! ## Sharded execution
//!
//! The run path is split into four deterministic stages so the same code
//! serves every shard count:
//!
//! 1. [`layout`] — pure arithmetic on the spec: node counts, workload
//!    split, time windows.
//! 2. `build_world` — constructs one *replica* of the whole cluster.
//!    Under sharding every shard executes the identical build (same
//!    actor indices, same build-phase connection ids, same RNG streams);
//!    the kernel's locality filter turns foreign-node actors into ghosts.
//! 3. run — serial `run_until` for `shards == 1`, conservative LBTS
//!    lockstep (`simshard::run_sharded`) otherwise, with lookahead equal
//!    to the fabric's base latency.
//! 4. `extract_partial` / `merge_results` — every collector leaves its
//!    shard as a `Send` partial and goes through the *same* merge
//!    pipeline regardless of shard count (a serial run is merged-of-one),
//!    so results and artifacts are byte-identical across shard counts by
//!    construction. `tests/shard_equivalence.rs` enforces this
//!    differentially.

use crate::calibration;
use jms::AckMode;
use narada::{BrokerNetwork, ConnSettings, NaradaConfig};
use powergrid::{
    FleetStatsHandle, GridlogFleet, GridlogFleetConfig, GridlogSubscriber, NaradaFleet,
    NaradaFleetConfig, NaradaSubscriber, RgmaFleet, RgmaFleetConfig, RgmaSubscriber, TABLE_SQL,
};
use rgma::{
    ConsumerControl, ConsumerServlet, ProducerControl, ProducerServlet, RegistryActor, RgmaConfig,
    SecondaryProducer,
};
use simcore::{ActorId, RemoteEnvelope, SimDuration, SimTime, Simulation};
use simfault::{FaultDriver, FaultInjector, FaultSchedule, FaultStats};
use simnet::{Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel, ProcessId, VmstatLog, VmstatSampler};
use simshard::ShardPlan;
use simslo::{SloCollector, SloReport, SloSpec};
use simtrace::{TraceCollector, TraceId, TraceSampler, TraceSummary};
use telemetry::{RttCollector, RttSummary};

/// Which deployment is under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// One Narada broker on one node.
    NaradaSingle,
    /// A Distributed Broker Network of `brokers` fully-meshed brokers.
    NaradaDbn {
        /// Broker count (paper: 4).
        brokers: usize,
    },
    /// Registry + Primary Producer servlet + Consumer servlet in one
    /// Tomcat on one node.
    RgmaSingle,
    /// Producer servlets on two nodes, Consumer servlets on two nodes
    /// (registry co-located with the first producer node).
    RgmaDistributed,
    /// Single server plus a Secondary Producer in the path (fig 10).
    RgmaSecondary,
    /// One gridlog partitioned-log broker on one node; producers batch
    /// with linger, a two-member consumer group splits the partitions.
    GridlogSingle,
}

impl SystemUnderTest {
    /// Is this an R-GMA deployment?
    pub fn is_rgma(self) -> bool {
        matches!(
            self,
            SystemUnderTest::RgmaSingle
                | SystemUnderTest::RgmaDistributed
                | SystemUnderTest::RgmaSecondary
        )
    }
}

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Human-readable name ("fig7/single/2000", "table2/UDP"…).
    pub name: String,
    /// Deployment.
    pub system: SystemUnderTest,
    /// Total simulated generators (concurrent connections).
    pub generators: usize,
    /// Transport for Narada connections (ignored by R-GMA, always HTTP).
    pub transport: Transport,
    /// JMS acknowledge mode (Narada only).
    pub ack_mode: AckMode,
    /// Payload multiplier (Narada "Triple" test).
    pub payload_repeat: usize,
    /// Publish period per generator.
    pub publish_interval: SimDuration,
    /// Messages per generator.
    pub msgs_per_generator: u32,
    /// Warm-up sleep range before first publish.
    pub warmup: (SimDuration, SimDuration),
    /// RNG seed.
    pub seed: u64,
    /// Use the v1.1.3 broadcast DBN (true) or routed ablation (false).
    pub dbn_broadcast: bool,
    /// Override the R-GMA configuration (None = gLite 3.0 defaults).
    pub rgma_config: Option<RgmaConfig>,
    /// Enable `simtrace` lifecycle tracing. Off by default: no collector
    /// service is registered, so every instrumentation site reduces to
    /// one failed type-map probe.
    pub trace: bool,
    /// Scripted fault schedule. Empty by default: no injector service is
    /// registered and no recovery policy is enabled, so fault-free runs
    /// are byte-identical to builds without fault support.
    pub faults: FaultSchedule,
    /// Enable the virtual-time profiler and the metrics plane. Off by
    /// default: no `Profiler`/`MetricsRegistry` service is registered, so
    /// every charge site reduces to one failed type-map probe and the
    /// run is byte-identical to an unprofiled build.
    pub profile: bool,
    /// Enable wall-clock hot-path attribution (`simscope`). Off by
    /// default: no `WallScope` service is registered and the kernel's
    /// internal timers stay disarmed, so every probe reduces to one
    /// failed type-map probe or one `Option` check. Wall-clock reads
    /// never touch the RNG or the event queue, so scoped runs are
    /// byte-identical to plain runs at a fixed seed.
    pub scope: bool,
    /// Data-freshness / SLO accounting (`simslo`). Off by default: no
    /// `SloCollector` service is registered, so every recording site
    /// reduces to one failed type-map probe and the run is
    /// byte-identical to a build without the plane. The publish stamps
    /// ride out-of-band (like the trace id) and cost zero wire bytes,
    /// so enabling it never perturbs timing either.
    pub slo: Option<SloSpec>,
    /// Conservative-parallel shard count (`simshard`). The cluster's
    /// nodes partition round-robin into this many shards, each a full
    /// replica of the world advancing in LBTS lockstep with lookahead
    /// equal to the fabric base latency. Results and observability
    /// artifacts are byte-identical across shard counts (a differential
    /// test suite enforces it); 1 — the default — runs the classic
    /// serial event loop, through the same merge pipeline.
    pub shards: usize,
}

impl ExperimentSpec {
    /// A paper-faithful spec with the standard settings; customize from
    /// here.
    pub fn paper_default(
        name: impl Into<String>,
        system: SystemUnderTest,
        generators: usize,
    ) -> Self {
        ExperimentSpec {
            name: name.into(),
            system,
            generators,
            transport: Transport::Tcp,
            ack_mode: AckMode::Auto,
            payload_repeat: 1,
            publish_interval: calibration::publish_interval(),
            msgs_per_generator: 180,
            warmup: calibration::warmup_range(),
            seed: 0x9e3779b97f4a7c15,
            dbn_broadcast: true,
            rgma_config: None,
            trace: false,
            faults: FaultSchedule::new(),
            profile: false,
            scope: false,
            slo: None,
            shards: 1,
        }
    }

    /// Enable per-message lifecycle tracing for this run.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable the virtual-time profiler and the time-series metrics
    /// plane for this run.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enable wall-clock hot-path attribution for this run.
    pub fn scoped(mut self) -> Self {
        self.scope = true;
        self
    }

    /// Measure data freshness (Age-of-Information) and deadline
    /// compliance against `spec` for this run.
    pub fn with_slo(mut self, spec: SloSpec) -> Self {
        self.slo = Some(spec);
        self
    }

    /// Run on `shards` conservative parallel shards (1 = serial). Same
    /// seed + same spec ⇒ byte-identical results at any shard count.
    pub fn sharded(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Inject a scripted fault schedule. Also arms the default client
    /// recovery policies (Narada reconnect, R-GMA HTTP retry and
    /// soft-state refresh) unless an explicit `rgma_config` overrides
    /// them.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// A scaled-down variant for tests and criterion benches: fewer
    /// messages per generator, same mechanisms.
    pub fn scaled(mut self, msgs: u32) -> Self {
        self.msgs_per_generator = msgs;
        self
    }

    /// Total messages this spec will publish.
    pub fn total_messages(&self) -> u64 {
        self.generators as u64 * u64::from(self.msgs_per_generator)
    }
}

/// Trace artifacts produced by a traced run (`spec.trace = true`).
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// JSON Lines export: every event plus the unified resource log
    /// (counter samples merged with vmstat rows).
    pub jsonl: String,
    /// Chrome `trace_event` JSON (open in Perfetto / `chrome://tracing`).
    pub chrome: String,
    /// Per-message PRT/PT/SRT reconstruction.
    pub summary: TraceSummary,
    /// Cross-check failures against the independent `RttCollector`
    /// instants. Non-empty means one instrumentation path is buggy.
    pub disagreements: Vec<String>,
}

/// Profiler and metrics-plane artifacts produced by a profiled run
/// (`spec.profile = true`).
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// Rendered per-component self-time table (the `repro --profile`
    /// terminal output).
    pub table: String,
    /// Flamegraph-compatible collapsed-stack lines
    /// (`path;to;frame <micros>`).
    pub collapsed: String,
    /// Prometheus text-exposition snapshot of the metrics registry at
    /// the end of the run.
    pub prometheus: String,
    /// Deterministic time-series CSV (`t_s,metric,value`) sampled on the
    /// vmstat cadence.
    pub metrics_csv: String,
    /// Simulated busy time the profiler attributed to components.
    pub attributed: SimDuration,
    /// Total simulated busy time submitted to every CPU in the cluster.
    /// The table's TOTAL row equals this (conservation).
    pub kernel_busy: SimDuration,
    /// `kernel_busy - attributed`; non-zero means a charge site is
    /// missing somewhere.
    pub unattributed: SimDuration,
}

/// Wall-clock hot-path artifacts produced by a scoped run
/// (`spec.scope = true`).
#[derive(Debug, Clone)]
pub struct ScopeArtifacts {
    /// The parsed per-site attribution report.
    pub report: simscope::HotpathReport,
    /// `gridmon-hotpath/1` JSON.
    pub json: String,
    /// Flamegraph-compatible collapsed-stack lines (simprof's format,
    /// wall-clock microseconds).
    pub collapsed: String,
}

/// Freshness / SLO artifacts produced when `spec.slo` was set.
#[derive(Debug, Clone)]
pub struct SloArtifacts {
    /// Per-reading outcome accounting, AoI sawtooth samples, burn
    /// windows and windowed delivery-latency percentiles.
    pub report: SloReport,
    /// Deterministic long-format CSV (`t_s,metric,value`) of the AoI
    /// and burn-window series (the `repro --slo` `slo.csv` file).
    pub csv: String,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Spec name.
    pub name: String,
    /// Requested connection count.
    pub generators: usize,
    /// Message telemetry (RTT, percentiles, loss, decomposition).
    pub summary: RttSummary,
    /// Mean CPU idle fraction across *server* nodes.
    pub server_idle: f64,
    /// Peak memory consumption across server nodes, MB (paper metric).
    pub server_mem_mb: f64,
    /// Connections accepted by the middleware.
    pub connected: u32,
    /// Connections refused (OOM / thread exhaustion).
    pub refused: u32,
    /// Messages the fleets attempted to publish.
    pub published: u64,
    /// Wasted inter-broker messages (DBN broadcast deficiency indicator).
    pub broker_forwards: u64,
    /// Virtual time the run covered.
    pub sim_time: SimTime,
    /// Kernel events processed (cost indicator). Under sharding this is
    /// the sum over shards — identical to the serial count, since every
    /// event executes on exactly one shard.
    pub events: u64,
    /// Trace exports and cross-check (only when `spec.trace` was set).
    pub trace: Option<TraceArtifacts>,
    /// Graceful-degradation accounting (only when `spec.faults` was
    /// non-empty): dropped vs delayed vs recovered, per cause.
    pub fault_stats: Option<FaultStats>,
    /// Profiler + metrics artifacts (only when `spec.profile` was set).
    pub profile: Option<ProfileArtifacts>,
    /// Kernel event accounting (always on): per-type counts, timer vs.
    /// message mix, queue-depth high-watermark and depth samples.
    pub kernel: simcore::KernelStats,
    /// Wall-clock hot-path attribution (only when `spec.scope` was set).
    /// Non-deterministic by nature (wall-clock), but producing it never
    /// perturbs the simulation.
    pub scope: Option<ScopeArtifacts>,
    /// Freshness / deadline-SLO accounting (only when `spec.slo` was
    /// set). Derived entirely from the merged record set, so it is
    /// byte-identical across shard counts like every other artifact.
    pub slo: Option<SloArtifacts>,
    /// Host wall-clock seconds this run took (perf-baseline input; the
    /// only non-deterministic field).
    pub wall_secs: f64,
}

/// Deterministic geometry of one experiment, shared by every shard's
/// build and by the merge: node counts, workload split, time windows.
struct Layout {
    server_count: usize,
    /// Fleet-hosting client nodes (one more client node hosts the
    /// subscriber program).
    fleet_nodes_n: usize,
    total_nodes: usize,
    per_fleet: Vec<usize>,
    horizon: SimTime,
    steady_from: SimTime,
    steady_to: SimTime,
}

/// Pure arithmetic on the spec — no RNG, no kernel state.
fn layout(spec: &ExperimentSpec) -> Layout {
    let server_count = match spec.system {
        SystemUnderTest::NaradaSingle
        | SystemUnderTest::RgmaSingle
        | SystemUnderTest::GridlogSingle => 1,
        SystemUnderTest::NaradaDbn { brokers } => brokers,
        SystemUnderTest::RgmaDistributed => 4,
        SystemUnderTest::RgmaSecondary => 2,
    };
    // Client nodes: enough for the fleet (≤1000 generators per node; the
    // R-GMA runs used two publishing nodes at 1000 connections, so cap at
    // 500 there — which also spreads connections over both producer
    // servlets in the distributed deployment), plus one node for the
    // subscriber program.
    let per_node_cap = if spec.system.is_rgma() {
        calibration::MAX_GENERATORS_PER_NODE / 2
    } else {
        calibration::MAX_GENERATORS_PER_NODE
    };
    let fleet_nodes_n = spec.generators.div_ceil(per_node_cap).max(1);
    let total_nodes = server_count + fleet_nodes_n + 1;
    let per_fleet = split_evenly(spec.generators, fleet_nodes_n);
    let creation_interval = if spec.system.is_rgma() {
        calibration::rgma_creation_interval()
    } else {
        calibration::narada_creation_interval()
    };
    let max_fleet = per_fleet.iter().copied().max().unwrap_or(0) as u64;
    let ramp = creation_interval.saturating_mul(max_fleet);
    let publishing = spec
        .publish_interval
        .saturating_mul(u64::from(spec.msgs_per_generator));
    let drain = if spec.system == SystemUnderTest::RgmaSecondary {
        SimDuration::from_secs(120)
    } else if spec.system.is_rgma() {
        SimDuration::from_secs(30)
    } else {
        SimDuration::from_secs(10)
    };
    Layout {
        server_count,
        fleet_nodes_n,
        total_nodes,
        per_fleet,
        horizon: SimTime::ZERO + ramp + spec.warmup.1 + publishing + drain,
        steady_from: SimTime::ZERO + ramp + spec.warmup.1,
        steady_to: SimTime::ZERO + ramp + publishing,
    }
}

/// Thread-local build artifacts the extractor needs: `Rc` stats handles
/// the world's actors share with the driver. Never crosses threads.
struct WorldHandles {
    fleet_stats: Vec<FleetStatsHandle>,
    #[allow(dead_code)]
    sub_stats: Vec<FleetStatsHandle>,
    broker_stats: Vec<narada::StatsHandle>,
}

/// Construct one replica of the whole cluster into `sim`.
///
/// Runs identically on every shard (and serially): same service set,
/// same actor order — so actor indices, per-actor RNG streams, and
/// build-phase connection ids agree across replicas. `sim.on_node`
/// precedes every placed actor so the kernel's locality filter (if any)
/// can ghost foreign-node actors; the vmstat sampler, the trace sampler
/// and the fault driver are *replicated* (run on every shard) instead.
fn build_world(
    spec: &ExperimentSpec,
    lay: &Layout,
    plan: &ShardPlan,
    shard_ix: usize,
    sim: &mut Simulation,
) -> WorldHandles {
    // --- Cluster ---------------------------------------------------
    let mut os = OsModel::new();
    let mut server_nodes = Vec::new();
    for i in 0..lay.server_count {
        server_nodes.push(os.add_node(calibration::hydra_server(format!("hydra{}", i + 1))));
    }
    let mut client_nodes = Vec::new();
    for i in 0..=lay.fleet_nodes_n {
        client_nodes.push(os.add_node(calibration::hydra_client(format!(
            "hydra{}",
            lay.server_count + i + 1
        ))));
    }
    sim.add_service(NetworkFabric::new(
        calibration::hydra_fabric(),
        lay.total_nodes,
    ));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());
    if spec.trace {
        sim.add_service(TraceCollector::new());
    }
    if !spec.faults.is_empty() {
        // The injector owns a private RNG stream, so registering it does
        // not perturb the kernel RNG; with an empty schedule it is not
        // registered at all and every fault probe is a no-op.
        sim.add_service(FaultInjector::new(spec.seed));
    }
    if spec.profile {
        sim.add_service(simprof::Profiler::new());
        sim.add_service(telemetry::MetricsRegistry::new());
    }
    if spec.slo.is_some() {
        // Pure bookkeeping keyed by content-derived probe ids: recording
        // never touches the RNG or the event queue, so SLO-enabled runs
        // are byte-identical to plain runs on every other artifact.
        sim.add_service(SloCollector::new());
    }
    if spec.scope {
        // Arm the kernel's internal dispatch/queue timers and register the
        // service the simnet/narada probes look up. Wall-clock reads never
        // touch simulation state, so this cannot change the run.
        sim.enable_hotpath_timing();
        sim.add_service(simscope::WallScope::new());
    }

    // Server processes.
    let server_procs: Vec<ProcessId> = server_nodes
        .iter()
        .map(|&n| {
            os.add_process(
                n,
                if spec.system.is_rgma() {
                    calibration::rgma_server_process()
                } else {
                    calibration::narada_broker_process()
                },
            )
        })
        .collect();
    // Driver processes.
    let client_procs: Vec<ProcessId> = client_nodes
        .iter()
        .map(|&n| os.add_process(n, calibration::driver_process()))
        .collect();
    if spec.scope {
        // `execute_metered` has no Context access, so the OS model meters
        // its own wall time instead of using the WallScope service.
        os.enable_wall_metering();
    }
    sim.add_service(os);
    // The sampler is replicated (one replica per shard), each replica
    // sampling only the server nodes its shard hosts: a node's CPU/memory
    // state is maintained by that node's actors, which execute on exactly
    // one shard. The merge interleaves the per-shard rows by (time, node).
    let local_server_nodes: Vec<NodeId> = server_nodes
        .iter()
        .copied()
        .filter(|n| plan.shard_of(n.0) == shard_ix)
        .collect();
    sim.add_replicated_actor(VmstatSampler::new(
        SimDuration::from_secs(1),
        local_server_nodes,
    ));
    // Stop-the-world GC pauses on the middleware JVMs (the latency-tail
    // mechanism; see simos::gc).
    let gc_cfg = if spec.system.is_rgma() {
        simos::GcConfig::rgma_server()
    } else {
        simos::GcConfig::narada_broker()
    };
    for (&node, &proc) in server_nodes.iter().zip(&server_procs) {
        sim.on_node(node.0);
        sim.add_actor(simos::GcPauser::new(gc_cfg.clone(), node, proc));
    }

    // --- Middleware + workload -------------------------------------
    let mut fleet_stats: Vec<FleetStatsHandle> = Vec::new();
    let mut sub_stats: Vec<FleetStatsHandle> = Vec::new();
    let mut broker_stats: Vec<narada::StatsHandle> = Vec::new();
    // Fault targets, filled in by the deployment branches below.
    let mut fault_brokers: Vec<ActorId> = Vec::new();
    let mut fault_registry: Option<ActorId> = None;

    match spec.system {
        SystemUnderTest::NaradaSingle | SystemUnderTest::NaradaDbn { .. } => {
            let ncfg = if spec.dbn_broadcast {
                NaradaConfig::v1_1_3()
            } else {
                NaradaConfig::routed()
            };
            // Brokers.
            let hosts: Vec<(NodeId, ProcessId)> = server_nodes
                .iter()
                .copied()
                .zip(server_procs.iter().copied())
                .collect();
            let endpoints: Vec<Endpoint> = if hosts.len() == 1 {
                let broker = narada::Broker::new(ncfg.clone(), hosts[0].0, hosts[0].1);
                broker_stats.push(broker.stats_handle());
                sim.on_node(hosts[0].0 .0);
                let id = sim.add_actor(broker);
                vec![Endpoint::new(hosts[0].0, id)]
            } else {
                let network =
                    BrokerNetwork::deploy(&mut *sim, &ncfg, &hosts, SimDuration::from_millis(200));
                broker_stats.extend(network.stats.iter().cloned());
                network.endpoints
            };
            fault_brokers = endpoints.iter().map(|ep| ep.actor).collect();
            let settings = ConnSettings {
                transport: spec.transport,
                ack_mode: spec.ack_mode,
                reconnect: if spec.faults.is_empty() {
                    None
                } else {
                    Some(narada::ReconnectPolicy::default())
                },
            };
            // Fig 5 topology: "Publishers connect to publishing brokers.
            // Subscribers connect to subscribing brokers." The last broker
            // serves subscribers; the rest take publisher connections, so
            // every measured delivery crosses the broker network — which
            // v1.1.3 floods to every peer ("data congestion").
            let pub_eps: Vec<Endpoint> = if endpoints.len() > 1 {
                endpoints[..endpoints.len() - 1].to_vec()
            } else {
                endpoints.clone()
            };
            let sub_eps: Vec<Endpoint> = if endpoints.len() > 1 {
                endpoints[endpoints.len() - 1..].to_vec()
            } else {
                endpoints.clone()
            };
            // Fleets: fleet i connects to broker i % n.
            let mut first_id = 0u32;
            for (i, &n_gens) in lay.per_fleet.iter().enumerate() {
                let broker_ep = pub_eps[i % pub_eps.len()];
                let fleet = NaradaFleet::new(NaradaFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    broker_ep,
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::narada_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    settings,
                    payload_repeat: spec.payload_repeat,
                    msgs_per_generator: spec.msgs_per_generator,
                    narada: ncfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.on_node(client_nodes[i].0);
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // Subscribers: one per subscribing broker, on the dedicated
            // client node.
            let sub_node = *client_nodes.last().expect("at least one client node");
            for ep in &sub_eps {
                let sub = NaradaSubscriber::new(sub_node, *ep, settings, ncfg.clone());
                sub_stats.push(sub.stats_handle());
                sim.on_node(sub_node.0);
                sim.add_actor(sub);
            }
        }
        SystemUnderTest::GridlogSingle => {
            let gcfg = gridlog::GridlogConfig::default();
            let broker = gridlog::LogBroker::new(gcfg.clone(), server_nodes[0], server_procs[0]);
            sim.on_node(server_nodes[0].0);
            let id = sim.add_actor(broker);
            let broker_ep = Endpoint::new(server_nodes[0], id);
            fault_brokers = vec![id];
            let reconnect = if spec.faults.is_empty() {
                None
            } else {
                Some(gridlog::ReconnectPolicy::default())
            };
            // The JMS acknowledge axis maps onto Kafka's offset axis:
            // CLIENT_ACKNOWLEDGE ↦ committed-offset resume (zero loss
            // across a broker crash), AUTO_ACKNOWLEDGE ↦
            // auto.offset.reset=latest (the crash window is lost).
            let reset = if spec.ack_mode == AckMode::Client {
                gridlog::OffsetReset::Committed
            } else {
                gridlog::OffsetReset::Latest
            };
            let mut first_id = 0u32;
            for (i, &n_gens) in lay.per_fleet.iter().enumerate() {
                let fleet = GridlogFleet::new(GridlogFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    broker_ep,
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::narada_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    payload_repeat: spec.payload_repeat,
                    msgs_per_generator: spec.msgs_per_generator,
                    reconnect,
                    gridlog: gcfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.on_node(client_nodes[i].0);
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // One consumer host with a two-member group on the dedicated
            // client node: the partitions split between the members.
            let sub_node = *client_nodes.last().expect("at least one client node");
            let sub = GridlogSubscriber::new(sub_node, broker_ep, 2, reset, reconnect, gcfg);
            sub_stats.push(sub.stats_handle());
            sim.on_node(sub_node.0);
            sim.add_actor(sub);
        }
        SystemUnderTest::RgmaSingle
        | SystemUnderTest::RgmaDistributed
        | SystemUnderTest::RgmaSecondary => {
            let mut rcfg = spec
                .rgma_config
                .clone()
                .unwrap_or_else(RgmaConfig::glite_3_0);
            if !spec.faults.is_empty() && spec.rgma_config.is_none() {
                // Default recovery policies ride along with the faults:
                // insert retry-on-5xx and soft-state re-registration.
                rcfg.insert_retry = Some(rgma::HttpRetryPolicy::default());
                rcfg.soft_state_refresh = Some(SimDuration::from_secs(10));
            }
            // Registry always on server node 0.
            sim.on_node(server_nodes[0].0);
            let reg = sim.add_actor(RegistryActor::new(
                rcfg.clone(),
                server_nodes[0],
                server_procs[0],
            ));
            fault_registry = Some(reg);
            let reg_ep = Endpoint::new(server_nodes[0], reg);
            // Producer/Consumer servlets.
            let (prod_hosts, cons_hosts): (Vec<usize>, Vec<usize>) = match spec.system {
                SystemUnderTest::RgmaSingle | SystemUnderTest::RgmaSecondary => (vec![0], vec![0]),
                SystemUnderTest::RgmaDistributed => (vec![0, 1], vec![2, 3]),
                _ => unreachable!(),
            };
            let mut prod_eps = Vec::new();
            for &h in &prod_hosts {
                sim.on_node(server_nodes[h].0);
                let p = sim.add_actor(ProducerServlet::new(
                    rcfg.clone(),
                    server_nodes[h],
                    server_procs[h],
                    reg_ep,
                ));
                sim.schedule(
                    SimDuration::ZERO,
                    p,
                    Box::new(ProducerControl::DeclareTable {
                        sql: TABLE_SQL.into(),
                    }),
                );
                prod_eps.push(Endpoint::new(server_nodes[h], p));
            }
            let mut cons_eps = Vec::new();
            for &h in &cons_hosts {
                sim.on_node(server_nodes[h].0);
                let c = sim.add_actor(ConsumerServlet::new(
                    rcfg.clone(),
                    server_nodes[h],
                    server_procs[h],
                    reg_ep,
                ));
                sim.schedule(
                    SimDuration::ZERO,
                    c,
                    Box::new(ConsumerControl::DeclareTable {
                        sql: TABLE_SQL.into(),
                    }),
                );
                cons_eps.push(Endpoint::new(server_nodes[h], c));
            }
            // The fig-10 chain: a Secondary Producer on the second node.
            let subscriber_table = if spec.system == SystemUnderTest::RgmaSecondary {
                let sp = SecondaryProducer::new(
                    rcfg.clone(),
                    server_nodes[1],
                    server_procs[1],
                    reg_ep,
                    powergrid::TABLE,
                    "generator_archive",
                );
                sim.on_node(server_nodes[1].0);
                sim.add_actor(sp);
                "generator_archive"
            } else {
                powergrid::TABLE
            };
            // Fleets spread over producer servlets.
            let mut first_id = 0u32;
            for (i, &n_gens) in lay.per_fleet.iter().enumerate() {
                let fleet = RgmaFleet::new(RgmaFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    producer_ep: prod_eps[i % prod_eps.len()],
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::rgma_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    msgs_per_generator: spec.msgs_per_generator,
                    rgma: rcfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.on_node(client_nodes[i].0);
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // One subscriber per consumer servlet.
            let sub_node = *client_nodes.last().expect("at least one client node");
            for ep in &cons_eps {
                let sub = RgmaSubscriber::new(
                    sub_node,
                    *ep,
                    format!("SELECT * FROM {subscriber_table}"),
                    rcfg.clone(),
                );
                sub_stats.push(sub.stats_handle());
                sim.on_node(sub_node.0);
                sim.add_actor(sub);
            }
        }
    }

    // Conditional observation/fault actors register *after* every
    // production actor: per-actor RNG streams are keyed by actor index, so
    // an actor that only exists in instrumented runs must not shift the
    // indices (and hence the randomness) of the actors common to all runs.
    // Both are replicated — they run on every shard, observing/driving
    // their shard's replica of the world.
    if spec.trace {
        // Counters sampled on the same cadence as the vmstat sampler so
        // the unified resource log interleaves 1:1.
        sim.add_replicated_actor(TraceSampler::new(SimDuration::from_secs(1)));
    }
    // The driver is added last so its `on_start` timers land after every
    // deployment actor exists; targets that a schedule names but the
    // deployment lacks (e.g. a registry in a Narada run) are ignored.
    // Replicated: each replica drives its own shard's injector service;
    // control messages to actors its shard doesn't host are ghost-dropped
    // (the owning shard's replica delivers them), and the `injected`
    // count is gated on the accounting primary.
    if !spec.faults.is_empty() {
        sim.add_replicated_actor(FaultDriver::new(
            spec.faults.clone(),
            fault_brokers,
            fault_registry,
        ));
    }

    // Build wiring complete: runtime connection ids switch to
    // opener-derived packing, which is shard-invariant (build-phase ids
    // are sequential and rely on the replicated build for parity).
    sim.service_mut::<NetworkFabric>()
        .expect("fabric registered")
        .finish_build();

    WorldHandles {
        fleet_stats,
        sub_stats,
        broker_stats,
    }
}

/// Everything one shard contributes to the merged result. `Send`: the
/// `Rc`-based stats handles are reduced to plain sums before leaving the
/// shard thread.
struct ShardPartial {
    kernel: simcore::KernelStats,
    hotpath: Option<simcore::KernelHotpath>,
    rtt: RttCollector,
    vm: VmstatLog,
    trace: Option<TraceCollector>,
    fault: Option<FaultStats>,
    profiler: Option<simprof::Profiler>,
    metrics: Option<telemetry::MetricsRegistry>,
    wallscope: Option<simscope::WallScope>,
    slo: Option<SloCollector>,
    os_busy: SimDuration,
    os_wall: Option<simcore::WallAccum>,
    now: SimTime,
    connected: u32,
    refused: u32,
    published: u64,
    broker_forwards: u64,
}

/// Reduce one finished shard to its `Send` partial: collectors move out
/// of the service map, `Rc` handles collapse to sums. Ghost fleets never
/// execute, so their handles stay zero and the cross-shard sums equal
/// the serial values.
fn extract_partial(sim: &mut Simulation, world: &WorldHandles) -> ShardPartial {
    ShardPartial {
        kernel: sim.stats(),
        hotpath: sim.hotpath(),
        rtt: std::mem::replace(
            sim.service_mut::<RttCollector>()
                .expect("collector registered"),
            RttCollector::new(),
        ),
        vm: std::mem::replace(
            sim.service_mut::<VmstatLog>().expect("vmstat registered"),
            VmstatLog::new(),
        ),
        trace: sim
            .service_mut::<TraceCollector>()
            .map(|t| std::mem::replace(t, TraceCollector::new())),
        fault: sim.service::<FaultInjector>().map(|inj| inj.stats),
        profiler: sim
            .service_mut::<simprof::Profiler>()
            .map(|p| std::mem::replace(p, simprof::Profiler::new())),
        metrics: sim
            .service_mut::<telemetry::MetricsRegistry>()
            .map(std::mem::take),
        wallscope: sim
            .service_mut::<simscope::WallScope>()
            .map(|w| std::mem::replace(w, simscope::WallScope::new())),
        slo: sim.service_mut::<SloCollector>().map(std::mem::take),
        os_busy: sim
            .service::<OsModel>()
            .expect("os registered")
            .total_submitted_work(),
        os_wall: sim.service::<OsModel>().and_then(|os| os.wall_metering()),
        now: sim.now(),
        connected: world.fleet_stats.iter().map(|s| s.borrow().connected).sum(),
        refused: world.fleet_stats.iter().map(|s| s.borrow().refused).sum(),
        published: world.fleet_stats.iter().map(|s| s.borrow().published).sum(),
        broker_forwards: world
            .broker_stats
            .iter()
            .map(|s| s.borrow().forwarded)
            .sum(),
    }
}

/// The shard executor's injection hook: materialize the connection a
/// cross-shard network frame rides on (the receiving shard may never
/// have seen it — the opener lives elsewhere), then hand the envelope to
/// the kernel. Non-network payloads inject as-is.
fn inject_delivery(sim: &mut Simulation, env: RemoteEnvelope) {
    if let Some(d) = env.payload.downcast_ref::<simnet::Delivery>() {
        let (conn, meta) = (d.conn, d.meta);
        sim.service_mut::<NetworkFabric>()
            .expect("fabric registered")
            .ensure_conn(conn, meta);
    }
    sim.inject_remote(env);
}

/// The whole-run `probes_in_flight` gauge series: +1 at each publish
/// instant, −1 at each delivery instant, cumulative. No single shard can
/// compute it (publisher and subscriber may live on different shards),
/// so it is derived from the *merged* RTT collector and spliced into the
/// merged metrics registry at the sample instants — exactly where the
/// old serial sampler used to refresh it.
fn probes_in_flight_series(rtt: &RttCollector) -> Vec<(SimTime, f64)> {
    let mut deltas: Vec<(SimTime, i64)> = Vec::new();
    for id in rtt.probe_ids() {
        let Some(i) = rtt.instants(id) else { continue };
        deltas.push((i.before_sending, 1));
        if let Some(t) = i.after_receiving {
            deltas.push((t, -1));
        }
    }
    deltas.sort_unstable();
    let mut series: Vec<(SimTime, f64)> = Vec::new();
    let mut level = 0i64;
    for (t, d) in deltas {
        level += d;
        match series.last_mut() {
            Some(last) if last.0 == t => last.1 = level as f64,
            _ => series.push((t, level as f64)),
        }
    }
    series
}

/// Fuse the per-shard partials into the final result. Every collector
/// goes through its canonical merge — the same code for one partial
/// (serial) as for many — so all derived artifacts are a function of the
/// merged state only, never of the shard layout.
fn merge_results(
    spec: &ExperimentSpec,
    lay: &Layout,
    partials: Vec<ShardPartial>,
    wall_secs: f64,
) -> ExperimentResult {
    let server_nodes: Vec<NodeId> = (0..lay.server_count).map(|i| NodeId(i as u16)).collect();
    let now = partials[0].now;
    debug_assert!(
        partials.iter().all(|p| p.now == now),
        "shard clocks disagree at end of run"
    );

    let mut kernels = Vec::new();
    let mut hotpaths = Vec::new();
    let mut rtts = Vec::new();
    let mut vms = Vec::new();
    let mut traces = Vec::new();
    let mut faults = Vec::new();
    let mut profilers = Vec::new();
    let mut metrics_parts = Vec::new();
    let mut wallscopes = Vec::new();
    let mut slo_parts = Vec::new();
    let mut os_walls = Vec::new();
    let mut kernel_busy = SimDuration::ZERO;
    let (mut connected, mut refused) = (0u32, 0u32);
    let (mut published, mut broker_forwards) = (0u64, 0u64);
    for p in partials {
        kernels.push(p.kernel);
        hotpaths.push(p.hotpath);
        rtts.push(p.rtt);
        vms.push(p.vm);
        traces.push(p.trace);
        faults.push(p.fault);
        profilers.push(p.profiler);
        metrics_parts.push(p.metrics);
        wallscopes.push(p.wallscope);
        slo_parts.push(p.slo);
        os_walls.push(p.os_wall);
        kernel_busy += p.os_busy;
        connected += p.connected;
        refused += p.refused;
        published += p.published;
        broker_forwards += p.broker_forwards;
    }

    let kernel = simcore::KernelStats::merged(&kernels);
    let rtt = RttCollector::merged(rtts);
    let summary = rtt.summary();
    let vm = VmstatLog::merged(vms);
    // CPU idle over the steady publishing window (excludes the ramp).
    let idles: Vec<f64> = server_nodes
        .iter()
        .filter_map(|&n| {
            vm.mean_idle_between(n, lay.steady_from, lay.steady_to.max(lay.steady_from))
        })
        .collect();
    let server_idle = if idles.is_empty() {
        1.0
    } else {
        idles.iter().sum::<f64>() / idles.len() as f64
    };
    let mems: Vec<u64> = server_nodes
        .iter()
        .filter_map(|&n| vm.peak_mem(n))
        .collect();
    let server_mem_mb = mems
        .iter()
        .map(|&m| m as f64 / (1024.0 * 1024.0))
        .fold(0.0f64, f64::max);

    let trace = if spec.trace {
        let tr = TraceCollector::merged(traces.into_iter().flatten());
        let trace_summary = TraceSummary::from_collector(&tr);
        // Cross-check: every probe the RttCollector saw must decompose to
        // the exact same four instants in the trace. Any disagreement is
        // an instrumentation bug in one of the two independent paths.
        let mut disagreements = Vec::new();
        for id in rtt.probe_ids() {
            let Some(i) = rtt.instants(id) else { continue };
            if let Some(err) = trace_summary.check_probe(
                TraceId(id.0),
                i.before_sending,
                i.after_sending,
                i.before_receiving,
                i.after_receiving,
            ) {
                disagreements.push(err);
            }
        }
        // Hard assertion in test/debug builds: the two instrumentation
        // paths share nothing but the message, so any disagreement is a
        // bug, not a tolerable measurement artifact. Release harness
        // runs still surface the list via `TraceArtifacts` + a warning.
        debug_assert!(
            disagreements.is_empty(),
            "trace/RttCollector cross-check failed: {disagreements:?}"
        );
        // Unified resource log: vmstat rows ride along with the counter
        // samples in the JSONL export.
        let resources: Vec<simtrace::export::ResourceRow> = vm
            .samples()
            .iter()
            .map(|s| simtrace::export::ResourceRow {
                at: s.at,
                node: u64::from(s.node.0),
                idle: s.idle,
                mem_bytes: s.mem_bytes,
            })
            .collect();
        Some(TraceArtifacts {
            jsonl: simtrace::export::jsonl(&tr, &resources),
            chrome: simtrace::export::chrome_trace(&tr),
            summary: trace_summary,
            disagreements,
        })
    } else {
        None
    };

    // Freshness plane: keyed union of the per-shard collectors (the
    // publisher and the subscriber of one reading may live on different
    // shards), then every statistic derives from the merged record set.
    let slo_state = spec.slo.as_ref().map(|slo_spec| {
        let col = SloCollector::merged(slo_parts.into_iter().flatten());
        let report = col.report(
            slo_spec,
            now,
            simslo::SAMPLE_CADENCE,
            simslo::DEFAULT_WINDOW,
        );
        // The carried stamp and the collector's own publish record are
        // independent paths to the same instant; a disagreement is an
        // instrumentation bug, exactly like the trace cross-check above.
        debug_assert_eq!(
            report.stamp_disagreements, 0,
            "carried publish stamps disagree with recorded publish instants"
        );
        (col, report)
    });

    let profile = if spec.profile {
        let p = simprof::Profiler::merged(profilers.into_iter().flatten());
        let report = p.report(kernel_busy);
        let mut derived: Vec<(String, Vec<(SimTime, f64)>)> = vec![(
            "probes_in_flight".to_string(),
            probes_in_flight_series(&rtt),
        )];
        if let (Some((col, _)), Some(slo_spec)) = (&slo_state, &spec.slo) {
            derived.extend(col.metric_series(slo_spec.deadline, now, simslo::SAMPLE_CADENCE));
        }
        let metrics =
            telemetry::MetricsRegistry::merged(metrics_parts.into_iter().flatten(), &derived);
        Some(ProfileArtifacts {
            table: report
                .table(format!("{} — self time by component", spec.name))
                .render(),
            collapsed: p.collapsed(),
            prometheus: metrics.prometheus(),
            metrics_csv: metrics.csv(),
            attributed: report.attributed,
            kernel_busy: report.kernel_busy,
            unattributed: report.unattributed,
        })
    } else {
        None
    };

    let scope = {
        let hotpath = hotpaths.into_iter().flatten().reduce(|mut a, b| {
            a.merge(&b);
            a
        });
        let ws = simscope::WallScope::merged(wallscopes.into_iter().flatten());
        let os_wall = os_walls.into_iter().flatten().reduce(|mut a, b| {
            a.merge(b);
            a
        });
        hotpath.map(|hp| {
            let mut report = simscope::HotpathReport::new(&spec.name, wall_secs);
            report.push(simscope::Site::KernelDispatch.name(), hp.dispatch);
            report.push(simscope::Site::KernelQueuePush.name(), hp.queue_push);
            report.push(simscope::Site::KernelQueuePop.name(), hp.queue_pop);
            report.push(
                simscope::Site::NetFabricSend.name(),
                ws.get(simscope::Site::NetFabricSend),
            );
            report.push(
                simscope::Site::JmsMatch.name(),
                ws.get(simscope::Site::JmsMatch),
            );
            if let Some(w) = os_wall {
                report.push(simscope::Site::OsExecute.name(), w);
            }
            ScopeArtifacts {
                json: report.to_json(),
                collapsed: report.collapsed(),
                report,
            }
        })
    };

    let fault_stats = if spec.faults.is_empty() {
        None
    } else {
        Some(FaultStats::merged(faults.into_iter().flatten()))
    };

    let slo = slo_state.map(|(_, report)| SloArtifacts {
        csv: report.csv(),
        report,
    });

    ExperimentResult {
        name: spec.name.clone(),
        generators: spec.generators,
        summary,
        server_idle,
        server_mem_mb,
        connected,
        refused,
        published,
        broker_forwards,
        sim_time: now,
        events: kernel.events_processed,
        trace,
        fault_stats,
        profile,
        kernel,
        scope,
        slo,
        wall_secs,
    }
}

/// Deploy and run one experiment to completion — serially for
/// `spec.shards == 1`, in conservative parallel lockstep otherwise.
/// Same seed + same spec ⇒ byte-identical results at any shard count.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let wall_start = std::time::Instant::now();
    let lay = layout(spec);
    // `GRIDMON_SHARDS` lets CI re-run the entire suite under the
    // parallel kernel without editing every spec: it only raises an
    // unsharded spec (shards == 1), never overrides an explicit choice,
    // and — because sharded runs are byte-identical — every assertion
    // downstream must still hold.
    let env_shards = std::env::var("GRIDMON_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let shards = match env_shards {
        Some(n) if spec.shards <= 1 => n,
        _ => spec.shards.max(1),
    };
    let plan = ShardPlan::new(simnet::partition_nodes(lay.total_nodes, shards), shards);
    let partials: Vec<ShardPartial> = if shards == 1 {
        // Serial fast path: no locality filter, no lockstep rounds — but
        // the identical build and the identical merge pipeline
        // (merged-of-one), so artifacts match sharded runs byte for byte.
        let mut sim = Simulation::new(spec.seed);
        let world = build_world(spec, &lay, &plan, 0, &mut sim);
        sim.run_until(lay.horizon);
        vec![extract_partial(&mut sim, &world)]
    } else {
        let lookahead = calibration::hydra_fabric().base_latency;
        simshard::run_sharded(
            &plan,
            spec.seed,
            lay.horizon,
            lookahead,
            |ix, sim| build_world(spec, &lay, &plan, ix, sim),
            inject_delivery,
            |_, mut sim, world| extract_partial(&mut sim, &world),
        )
    };
    merge_results(spec, &lay, partials, wall_start.elapsed().as_secs_f64())
}

/// Split `total` into `parts` nearly equal chunks.
fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_sums() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(4000, 4), vec![1000; 4]);
        assert_eq!(split_evenly(1, 1), vec![1]);
        assert_eq!(split_evenly(0, 2), vec![0, 0]);
    }

    #[test]
    fn spec_helpers() {
        let spec =
            ExperimentSpec::paper_default("x", SystemUnderTest::NaradaSingle, 800).scaled(10);
        assert_eq!(spec.total_messages(), 8000);
        assert!(!spec.system.is_rgma());
        assert!(SystemUnderTest::RgmaSingle.is_rgma());
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.clone().sharded(4).shards, 4);
    }

    #[test]
    fn small_narada_experiment_runs_end_to_end() {
        let spec = ExperimentSpec::paper_default("smoke/narada", SystemUnderTest::NaradaSingle, 20)
            .scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 100);
        assert_eq!(r.summary.received, 100);
        assert_eq!(r.connected, 20);
        assert_eq!(r.refused, 0);
        assert!(r.summary.rtt_mean_ms > 0.5 && r.summary.rtt_mean_ms < 50.0);
        assert!(r.server_idle > 0.5, "20 conns should leave the broker idle");
        assert!(r.events > 0);
    }

    #[test]
    fn small_gridlog_experiment_runs_end_to_end() {
        let spec =
            ExperimentSpec::paper_default("smoke/gridlog", SystemUnderTest::GridlogSingle, 20)
                .scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 100);
        assert_eq!(r.summary.received, 100, "fault-free log loses nothing");
        assert_eq!(r.connected, 20);
        assert_eq!(r.refused, 0);
        // Produce RTT is linger-dominated: slower than narada's ~5 ms
        // per-message path, far faster than R-GMA's ~905 ms poll chain.
        assert!(
            r.summary.rtt_mean_ms > 1.0 && r.summary.rtt_mean_ms < 600.0,
            "rtt {}",
            r.summary.rtt_mean_ms
        );
        assert!(r.events > 0);
    }

    #[test]
    fn small_rgma_experiment_runs_end_to_end() {
        let spec =
            ExperimentSpec::paper_default("smoke/rgma", SystemUnderTest::RgmaSingle, 10).scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 50);
        assert_eq!(r.summary.received, 50, "warm-up wait prevents loss");
        assert!(
            r.summary.rtt_mean_ms > 100.0,
            "R-GMA is slow: {}",
            r.summary.rtt_mean_ms
        );
        assert!(r.summary.rtt_mean_ms > 0.0);
    }

    #[test]
    fn identical_seeds_identical_results() {
        let spec = ExperimentSpec::paper_default("det/narada", SystemUnderTest::NaradaSingle, 10)
            .scaled(3);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a.summary.rtt_mean_ms, b.summary.rtt_mean_ms);
        assert_eq!(a.events, b.events);
        let mut spec2 = spec.clone();
        spec2.seed += 1;
        let c = run_experiment(&spec2);
        assert_ne!(a.summary.rtt_mean_ms, c.summary.rtt_mean_ms);
    }

    #[test]
    fn slo_plane_accounts_for_every_reading() {
        for system in [
            SystemUnderTest::NaradaSingle,
            SystemUnderTest::GridlogSingle,
            SystemUnderTest::RgmaSingle,
        ] {
            let spec = ExperimentSpec::paper_default("slo/smoke", system, 8)
                .scaled(3)
                .with_slo(SloSpec::grid_default());
            let r = run_experiment(&spec);
            let slo = r.slo.as_ref().expect("slo artifacts present");
            let rep = &slo.report;
            assert_eq!(rep.published, 24, "{system:?}: every publish recorded once");
            assert_eq!(
                rep.on_time + rep.late + rep.lost,
                rep.published,
                "{system:?}: outcomes partition the readings"
            );
            assert!(rep.delivered > 0, "{system:?}: deliveries recorded");
            assert_eq!(rep.stamp_disagreements, 0);
            assert!(slo.csv.starts_with("t_s,metric,value\n"));
            // Fault-free smoke runs at tiny load meet the grid default.
            assert!(rep.compliant, "{system:?}: {rep:?}");
        }
    }

    #[test]
    fn slo_runs_leave_other_artifacts_untouched() {
        let plain =
            ExperimentSpec::paper_default("slo/inert", SystemUnderTest::NaradaSingle, 8).scaled(3);
        let slo = plain.clone().with_slo(SloSpec::grid_default());
        let a = run_experiment(&plain);
        let b = run_experiment(&slo);
        assert!(a.slo.is_none());
        assert_eq!(a.summary.rtt_mean_ms, b.summary.rtt_mean_ms);
        assert_eq!(a.events, b.events);
        assert_eq!(a.kernel.determinism_digest(), b.kernel.determinism_digest());
    }

    #[test]
    fn sharded_slo_report_matches_serial() {
        let spec = ExperimentSpec::paper_default("slo/shard", SystemUnderTest::NaradaSingle, 8)
            .scaled(3)
            .with_slo(SloSpec::grid_default());
        let serial = run_experiment(&spec);
        let sharded = run_experiment(&spec.clone().sharded(2));
        let (a, b) = (serial.slo.unwrap(), sharded.slo.unwrap());
        assert_eq!(a.report, b.report);
        assert_eq!(a.csv, b.csv);
    }

    #[test]
    fn sharded_narada_matches_serial() {
        let spec = ExperimentSpec::paper_default("shard/narada", SystemUnderTest::NaradaSingle, 8)
            .scaled(3);
        let serial = run_experiment(&spec);
        let sharded = run_experiment(&spec.clone().sharded(2));
        assert_eq!(serial.summary.rtt_mean_ms, sharded.summary.rtt_mean_ms);
        assert_eq!(serial.summary.sent, sharded.summary.sent);
        assert_eq!(serial.summary.received, sharded.summary.received);
        assert_eq!(
            serial.kernel.determinism_digest(),
            sharded.kernel.determinism_digest()
        );
        assert_eq!(serial.sim_time, sharded.sim_time);
        assert_eq!(serial.connected, sharded.connected);
        assert_eq!(serial.published, sharded.published);
    }
}
