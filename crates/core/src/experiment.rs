//! Experiment specification, deployment, execution, and result
//! collection — one call reproduces one data point of the paper.

use crate::calibration;
use jms::AckMode;
use narada::{BrokerNetwork, ConnSettings, NaradaConfig};
use powergrid::{
    FleetStatsHandle, GridlogFleet, GridlogFleetConfig, GridlogSubscriber, NaradaFleet,
    NaradaFleetConfig, NaradaSubscriber, RgmaFleet, RgmaFleetConfig, RgmaSubscriber, TABLE_SQL,
};
use rgma::{
    ConsumerControl, ConsumerServlet, ProducerControl, ProducerServlet, RegistryActor, RgmaConfig,
    SecondaryProducer,
};
use simcore::{ActorId, SimDuration, SimTime, Simulation};
use simfault::{FaultDriver, FaultInjector, FaultSchedule, FaultStats};
use simnet::{Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel, ProcessId, VmstatLog, VmstatSampler};
use simtrace::{TraceCollector, TraceId, TraceSampler, TraceSummary};
use telemetry::{ProbeId, RttCollector, RttSummary};

/// Which deployment is under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// One Narada broker on one node.
    NaradaSingle,
    /// A Distributed Broker Network of `brokers` fully-meshed brokers.
    NaradaDbn {
        /// Broker count (paper: 4).
        brokers: usize,
    },
    /// Registry + Primary Producer servlet + Consumer servlet in one
    /// Tomcat on one node.
    RgmaSingle,
    /// Producer servlets on two nodes, Consumer servlets on two nodes
    /// (registry co-located with the first producer node).
    RgmaDistributed,
    /// Single server plus a Secondary Producer in the path (fig 10).
    RgmaSecondary,
    /// One gridlog partitioned-log broker on one node; producers batch
    /// with linger, a two-member consumer group splits the partitions.
    GridlogSingle,
}

impl SystemUnderTest {
    /// Is this an R-GMA deployment?
    pub fn is_rgma(self) -> bool {
        matches!(
            self,
            SystemUnderTest::RgmaSingle
                | SystemUnderTest::RgmaDistributed
                | SystemUnderTest::RgmaSecondary
        )
    }
}

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Human-readable name ("fig7/single/2000", "table2/UDP"…).
    pub name: String,
    /// Deployment.
    pub system: SystemUnderTest,
    /// Total simulated generators (concurrent connections).
    pub generators: usize,
    /// Transport for Narada connections (ignored by R-GMA, always HTTP).
    pub transport: Transport,
    /// JMS acknowledge mode (Narada only).
    pub ack_mode: AckMode,
    /// Payload multiplier (Narada "Triple" test).
    pub payload_repeat: usize,
    /// Publish period per generator.
    pub publish_interval: SimDuration,
    /// Messages per generator.
    pub msgs_per_generator: u32,
    /// Warm-up sleep range before first publish.
    pub warmup: (SimDuration, SimDuration),
    /// RNG seed.
    pub seed: u64,
    /// Use the v1.1.3 broadcast DBN (true) or routed ablation (false).
    pub dbn_broadcast: bool,
    /// Override the R-GMA configuration (None = gLite 3.0 defaults).
    pub rgma_config: Option<RgmaConfig>,
    /// Enable `simtrace` lifecycle tracing. Off by default: no collector
    /// service is registered, so every instrumentation site reduces to
    /// one failed type-map probe.
    pub trace: bool,
    /// Scripted fault schedule. Empty by default: no injector service is
    /// registered and no recovery policy is enabled, so fault-free runs
    /// are byte-identical to builds without fault support.
    pub faults: FaultSchedule,
    /// Enable the virtual-time profiler and the metrics plane. Off by
    /// default: no `Profiler`/`MetricsRegistry` service is registered, so
    /// every charge site reduces to one failed type-map probe and the
    /// run is byte-identical to an unprofiled build.
    pub profile: bool,
    /// Enable wall-clock hot-path attribution (`simscope`). Off by
    /// default: no `WallScope` service is registered and the kernel's
    /// internal timers stay disarmed, so every probe reduces to one
    /// failed type-map probe or one `Option` check. Wall-clock reads
    /// never touch the RNG or the event queue, so scoped runs are
    /// byte-identical to plain runs at a fixed seed.
    pub scope: bool,
}

impl ExperimentSpec {
    /// A paper-faithful spec with the standard settings; customize from
    /// here.
    pub fn paper_default(
        name: impl Into<String>,
        system: SystemUnderTest,
        generators: usize,
    ) -> Self {
        ExperimentSpec {
            name: name.into(),
            system,
            generators,
            transport: Transport::Tcp,
            ack_mode: AckMode::Auto,
            payload_repeat: 1,
            publish_interval: calibration::publish_interval(),
            msgs_per_generator: 180,
            warmup: calibration::warmup_range(),
            seed: 0x9e3779b97f4a7c15,
            dbn_broadcast: true,
            rgma_config: None,
            trace: false,
            faults: FaultSchedule::new(),
            profile: false,
            scope: false,
        }
    }

    /// Enable per-message lifecycle tracing for this run.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable the virtual-time profiler and the time-series metrics
    /// plane for this run.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enable wall-clock hot-path attribution for this run.
    pub fn scoped(mut self) -> Self {
        self.scope = true;
        self
    }

    /// Inject a scripted fault schedule. Also arms the default client
    /// recovery policies (Narada reconnect, R-GMA HTTP retry and
    /// soft-state refresh) unless an explicit `rgma_config` overrides
    /// them.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// A scaled-down variant for tests and criterion benches: fewer
    /// messages per generator, same mechanisms.
    pub fn scaled(mut self, msgs: u32) -> Self {
        self.msgs_per_generator = msgs;
        self
    }

    /// Total messages this spec will publish.
    pub fn total_messages(&self) -> u64 {
        self.generators as u64 * u64::from(self.msgs_per_generator)
    }
}

/// Trace artifacts produced by a traced run (`spec.trace = true`).
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// JSON Lines export: every event plus the unified resource log
    /// (counter samples merged with vmstat rows).
    pub jsonl: String,
    /// Chrome `trace_event` JSON (open in Perfetto / `chrome://tracing`).
    pub chrome: String,
    /// Per-message PRT/PT/SRT reconstruction.
    pub summary: TraceSummary,
    /// Cross-check failures against the independent `RttCollector`
    /// instants. Non-empty means one instrumentation path is buggy.
    pub disagreements: Vec<String>,
}

/// Profiler and metrics-plane artifacts produced by a profiled run
/// (`spec.profile = true`).
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// Rendered per-component self-time table (the `repro --profile`
    /// terminal output).
    pub table: String,
    /// Flamegraph-compatible collapsed-stack lines
    /// (`path;to;frame <micros>`).
    pub collapsed: String,
    /// Prometheus text-exposition snapshot of the metrics registry at
    /// the end of the run.
    pub prometheus: String,
    /// Deterministic time-series CSV (`t_s,metric,value`) sampled on the
    /// vmstat cadence.
    pub metrics_csv: String,
    /// Simulated busy time the profiler attributed to components.
    pub attributed: SimDuration,
    /// Total simulated busy time submitted to every CPU in the cluster.
    /// The table's TOTAL row equals this (conservation).
    pub kernel_busy: SimDuration,
    /// `kernel_busy - attributed`; non-zero means a charge site is
    /// missing somewhere.
    pub unattributed: SimDuration,
}

/// Wall-clock hot-path artifacts produced by a scoped run
/// (`spec.scope = true`).
#[derive(Debug, Clone)]
pub struct ScopeArtifacts {
    /// The parsed per-site attribution report.
    pub report: simscope::HotpathReport,
    /// `gridmon-hotpath/1` JSON.
    pub json: String,
    /// Flamegraph-compatible collapsed-stack lines (simprof's format,
    /// wall-clock microseconds).
    pub collapsed: String,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Spec name.
    pub name: String,
    /// Requested connection count.
    pub generators: usize,
    /// Message telemetry (RTT, percentiles, loss, decomposition).
    pub summary: RttSummary,
    /// Mean CPU idle fraction across *server* nodes.
    pub server_idle: f64,
    /// Peak memory consumption across server nodes, MB (paper metric).
    pub server_mem_mb: f64,
    /// Connections accepted by the middleware.
    pub connected: u32,
    /// Connections refused (OOM / thread exhaustion).
    pub refused: u32,
    /// Messages the fleets attempted to publish.
    pub published: u64,
    /// Wasted inter-broker messages (DBN broadcast deficiency indicator).
    pub broker_forwards: u64,
    /// Virtual time the run covered.
    pub sim_time: SimTime,
    /// Kernel events processed (cost indicator).
    pub events: u64,
    /// Trace exports and cross-check (only when `spec.trace` was set).
    pub trace: Option<TraceArtifacts>,
    /// Graceful-degradation accounting (only when `spec.faults` was
    /// non-empty): dropped vs delayed vs recovered, per cause.
    pub fault_stats: Option<FaultStats>,
    /// Profiler + metrics artifacts (only when `spec.profile` was set).
    pub profile: Option<ProfileArtifacts>,
    /// Kernel event accounting (always on): per-type counts, timer vs.
    /// message mix, queue-depth high-watermark and depth samples.
    pub kernel: simcore::KernelStats,
    /// Wall-clock hot-path attribution (only when `spec.scope` was set).
    /// Non-deterministic by nature (wall-clock), but producing it never
    /// perturbs the simulation.
    pub scope: Option<ScopeArtifacts>,
    /// Host wall-clock seconds this run took (perf-baseline input; the
    /// only non-deterministic field).
    pub wall_secs: f64,
}

/// Deploy and run one experiment to completion.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let wall_start = std::time::Instant::now();
    let mut sim = Simulation::new(spec.seed);

    // --- Cluster ---------------------------------------------------
    let mut os = OsModel::new();
    let server_count = match spec.system {
        SystemUnderTest::NaradaSingle
        | SystemUnderTest::RgmaSingle
        | SystemUnderTest::GridlogSingle => 1,
        SystemUnderTest::NaradaDbn { brokers } => brokers,
        SystemUnderTest::RgmaDistributed => 4,
        SystemUnderTest::RgmaSecondary => 2,
    };
    let mut server_nodes = Vec::new();
    for i in 0..server_count {
        server_nodes.push(os.add_node(calibration::hydra_server(format!("hydra{}", i + 1))));
    }
    // Client nodes: enough for the fleet (≤1000 generators per node; the
    // R-GMA runs used two publishing nodes at 1000 connections, so cap at
    // 500 there — which also spreads connections over both producer
    // servlets in the distributed deployment), plus one node for the
    // subscriber program.
    let per_node_cap = if spec.system.is_rgma() {
        calibration::MAX_GENERATORS_PER_NODE / 2
    } else {
        calibration::MAX_GENERATORS_PER_NODE
    };
    let fleet_nodes_n = spec.generators.div_ceil(per_node_cap).max(1);
    let mut client_nodes = Vec::new();
    for i in 0..=fleet_nodes_n {
        client_nodes.push(os.add_node(calibration::hydra_client(format!(
            "hydra{}",
            server_count + i + 1
        ))));
    }
    let total_nodes = server_count + client_nodes.len();
    sim.add_service(NetworkFabric::new(calibration::hydra_fabric(), total_nodes));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());
    if spec.trace {
        sim.add_service(TraceCollector::new());
        // Counters sampled on the same cadence as the vmstat sampler so
        // the unified resource log interleaves 1:1.
        sim.add_actor(TraceSampler::new(SimDuration::from_secs(1)));
    }
    if !spec.faults.is_empty() {
        // The injector owns a private RNG stream, so registering it does
        // not perturb the kernel RNG; with an empty schedule it is not
        // registered at all and every fault probe is a no-op.
        sim.add_service(FaultInjector::new(spec.seed));
    }
    if spec.profile {
        sim.add_service(simprof::Profiler::new());
        sim.add_service(telemetry::MetricsRegistry::new());
    }
    if spec.scope {
        // Arm the kernel's internal dispatch/queue timers and register the
        // service the simnet/narada probes look up. Wall-clock reads never
        // touch simulation state, so this cannot change the run.
        sim.enable_hotpath_timing();
        sim.add_service(simscope::WallScope::new());
    }

    // Server processes.
    let server_procs: Vec<ProcessId> = server_nodes
        .iter()
        .map(|&n| {
            os.add_process(
                n,
                if spec.system.is_rgma() {
                    calibration::rgma_server_process()
                } else {
                    calibration::narada_broker_process()
                },
            )
        })
        .collect();
    // Driver processes.
    let client_procs: Vec<ProcessId> = client_nodes
        .iter()
        .map(|&n| os.add_process(n, calibration::driver_process()))
        .collect();
    if spec.scope {
        // `execute_metered` has no Context access, so the OS model meters
        // its own wall time instead of using the WallScope service.
        os.enable_wall_metering();
    }
    sim.add_service(os);
    sim.add_actor(VmstatSampler::new(
        SimDuration::from_secs(1),
        server_nodes.clone(),
    ));
    // Stop-the-world GC pauses on the middleware JVMs (the latency-tail
    // mechanism; see simos::gc).
    let gc_cfg = if spec.system.is_rgma() {
        simos::GcConfig::rgma_server()
    } else {
        simos::GcConfig::narada_broker()
    };
    for (&node, &proc) in server_nodes.iter().zip(&server_procs) {
        sim.add_actor(simos::GcPauser::new(gc_cfg.clone(), node, proc));
    }

    // --- Middleware + workload -------------------------------------
    let mut fleet_stats: Vec<FleetStatsHandle> = Vec::new();
    let mut sub_stats: Vec<FleetStatsHandle> = Vec::new();
    let mut broker_stats: Vec<narada::StatsHandle> = Vec::new();
    // Fault targets, filled in by the deployment branches below.
    let mut fault_brokers: Vec<ActorId> = Vec::new();
    let mut fault_registry: Option<ActorId> = None;

    let per_fleet = split_evenly(spec.generators, fleet_nodes_n);
    match spec.system {
        SystemUnderTest::NaradaSingle | SystemUnderTest::NaradaDbn { .. } => {
            let ncfg = if spec.dbn_broadcast {
                NaradaConfig::v1_1_3()
            } else {
                NaradaConfig::routed()
            };
            // Brokers.
            let hosts: Vec<(NodeId, ProcessId)> = server_nodes
                .iter()
                .copied()
                .zip(server_procs.iter().copied())
                .collect();
            let endpoints: Vec<Endpoint> = if hosts.len() == 1 {
                let broker = narada::Broker::new(ncfg.clone(), hosts[0].0, hosts[0].1);
                broker_stats.push(broker.stats_handle());
                let id = sim.add_actor(broker);
                vec![Endpoint::new(hosts[0].0, id)]
            } else {
                let network =
                    BrokerNetwork::deploy(&mut sim, &ncfg, &hosts, SimDuration::from_millis(200));
                broker_stats.extend(network.stats.iter().cloned());
                network.endpoints
            };
            fault_brokers = endpoints.iter().map(|ep| ep.actor).collect();
            let settings = ConnSettings {
                transport: spec.transport,
                ack_mode: spec.ack_mode,
                reconnect: if spec.faults.is_empty() {
                    None
                } else {
                    Some(narada::ReconnectPolicy::default())
                },
            };
            // Fig 5 topology: "Publishers connect to publishing brokers.
            // Subscribers connect to subscribing brokers." The last broker
            // serves subscribers; the rest take publisher connections, so
            // every measured delivery crosses the broker network — which
            // v1.1.3 floods to every peer ("data congestion").
            let pub_eps: Vec<Endpoint> = if endpoints.len() > 1 {
                endpoints[..endpoints.len() - 1].to_vec()
            } else {
                endpoints.clone()
            };
            let sub_eps: Vec<Endpoint> = if endpoints.len() > 1 {
                endpoints[endpoints.len() - 1..].to_vec()
            } else {
                endpoints.clone()
            };
            // Fleets: fleet i connects to broker i % n.
            let mut first_id = 0u32;
            for (i, &n_gens) in per_fleet.iter().enumerate() {
                let broker_ep = pub_eps[i % pub_eps.len()];
                let fleet = NaradaFleet::new(NaradaFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    broker_ep,
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::narada_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    settings,
                    payload_repeat: spec.payload_repeat,
                    msgs_per_generator: spec.msgs_per_generator,
                    narada: ncfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // Subscribers: one per subscribing broker, on the dedicated
            // client node.
            let sub_node = *client_nodes.last().expect("at least one client node");
            for ep in &sub_eps {
                let sub = NaradaSubscriber::new(sub_node, *ep, settings, ncfg.clone());
                sub_stats.push(sub.stats_handle());
                sim.add_actor(sub);
            }
        }
        SystemUnderTest::GridlogSingle => {
            let gcfg = gridlog::GridlogConfig::default();
            let broker = gridlog::LogBroker::new(gcfg.clone(), server_nodes[0], server_procs[0]);
            let id = sim.add_actor(broker);
            let broker_ep = Endpoint::new(server_nodes[0], id);
            fault_brokers = vec![id];
            let reconnect = if spec.faults.is_empty() {
                None
            } else {
                Some(gridlog::ReconnectPolicy::default())
            };
            // The JMS acknowledge axis maps onto Kafka's offset axis:
            // CLIENT_ACKNOWLEDGE ↦ committed-offset resume (zero loss
            // across a broker crash), AUTO_ACKNOWLEDGE ↦
            // auto.offset.reset=latest (the crash window is lost).
            let reset = if spec.ack_mode == AckMode::Client {
                gridlog::OffsetReset::Committed
            } else {
                gridlog::OffsetReset::Latest
            };
            let mut first_id = 0u32;
            for (i, &n_gens) in per_fleet.iter().enumerate() {
                let fleet = GridlogFleet::new(GridlogFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    broker_ep,
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::narada_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    payload_repeat: spec.payload_repeat,
                    msgs_per_generator: spec.msgs_per_generator,
                    reconnect,
                    gridlog: gcfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // One consumer host with a two-member group on the dedicated
            // client node: the partitions split between the members.
            let sub_node = *client_nodes.last().expect("at least one client node");
            let sub = GridlogSubscriber::new(sub_node, broker_ep, 2, reset, reconnect, gcfg);
            sub_stats.push(sub.stats_handle());
            sim.add_actor(sub);
        }
        SystemUnderTest::RgmaSingle
        | SystemUnderTest::RgmaDistributed
        | SystemUnderTest::RgmaSecondary => {
            let mut rcfg = spec
                .rgma_config
                .clone()
                .unwrap_or_else(RgmaConfig::glite_3_0);
            if !spec.faults.is_empty() && spec.rgma_config.is_none() {
                // Default recovery policies ride along with the faults:
                // insert retry-on-5xx and soft-state re-registration.
                rcfg.insert_retry = Some(rgma::HttpRetryPolicy::default());
                rcfg.soft_state_refresh = Some(SimDuration::from_secs(10));
            }
            // Registry always on server node 0.
            let reg = sim.add_actor(RegistryActor::new(
                rcfg.clone(),
                server_nodes[0],
                server_procs[0],
            ));
            fault_registry = Some(reg);
            let reg_ep = Endpoint::new(server_nodes[0], reg);
            // Producer/Consumer servlets.
            let (prod_hosts, cons_hosts): (Vec<usize>, Vec<usize>) = match spec.system {
                SystemUnderTest::RgmaSingle | SystemUnderTest::RgmaSecondary => (vec![0], vec![0]),
                SystemUnderTest::RgmaDistributed => (vec![0, 1], vec![2, 3]),
                _ => unreachable!(),
            };
            let mut prod_eps = Vec::new();
            for &h in &prod_hosts {
                let p = sim.add_actor(ProducerServlet::new(
                    rcfg.clone(),
                    server_nodes[h],
                    server_procs[h],
                    reg_ep,
                ));
                sim.schedule(
                    SimDuration::ZERO,
                    p,
                    Box::new(ProducerControl::DeclareTable {
                        sql: TABLE_SQL.into(),
                    }),
                );
                prod_eps.push(Endpoint::new(server_nodes[h], p));
            }
            let mut cons_eps = Vec::new();
            for &h in &cons_hosts {
                let c = sim.add_actor(ConsumerServlet::new(
                    rcfg.clone(),
                    server_nodes[h],
                    server_procs[h],
                    reg_ep,
                ));
                sim.schedule(
                    SimDuration::ZERO,
                    c,
                    Box::new(ConsumerControl::DeclareTable {
                        sql: TABLE_SQL.into(),
                    }),
                );
                cons_eps.push(Endpoint::new(server_nodes[h], c));
            }
            // The fig-10 chain: a Secondary Producer on the second node.
            let subscriber_table = if spec.system == SystemUnderTest::RgmaSecondary {
                let sp = SecondaryProducer::new(
                    rcfg.clone(),
                    server_nodes[1],
                    server_procs[1],
                    reg_ep,
                    powergrid::TABLE,
                    "generator_archive",
                );
                sim.add_actor(sp);
                "generator_archive"
            } else {
                powergrid::TABLE
            };
            // Fleets spread over producer servlets.
            let mut first_id = 0u32;
            for (i, &n_gens) in per_fleet.iter().enumerate() {
                let fleet = RgmaFleet::new(RgmaFleetConfig {
                    node: client_nodes[i],
                    proc: client_procs[i],
                    producer_ep: prod_eps[i % prod_eps.len()],
                    n_generators: n_gens,
                    first_id,
                    creation_interval: calibration::rgma_creation_interval(),
                    warmup: spec.warmup,
                    publish_interval: spec.publish_interval,
                    msgs_per_generator: spec.msgs_per_generator,
                    rgma: rcfg.clone(),
                });
                fleet_stats.push(fleet.stats_handle());
                sim.add_actor(fleet);
                first_id += n_gens as u32;
            }
            // One subscriber per consumer servlet.
            let sub_node = *client_nodes.last().expect("at least one client node");
            for ep in &cons_eps {
                let sub = RgmaSubscriber::new(
                    sub_node,
                    *ep,
                    format!("SELECT * FROM {subscriber_table}"),
                    rcfg.clone(),
                );
                sub_stats.push(sub.stats_handle());
                sim.add_actor(sub);
            }
        }
    }

    // The driver is added last so its `on_start` timers land after every
    // deployment actor exists; targets that a schedule names but the
    // deployment lacks (e.g. a registry in a Narada run) are ignored.
    if !spec.faults.is_empty() {
        sim.add_actor(FaultDriver::new(
            spec.faults.clone(),
            fault_brokers,
            fault_registry,
        ));
    }

    // --- Run --------------------------------------------------------
    let creation_interval = if spec.system.is_rgma() {
        calibration::rgma_creation_interval()
    } else {
        calibration::narada_creation_interval()
    };
    let max_fleet = per_fleet.iter().copied().max().unwrap_or(0) as u64;
    let ramp = creation_interval.saturating_mul(max_fleet);
    let publishing = spec
        .publish_interval
        .saturating_mul(u64::from(spec.msgs_per_generator));
    let drain = if spec.system == SystemUnderTest::RgmaSecondary {
        SimDuration::from_secs(120)
    } else if spec.system.is_rgma() {
        SimDuration::from_secs(30)
    } else {
        SimDuration::from_secs(10)
    };
    let horizon = SimTime::ZERO + ramp + spec.warmup.1 + publishing + drain;
    let steady_from = SimTime::ZERO + ramp + spec.warmup.1;
    let steady_to = SimTime::ZERO + ramp + publishing;
    sim.run_until(horizon);

    // --- Collect ----------------------------------------------------
    let summary = sim
        .service::<RttCollector>()
        .expect("collector registered")
        .summary();
    let vm = sim.service::<VmstatLog>().expect("vmstat registered");
    // CPU idle over the steady publishing window (excludes the ramp).
    let idles: Vec<f64> = server_nodes
        .iter()
        .filter_map(|&n| vm.mean_idle_between(n, steady_from, steady_to.max(steady_from)))
        .collect();
    let server_idle = if idles.is_empty() {
        1.0
    } else {
        idles.iter().sum::<f64>() / idles.len() as f64
    };
    let mems: Vec<u64> = server_nodes
        .iter()
        .filter_map(|&n| vm.peak_mem(n))
        .collect();
    let server_mem_mb = mems
        .iter()
        .map(|&m| m as f64 / (1024.0 * 1024.0))
        .fold(0.0f64, f64::max);
    let connected = fleet_stats.iter().map(|s| s.borrow().connected).sum();
    let refused = fleet_stats.iter().map(|s| s.borrow().refused).sum();
    let published = fleet_stats.iter().map(|s| s.borrow().published).sum();
    let broker_forwards = broker_stats.iter().map(|s| s.borrow().forwarded).sum();

    let trace = sim.service::<TraceCollector>().map(|tr| {
        let rtt = sim.service::<RttCollector>().expect("collector registered");
        let trace_summary = TraceSummary::from_collector(tr);
        // Cross-check: every probe the RttCollector saw must decompose to
        // the exact same four instants in the trace. Any disagreement is
        // an instrumentation bug in one of the two independent paths.
        let mut disagreements = Vec::new();
        for sent in 0..summary.sent {
            let id = ProbeId(sent);
            let Some(i) = rtt.instants(id) else { continue };
            if let Some(err) = trace_summary.check_probe(
                TraceId(id.0),
                i.before_sending,
                i.after_sending,
                i.before_receiving,
                i.after_receiving,
            ) {
                disagreements.push(err);
            }
        }
        // Hard assertion in test/debug builds: the two instrumentation
        // paths share nothing but the message, so any disagreement is a
        // bug, not a tolerable measurement artifact. Release harness
        // runs still surface the list via `TraceArtifacts` + a warning.
        debug_assert!(
            disagreements.is_empty(),
            "trace/RttCollector cross-check failed: {disagreements:?}"
        );
        // Unified resource log: vmstat rows ride along with the counter
        // samples in the JSONL export.
        let resources: Vec<simtrace::export::ResourceRow> = vm
            .samples()
            .iter()
            .map(|s| simtrace::export::ResourceRow {
                at: s.at,
                node: u64::from(s.node.0),
                idle: s.idle,
                mem_bytes: s.mem_bytes,
            })
            .collect();
        TraceArtifacts {
            jsonl: simtrace::export::jsonl(tr, &resources),
            chrome: simtrace::export::chrome_trace(tr),
            summary: trace_summary,
            disagreements,
        }
    });

    let profile = sim.service::<simprof::Profiler>().map(|p| {
        let kernel_busy = sim
            .service::<OsModel>()
            .expect("os registered")
            .total_submitted_work();
        let report = p.report(kernel_busy);
        let metrics = sim
            .service::<telemetry::MetricsRegistry>()
            .expect("registered alongside the profiler");
        ProfileArtifacts {
            table: report
                .table(format!("{} — self time by component", spec.name))
                .render(),
            collapsed: p.collapsed(),
            prometheus: metrics.prometheus(),
            metrics_csv: metrics.csv(),
            attributed: report.attributed,
            kernel_busy: report.kernel_busy,
            unattributed: report.unattributed,
        }
    });

    let wall_secs = wall_start.elapsed().as_secs_f64();
    let scope = sim.hotpath().map(|hp| {
        let mut report = simscope::HotpathReport::new(&spec.name, wall_secs);
        report.push(simscope::Site::KernelDispatch.name(), hp.dispatch);
        report.push(simscope::Site::KernelQueuePush.name(), hp.queue_push);
        report.push(simscope::Site::KernelQueuePop.name(), hp.queue_pop);
        if let Some(ws) = sim.service::<simscope::WallScope>() {
            report.push(
                simscope::Site::NetFabricSend.name(),
                ws.get(simscope::Site::NetFabricSend),
            );
            report.push(
                simscope::Site::JmsMatch.name(),
                ws.get(simscope::Site::JmsMatch),
            );
        }
        if let Some(os_wall) = sim.service::<OsModel>().and_then(|os| os.wall_metering()) {
            report.push(simscope::Site::OsExecute.name(), os_wall);
        }
        ScopeArtifacts {
            json: report.to_json(),
            collapsed: report.collapsed(),
            report,
        }
    });

    let kernel = sim.stats();
    ExperimentResult {
        name: spec.name.clone(),
        generators: spec.generators,
        summary,
        server_idle,
        server_mem_mb,
        connected,
        refused,
        published,
        broker_forwards,
        sim_time: sim.now(),
        events: kernel.events_processed,
        trace,
        fault_stats: sim.service::<FaultInjector>().map(|inj| inj.stats),
        profile,
        kernel,
        scope,
        wall_secs,
    }
}

/// Split `total` into `parts` nearly equal chunks.
fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_sums() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(4000, 4), vec![1000; 4]);
        assert_eq!(split_evenly(1, 1), vec![1]);
        assert_eq!(split_evenly(0, 2), vec![0, 0]);
    }

    #[test]
    fn spec_helpers() {
        let spec =
            ExperimentSpec::paper_default("x", SystemUnderTest::NaradaSingle, 800).scaled(10);
        assert_eq!(spec.total_messages(), 8000);
        assert!(!spec.system.is_rgma());
        assert!(SystemUnderTest::RgmaSingle.is_rgma());
    }

    #[test]
    fn small_narada_experiment_runs_end_to_end() {
        let spec = ExperimentSpec::paper_default("smoke/narada", SystemUnderTest::NaradaSingle, 20)
            .scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 100);
        assert_eq!(r.summary.received, 100);
        assert_eq!(r.connected, 20);
        assert_eq!(r.refused, 0);
        assert!(r.summary.rtt_mean_ms > 0.5 && r.summary.rtt_mean_ms < 50.0);
        assert!(r.server_idle > 0.5, "20 conns should leave the broker idle");
        assert!(r.events > 0);
    }

    #[test]
    fn small_gridlog_experiment_runs_end_to_end() {
        let spec =
            ExperimentSpec::paper_default("smoke/gridlog", SystemUnderTest::GridlogSingle, 20)
                .scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 100);
        assert_eq!(r.summary.received, 100, "fault-free log loses nothing");
        assert_eq!(r.connected, 20);
        assert_eq!(r.refused, 0);
        // Produce RTT is linger-dominated: slower than narada's ~5 ms
        // per-message path, far faster than R-GMA's ~905 ms poll chain.
        assert!(
            r.summary.rtt_mean_ms > 1.0 && r.summary.rtt_mean_ms < 600.0,
            "rtt {}",
            r.summary.rtt_mean_ms
        );
        assert!(r.events > 0);
    }

    #[test]
    fn small_rgma_experiment_runs_end_to_end() {
        let spec =
            ExperimentSpec::paper_default("smoke/rgma", SystemUnderTest::RgmaSingle, 10).scaled(5);
        let r = run_experiment(&spec);
        assert_eq!(r.summary.sent, 50);
        assert_eq!(r.summary.received, 50, "warm-up wait prevents loss");
        assert!(
            r.summary.rtt_mean_ms > 100.0,
            "R-GMA is slow: {}",
            r.summary.rtt_mean_ms
        );
        assert!(r.summary.rtt_mean_ms > 0.0);
    }

    #[test]
    fn identical_seeds_identical_results() {
        let spec = ExperimentSpec::paper_default("det/narada", SystemUnderTest::NaradaSingle, 10)
            .scaled(3);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a.summary.rtt_mean_ms, b.summary.rtt_mean_ms);
        assert_eq!(a.events, b.events);
        let mut spec2 = spec.clone();
        spec2.seed += 1;
        let c = run_experiment(&spec2);
        assert_ne!(a.summary.rtt_mean_ms, c.summary.rtt_mean_ms);
    }
}
