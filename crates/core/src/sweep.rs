//! Parallel experiment execution.
//!
//! Each experiment is a self-contained deterministic simulation, so a
//! sweep is embarrassingly parallel: a shared work counter feeding one
//! worker per core, with results sent back over an mpsc channel. (This
//! is the project's parallel surface — within one simulation the event
//! loop is inherently sequential.)

use crate::experiment::{run_experiment, ExperimentResult, ExperimentSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run all specs, using up to `threads` workers (0 = one per core).
/// Results come back in the input order.
pub fn run_all(specs: &[ExperimentSpec], threads: usize) -> Vec<ExperimentResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(4)
    } else {
        threads
    }
    .min(specs.len().max(1));

    let next = AtomicUsize::new(0);
    let (result_tx, result_rx) = mpsc::channel::<(usize, ExperimentResult)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(ix) else { return };
                let result = run_experiment(spec);
                if result_tx.send((ix, result)).is_err() {
                    return;
                }
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<ExperimentResult>> = (0..specs.len()).map(|_| None).collect();
        while let Ok((ix, result)) = result_rx.recv() {
            slots[ix] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task produced a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SystemUnderTest;
    use proptest::prelude::*;

    /// A small random spec: any contender, a random fleet size, seed,
    /// and shard count — the whole space `run_all` must be order- and
    /// thread-count-invariant over.
    fn arb_spec() -> impl Strategy<Value = ExperimentSpec> {
        (0..3usize, 2..8usize, any::<u64>(), 1..4usize).prop_map(|(sys, gens, seed, shards)| {
            let system = [
                SystemUnderTest::NaradaSingle,
                SystemUnderTest::GridlogSingle,
                SystemUnderTest::RgmaSingle,
            ][sys];
            let mut spec = ExperimentSpec::paper_default(
                format!("sweep/{sys}/{gens}/{seed:x}/{shards}"),
                system,
                gens,
            )
            .scaled(2)
            .sharded(shards);
            spec.seed = seed;
            spec
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The sweep is a pure function of the spec list: worker count,
        /// scheduling order, and per-spec shard count must never leak
        /// into the results.
        #[test]
        fn parallel_matches_sequential(
            specs in proptest::collection::vec(arb_spec(), 1..4),
            threads in 1..5usize,
        ) {
            let parallel = run_all(&specs, threads);
            let sequential: Vec<_> = specs.iter().map(run_experiment).collect();
            prop_assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                prop_assert_eq!(&p.name, &s.name);
                prop_assert_eq!(p.summary.rtt_mean_ms, s.summary.rtt_mean_ms);
                prop_assert_eq!(p.summary.sent, s.summary.sent);
                prop_assert_eq!(p.summary.received, s.summary.received);
                prop_assert_eq!(p.events, s.events);
                prop_assert_eq!(
                    p.kernel.determinism_digest(),
                    s.kernel.determinism_digest()
                );
            }
        }
    }

    #[test]
    fn single_thread_works() {
        let specs =
            vec![ExperimentSpec::paper_default("one", SystemUnderTest::NaradaSingle, 3).scaled(2)];
        let r = run_all(&specs, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].summary.sent, 6);
    }
}
