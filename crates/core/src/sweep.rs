//! Parallel experiment execution.
//!
//! Each experiment is a self-contained deterministic simulation, so a
//! sweep is embarrassingly parallel: a shared work counter feeding one
//! worker per core, with results sent back over an mpsc channel. (This
//! is the project's parallel surface — within one simulation the event
//! loop is inherently sequential.)

use crate::experiment::{run_experiment, ExperimentResult, ExperimentSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run all specs, using up to `threads` workers (0 = one per core).
/// Results come back in the input order.
pub fn run_all(specs: &[ExperimentSpec], threads: usize) -> Vec<ExperimentResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(4)
    } else {
        threads
    }
    .min(specs.len().max(1));

    let next = AtomicUsize::new(0);
    let (result_tx, result_rx) = mpsc::channel::<(usize, ExperimentResult)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(ix) else { return };
                let result = run_experiment(spec);
                if result_tx.send((ix, result)).is_err() {
                    return;
                }
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<ExperimentResult>> = (0..specs.len()).map(|_| None).collect();
        while let Ok((ix, result)) = result_rx.recv() {
            slots[ix] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task produced a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SystemUnderTest;

    #[test]
    fn parallel_matches_sequential() {
        let specs: Vec<ExperimentSpec> = (0..4)
            .map(|i| {
                ExperimentSpec::paper_default(
                    format!("sweep/{i}"),
                    SystemUnderTest::NaradaSingle,
                    5 + i,
                )
                .scaled(3)
            })
            .collect();
        let parallel = run_all(&specs, 4);
        let sequential: Vec<_> = specs.iter().map(run_experiment).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.summary.rtt_mean_ms, s.summary.rtt_mean_ms);
            assert_eq!(p.events, s.events);
        }
    }

    #[test]
    fn single_thread_works() {
        let specs =
            vec![ExperimentSpec::paper_default("one", SystemUnderTest::NaradaSingle, 3).scaled(2)];
        let r = run_all(&specs, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].summary.sent, 6);
    }
}
