//! Quick calibration probe (dev tool): run key experiments at reduced
//! scale and print the observables the paper reports.
use gridmon_core::{run_all, scenarios};

fn main() {
    let msgs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let mut specs = Vec::new();
    specs.extend(scenarios::table2_specs(msgs));
    specs.extend(scenarios::narada_single_specs(msgs));
    specs.extend(scenarios::narada_dbn_specs(msgs));
    specs.extend(scenarios::rgma_single_specs(msgs));
    specs.extend(scenarios::rgma_distributed_specs(msgs));
    specs.extend(scenarios::rgma_secondary_specs(msgs.min(20)));
    specs.push(scenarios::rgma_no_warmup_spec(msgs));
    specs.push(scenarios::narada_single_4000(msgs));
    specs.push(scenarios::rgma_single_800(msgs));
    let t0 = std::time::Instant::now();
    let results = run_all(&specs, 0);
    for r in &results {
        println!(
            "{:<28} conns={:<5} rtt={:>9.2}ms sd={:>8.2} p99={:>9.1} p100={:>9.1} loss={:.4}% idle={:>5.1}% mem={:>6.1}MB refused={} sent={} recv={}",
            r.name, r.generators, r.summary.rtt_mean_ms, r.summary.rtt_stddev_ms,
            r.summary.percentiles_ms.iter().find(|p| p.0==99).map(|p| p.1).unwrap_or(0.0),
            r.summary.percentiles_ms.iter().find(|p| p.0==100).map(|p| p.1).unwrap_or(0.0),
            r.summary.loss_rate*100.0, r.server_idle*100.0, r.server_mem_mb, r.refused,
            r.summary.sent, r.summary.received,
        );
    }
    eprintln!("wall time: {:?}", t0.elapsed());
}
