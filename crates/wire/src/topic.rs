//! Interned topic names.
//!
//! Routing tables and partition maps refer to topics millions of times
//! per run; carrying `String`s through them costs an allocation and a
//! full compare per hop. A [`TopicTable`] interns each distinct topic
//! name once and hands out a dense [`TopicId`] (`u32`) that is `Copy`,
//! hashes in one instruction, and indexes straight into per-topic
//! state. This is deliberately a *local* table (one per broker, not a
//! process-wide registry): wire messages still carry the topic string,
//! so two brokers never need to agree on numbering.

use std::collections::HashMap;

/// Dense handle for an interned topic name, valid only with the
/// [`TopicTable`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(pub u32);

/// An interning table mapping topic names to dense [`TopicId`]s.
///
/// Ids are assigned in first-intern order starting at 0, so a table fed
/// topics in a deterministic order is itself deterministic — which the
/// simulator relies on for byte-identical replays.
#[derive(Debug, Default, Clone)]
pub struct TopicTable {
    by_name: HashMap<String, TopicId>,
    names: Vec<String>,
}

impl TopicTable {
    /// Empty table.
    pub fn new() -> Self {
        TopicTable::default()
    }

    /// Intern `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> TopicId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TopicId(u32::try_from(self.names.len()).expect("fewer than 2^32 topics"));
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<TopicId> {
        self.by_name.get(name).copied()
    }

    /// The name behind `id`, if this table issued it.
    pub fn name(&self, id: TopicId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct topics interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no topic has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = TopicTable::new();
        let a = t.intern("power.monitor");
        let b = t.intern("power.alerts");
        assert_eq!(a, TopicId(0));
        assert_eq!(b, TopicId(1));
        assert_eq!(t.intern("power.monitor"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), Some("power.monitor"));
        assert_eq!(t.get("power.alerts"), Some(b));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.name(TopicId(9)), None);
    }

    #[test]
    fn empty_table() {
        let t = TopicTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
