//! Relational tuples — the unit of data in the R-GMA virtual database.

use crate::value::{Value, ValueType};
use simcore::SimTime;

/// A column definition (name + type, plus CHAR width where applicable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ValueType,
    /// Declared width for `CHAR(n)` columns.
    pub width: u16,
}

impl Column {
    /// Non-char column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            width: 0,
        }
    }

    /// `CHAR(n)` column.
    pub fn fixed_char(name: impl Into<String>, width: u16) -> Self {
        Column {
            name: name.into(),
            ty: ValueType::Char,
            width,
        }
    }
}

/// A tuple published into a table of the virtual database.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Table the tuple belongs to.
    pub table: String,
    /// Cell values, in the table's column order.
    pub values: Vec<Value>,
    /// The R-GMA server-side insertion timestamp (set by the Primary
    /// Producer; drives retention).
    pub inserted_at: SimTime,
    /// Virtual publish instant (`simslo` freshness plane). Out-of-band
    /// instrumentation, mirroring `wire::Headers::published_at`: the
    /// stamp rides with the tuple through producer storage, streaming,
    /// and consumer polls, but is NOT part of the wire encoding
    /// ([`Tuple::wire_size`] and the codec ignore it; decode always
    /// yields `None`), so the SLO plane cannot perturb transfer timing.
    pub published_at: Option<SimTime>,
}

impl Tuple {
    /// New tuple (insertion timestamp is stamped by the producer on
    /// arrival; callers usually leave it zero).
    pub fn new(table: impl Into<String>, values: Vec<Value>) -> Self {
        Tuple {
            table: table.into(),
            values,
            inserted_at: SimTime::ZERO,
            published_at: None,
        }
    }

    /// Encoded size of the tuple (table name + cells). The out-of-band
    /// `published_at` stamp contributes nothing.
    pub fn wire_size(&self) -> usize {
        4 + self.table.len() + 4 + self.values.iter().map(Value::wire_size).sum::<usize>() + 8
    }

    /// Check that values match a column list (arity + type, with numeric
    /// widening Int→Long/Float→Double allowed, as in the Java APIs).
    pub fn conforms_to(&self, columns: &[Column]) -> bool {
        self.values.len() == columns.len()
            && self.values.iter().zip(columns).all(|(v, c)| {
                let vt = v.value_type();
                vt == c.ty
                    || matches!(
                        (vt, c.ty),
                        (ValueType::Int, ValueType::Long)
                            | (ValueType::Int, ValueType::Double)
                            | (ValueType::Int, ValueType::Float)
                            | (ValueType::Float, ValueType::Double)
                            | (ValueType::Str, ValueType::Char)
                    )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<Column> {
        vec![
            Column::new("id", ValueType::Int),
            Column::new("power", ValueType::Double),
            Column::fixed_char("site", 20),
        ]
    }

    #[test]
    fn conformance_exact() {
        let t = Tuple::new(
            "generator",
            vec![
                Value::Int(1),
                Value::Double(99.5),
                Value::fixed_char("uxbridge", 20),
            ],
        );
        assert!(t.conforms_to(&cols()));
    }

    #[test]
    fn conformance_widening() {
        let t = Tuple::new(
            "generator",
            vec![Value::Int(1), Value::Int(99), Value::Str("uxbridge".into())],
        );
        assert!(t.conforms_to(&cols()), "Int widens to Double, Str to Char");
    }

    #[test]
    fn conformance_rejects_arity_and_type() {
        let short = Tuple::new("generator", vec![Value::Int(1)]);
        assert!(!short.conforms_to(&cols()));
        let wrong = Tuple::new(
            "generator",
            vec![
                Value::Str("x".into()),
                Value::Double(1.0),
                Value::fixed_char("y", 20),
            ],
        );
        assert!(!wrong.conforms_to(&cols()));
    }

    #[test]
    fn wire_size_counts_cells() {
        let t = Tuple::new("t", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(t.wire_size(), 4 + 1 + 4 + 5 + 5 + 8);
    }
}
