//! Typed values carried in messages, message properties, and relational
//! tuples.
//!
//! The same value model backs the JMS `MapMessage` body (Narada tests), the
//! JMS selector language, and the `minisql`/R-GMA tuple cells, so the two
//! middlewares exchange exactly comparable payloads.

use std::cmp::Ordering;
use std::fmt;

/// The dynamic type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 32-bit signed integer (Java `int`).
    Int,
    /// 64-bit signed integer (Java `long`).
    Long,
    /// 32-bit float (Java `float`).
    Float,
    /// 64-bit float (Java `double`).
    Double,
    /// UTF-8 string (Java `String`).
    Str,
    /// Boolean.
    Bool,
    /// Fixed-width character field (`CHAR(n)` in R-GMA tables).
    Char,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Long => "LONG",
            ValueType::Float => "FLOAT",
            ValueType::Double => "DOUBLE",
            ValueType::Str => "STRING",
            ValueType::Bool => "BOOL",
            ValueType::Char => "CHAR",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Java `int`.
    Int(i32),
    /// Java `long`.
    Long(i64),
    /// Java `float`.
    Float(f32),
    /// Java `double`.
    Double(f64),
    /// Java `String`.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Fixed-width char field: content plus declared width (space-padded on
    /// the wire, like SQL `CHAR(n)`).
    Char {
        /// Field content (unpadded).
        content: String,
        /// Declared width.
        width: u16,
    },
}

impl Value {
    /// Construct a `CHAR(n)` value, truncating over-long content.
    pub fn fixed_char(content: impl Into<String>, width: u16) -> Value {
        let mut content = content.into();
        content.truncate(width as usize);
        Value::Char { content, width }
    }

    /// Dynamic type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Long(_) => ValueType::Long,
            Value::Float(_) => ValueType::Float,
            Value::Double(_) => ValueType::Double,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Char { .. } => ValueType::Char,
        }
    }

    /// True for the four numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_)
        )
    }

    /// Numeric view as `f64` (selectors and SQL compare numerics this way).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(f64::from(*v)),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(f64::from(*v)),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view (Str and Char).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Char { content, .. } => Some(content),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL/JMS-style comparison: numerics compare numerically across
    /// types; strings compare lexically; booleans compare as false < true;
    /// mixed/incomparable kinds return `None` (three-valued logic UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => return a.partial_cmp(&b),
            (None, None) => {}
            _ => return None,
        }
        match (self.as_str(), other.as_str()) {
            (Some(a), Some(b)) => return Some(a.cmp(b)),
            (None, None) => {}
            _ => return None,
        }
        match (self.as_bool(), other.as_bool()) {
            (Some(a), Some(b)) => Some(a.cmp(&b)),
            _ => None,
        }
    }

    /// SQL equality (same three-valued semantics as [`sql_cmp`]).
    ///
    /// [`sql_cmp`]: Value::sql_cmp
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Size of this value as encoded on the wire (matches `codec`).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Int(_) => 4,
            Value::Long(_) => 8,
            Value::Float(_) => 4,
            Value::Double(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
            // CHAR(n) fields travel space-padded to their declared width.
            Value::Char { width, .. } => 2 + *width as usize,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Char { content, width } => write!(f, "'{content:<w$}'", w = *width as usize),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::fixed_char("ab", 4).value_type(), ValueType::Char);
        assert_eq!(format!("{}", ValueType::Double), "DOUBLE");
    }

    #[test]
    fn fixed_char_truncates() {
        let v = Value::fixed_char("abcdefgh", 4);
        assert_eq!(v.as_str(), Some("abcd"));
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Double(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Long(10).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).sql_eq(&Value::Long(1)), Some(true));
    }

    #[test]
    fn string_and_char_compare() {
        assert_eq!(
            Value::Str("abc".into()).sql_cmp(&Value::fixed_char("abd", 8)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn mixed_kinds_are_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("1".into())), None);
        assert_eq!(Value::Bool(true).sql_eq(&Value::Int(1)), None);
    }

    #[test]
    fn bool_ordering() {
        assert_eq!(
            Value::Bool(false).sql_cmp(&Value::Bool(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn nan_compares_unknown() {
        assert_eq!(Value::Double(f64::NAN).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Int(7).wire_size(), 5);
        assert_eq!(Value::Long(7).wire_size(), 9);
        assert_eq!(Value::Str("abc".into()).wire_size(), 8);
        assert_eq!(Value::fixed_char("ab", 20).wire_size(), 23);
        assert_eq!(Value::Bool(true).wire_size(), 2);
    }

    #[test]
    fn froms() {
        assert_eq!(Value::from(1i32), Value::Int(1));
        assert_eq!(Value::from(1i64), Value::Long(1));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display_pads_char() {
        assert_eq!(format!("{}", Value::fixed_char("ab", 4)), "'ab  '");
    }
}
