//! JMS-style messages: headers, selector-visible properties, and typed
//! bodies.

use crate::value::Value;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Globally unique message id within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// JMS delivery mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Fire-and-forget; the broker never persists (the paper's setting).
    #[default]
    NonPersistent,
    /// Broker persists before acknowledging the producer.
    Persistent,
}

/// Standard JMS headers (the subset the study exercises).
#[derive(Debug, Clone, PartialEq)]
pub struct Headers {
    /// Unique id, assigned by the sending session.
    pub message_id: MessageId,
    /// Destination (topic/queue) name.
    pub destination: String,
    /// Send timestamp (set by the publishing client).
    pub timestamp: SimTime,
    /// Priority 0-9 (4 = default; the paper used non-priority settings).
    pub priority: u8,
    /// Delivery mode.
    pub delivery_mode: DeliveryMode,
    /// Correlation id, free-form.
    pub correlation_id: Option<u64>,
    /// Causal trace id (`simtrace`). Out-of-band instrumentation: it is
    /// carried through the middleware alongside the message but is NOT
    /// part of the wire encoding, so enabling tracing cannot perturb
    /// the calibrated transfer timings ([`Headers::wire_size`] and the
    /// codec ignore it; decode always yields `None`).
    pub trace: Option<simtrace::TraceId>,
    /// Virtual publish instant (`simslo` freshness plane). Out-of-band
    /// exactly like `trace`: rides with the message so the subscriber
    /// side can compute delivery age, contributes zero wire bytes, and
    /// is `None` whenever the SLO plane is off.
    pub published_at: Option<SimTime>,
}

impl Headers {
    /// Headers with defaults matching the paper's test configuration.
    pub fn new(message_id: MessageId, destination: impl Into<String>, timestamp: SimTime) -> Self {
        Headers {
            message_id,
            destination: destination.into(),
            timestamp,
            priority: 4,
            delivery_mode: DeliveryMode::NonPersistent,
            correlation_id: None,
            trace: None,
            published_at: None,
        }
    }

    /// Encoded size of the headers on the wire. The `trace` id and the
    /// `published_at` stamp are deliberately excluded: observation must
    /// be free when off and must not change message timing when on.
    pub fn wire_size(&self) -> usize {
        // id + ts + prio + mode + corr flag/value + destination string.
        8 + 8 + 1 + 1 + 9 + 4 + self.destination.len()
    }
}

/// Message body variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// `MapMessage`: ordered name→value pairs (BTreeMap for deterministic
    /// iteration and wire layout).
    Map(BTreeMap<String, Value>),
    /// `TextMessage`.
    Text(String),
    /// `BytesMessage` (length is what matters for the wire model; content
    /// is real bytes so the codec round-trips).
    Bytes(Vec<u8>),
}

impl Body {
    /// Encoded size of the body.
    pub fn wire_size(&self) -> usize {
        match self {
            Body::Map(m) => {
                4 + m
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.wire_size())
                    .sum::<usize>()
            }
            Body::Text(s) => 4 + s.len(),
            Body::Bytes(b) => 4 + b.len(),
        }
    }
}

/// A complete JMS-style message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Standard headers.
    pub headers: Headers,
    /// Application properties, visible to selectors.
    pub properties: BTreeMap<String, Value>,
    /// Body.
    pub body: Body,
}

impl Message {
    /// New map message.
    pub fn map(headers: Headers, entries: impl IntoIterator<Item = (String, Value)>) -> Self {
        Message {
            headers,
            properties: BTreeMap::new(),
            body: Body::Map(entries.into_iter().collect()),
        }
    }

    /// New text message.
    pub fn text(headers: Headers, text: impl Into<String>) -> Self {
        Message {
            headers,
            properties: BTreeMap::new(),
            body: Body::Text(text.into()),
        }
    }

    /// Set a selector-visible property (builder style).
    pub fn with_property(mut self, name: impl Into<String>, v: impl Into<Value>) -> Self {
        self.properties.insert(name.into(), v.into());
        self
    }

    /// Look up a property (selector evaluation).
    pub fn property(&self, name: &str) -> Option<&Value> {
        self.properties.get(name)
    }

    /// Total encoded size: headers + properties + body tag + body.
    pub fn wire_size(&self) -> usize {
        self.headers.wire_size()
            + 4
            + self
                .properties
                .iter()
                .map(|(k, v)| 4 + k.len() + v.wire_size())
                .sum::<usize>()
            + 1
            + self.body.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::map(
            Headers::new(MessageId(1), "power.monitor", SimTime::from_secs(1)),
            [
                ("watts".to_string(), Value::Double(42.5)),
                ("gen".to_string(), Value::Int(7)),
            ],
        )
        .with_property("id", 7i32)
    }

    #[test]
    fn property_roundtrip() {
        let m = msg();
        assert_eq!(m.property("id"), Some(&Value::Int(7)));
        assert_eq!(m.property("nope"), None);
    }

    #[test]
    fn wire_size_is_sum_of_parts() {
        let m = msg();
        let h = m.headers.wire_size();
        let b = m.body.wire_size();
        assert_eq!(
            m.wire_size(),
            h + 4 + (4 + 2 + Value::Int(7).wire_size()) + 1 + b
        );
        // Headers include the destination name.
        assert!(h > "power.monitor".len());
    }

    #[test]
    fn body_sizes() {
        assert_eq!(Body::Text("abc".into()).wire_size(), 7);
        assert_eq!(Body::Bytes(vec![0; 10]).wire_size(), 14);
        let map: BTreeMap<String, Value> = [("k".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(Body::Map(map).wire_size(), 4 + 4 + 1 + 5);
    }

    #[test]
    fn defaults_match_paper_settings() {
        let h = Headers::new(MessageId(9), "t", SimTime::ZERO);
        assert_eq!(h.delivery_mode, DeliveryMode::NonPersistent);
        assert_eq!(h.priority, 4);
    }
}
