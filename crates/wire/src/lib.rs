#![warn(missing_docs)]
//! # wire — the message model shared by both middlewares
//!
//! * [`Value`] — dynamically-typed cells used by JMS map bodies, selector
//!   properties, and R-GMA tuples, with SQL/JMS three-valued comparison.
//! * [`Message`] — JMS-style messages (headers, properties, Map/Text/Bytes
//!   bodies) with an exact wire-size model.
//! * [`Tuple`] / [`Column`] — relational rows for the R-GMA virtual
//!   database.
//! * [`TopicId`] / [`TopicTable`] — interned topic names for routing
//!   tables and partition maps (dense `u32` handles, broker-local).
//! * [`codec`] — a real binary codec; `wire_size()` is asserted equal to
//!   the true encoded length, keeping the simulator's byte accounting
//!   honest.

pub mod codec;
pub mod message;
pub mod topic;
pub mod tuple;
pub mod value;

pub use codec::{decode_message, decode_tuple, encode_message, encode_tuple, CodecError};
pub use message::{Body, DeliveryMode, Headers, Message, MessageId};
pub use topic::{TopicId, TopicTable};
pub use tuple::{Column, Tuple};
pub use value::{Value, ValueType};
