//! Binary codec for messages and tuples.
//!
//! The simulation does not strictly need real bytes — but encoding for real
//! keeps the wire-size model honest (`wire_size()` is asserted equal to the
//! actual encoded length) and provides a natural place to charge
//! serialization CPU cost. Format: little-endian, length-prefixed strings,
//! one tag byte per value.

use crate::message::{Body, DeliveryMode, Headers, Message, MessageId};
use crate::tuple::Tuple;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended mid-field.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// String field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

mod tag {
    pub const INT: u8 = 0x01;
    pub const LONG: u8 = 0x02;
    pub const FLOAT: u8 = 0x03;
    pub const DOUBLE: u8 = 0x04;
    pub const STR: u8 = 0x05;
    pub const BOOL: u8 = 0x06;
    pub const CHAR: u8 = 0x07;
    pub const BODY_MAP: u8 = 0x10;
    pub const BODY_TEXT: u8 = 0x11;
    pub const BODY_BYTES: u8 = 0x12;
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
}

/// Encode one value (tag + payload).
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.put_u8(tag::INT);
            buf.put_i32_le(*x);
        }
        Value::Long(x) => {
            buf.put_u8(tag::LONG);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(tag::FLOAT);
            buf.put_f32_le(*x);
        }
        Value::Double(x) => {
            buf.put_u8(tag::DOUBLE);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(tag::STR);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(tag::BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::Char { content, width } => {
            buf.put_u8(tag::CHAR);
            buf.put_u16_le(*width);
            // Space-padded to declared width, like SQL CHAR(n).
            let mut padded = content.clone();
            while padded.len() < *width as usize {
                padded.push(' ');
            }
            buf.put_slice(&padded.as_bytes()[..*width as usize]);
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let t = buf.get_u8();
    Ok(match t {
        tag::INT => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            Value::Int(buf.get_i32_le())
        }
        tag::LONG => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Value::Long(buf.get_i64_le())
        }
        tag::FLOAT => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            Value::Float(buf.get_f32_le())
        }
        tag::DOUBLE => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Value::Double(buf.get_f64_le())
        }
        tag::STR => Value::Str(get_str(buf)?),
        tag::BOOL => {
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            Value::Bool(buf.get_u8() != 0)
        }
        tag::CHAR => {
            if buf.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let width = buf.get_u16_le();
            if buf.remaining() < width as usize {
                return Err(CodecError::Truncated);
            }
            let raw = buf.copy_to_bytes(width as usize);
            let s = std::str::from_utf8(&raw).map_err(|_| CodecError::BadUtf8)?;
            Value::Char {
                content: s.trim_end_matches(' ').to_owned(),
                width,
            }
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

fn encode_value_map(buf: &mut BytesMut, map: &BTreeMap<String, Value>) {
    buf.put_u32_le(map.len() as u32);
    for (k, v) in map {
        put_str(buf, k);
        encode_value(buf, v);
    }
}

fn decode_value_map(buf: &mut Bytes) -> Result<BTreeMap<String, Value>> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le();
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = get_str(buf)?;
        let v = decode_value(buf)?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Encode a full message; returns the frozen buffer.
pub fn encode_message(m: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(m.wire_size());
    let h = &m.headers;
    buf.put_u64_le(h.message_id.0);
    buf.put_u64_le(h.timestamp.as_micros());
    buf.put_u8(h.priority);
    buf.put_u8(match h.delivery_mode {
        DeliveryMode::NonPersistent => 0,
        DeliveryMode::Persistent => 1,
    });
    match h.correlation_id {
        None => {
            buf.put_u8(0);
            buf.put_u64_le(0);
        }
        Some(c) => {
            buf.put_u8(1);
            buf.put_u64_le(c);
        }
    }
    put_str(&mut buf, &h.destination);
    encode_value_map(&mut buf, &m.properties);
    match &m.body {
        Body::Map(map) => {
            buf.put_u8(tag::BODY_MAP);
            encode_value_map(&mut buf, map);
        }
        Body::Text(s) => {
            buf.put_u8(tag::BODY_TEXT);
            put_str(&mut buf, s);
        }
        Body::Bytes(b) => {
            buf.put_u8(tag::BODY_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
    buf.freeze()
}

/// Decode a full message.
pub fn decode_message(mut buf: Bytes) -> Result<Message> {
    if buf.remaining() < 8 + 8 + 1 + 1 + 9 {
        return Err(CodecError::Truncated);
    }
    let message_id = MessageId(buf.get_u64_le());
    let timestamp = SimTime::from_micros(buf.get_u64_le());
    let priority = buf.get_u8();
    let delivery_mode = if buf.get_u8() == 0 {
        DeliveryMode::NonPersistent
    } else {
        DeliveryMode::Persistent
    };
    let corr_flag = buf.get_u8();
    let corr_val = buf.get_u64_le();
    let destination = get_str(&mut buf)?;
    let properties = decode_value_map(&mut buf)?;
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let body = match buf.get_u8() {
        tag::BODY_MAP => Body::Map(decode_value_map(&mut buf)?),
        tag::BODY_TEXT => Body::Text(get_str(&mut buf)?),
        tag::BODY_BYTES => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return Err(CodecError::Truncated);
            }
            Body::Bytes(buf.copy_to_bytes(n).to_vec())
        }
        other => return Err(CodecError::BadTag(other)),
    };
    let mut headers = Headers::new(message_id, destination, timestamp);
    headers.priority = priority;
    headers.delivery_mode = delivery_mode;
    headers.correlation_id = (corr_flag == 1).then_some(corr_val);
    Ok(Message {
        headers,
        properties,
        body,
    })
}

/// Encode a tuple.
pub fn encode_tuple(t: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.wire_size());
    put_str(&mut buf, &t.table);
    buf.put_u32_le(t.values.len() as u32);
    for v in &t.values {
        encode_value(&mut buf, v);
    }
    buf.put_u64_le(t.inserted_at.as_micros());
    buf.freeze()
}

/// Decode a tuple.
pub fn decode_tuple(mut buf: Bytes) -> Result<Tuple> {
    let table = get_str(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le();
    let mut values = Vec::with_capacity(n as usize);
    for _ in 0..n {
        values.push(decode_value(&mut buf)?);
    }
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let inserted_at = SimTime::from_micros(buf.get_u64_le());
    Ok(Tuple {
        table,
        values,
        inserted_at,
        published_at: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Headers;

    fn sample_message() -> Message {
        Message::map(
            Headers::new(MessageId(77), "power.monitor", SimTime::from_millis(1234)),
            [
                ("watts".to_string(), Value::Double(42.5)),
                ("volts".to_string(), Value::Float(11.0)),
                ("site".to_string(), Value::fixed_char("uxbridge", 20)),
                ("serial".to_string(), Value::Long(1 << 40)),
                ("on".to_string(), Value::Bool(true)),
            ],
        )
        .with_property("id", 9001i32)
        .with_property("region", "south-east")
    }

    #[test]
    fn message_roundtrip() {
        let m = sample_message();
        let bytes = encode_message(&m);
        let back = decode_message(bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn encoded_length_matches_wire_size_model() {
        let m = sample_message();
        assert_eq!(encode_message(&m).len(), m.wire_size());
        let t = Tuple::new(
            "generator",
            vec![Value::Int(1), Value::fixed_char("ab", 20)],
        );
        assert_eq!(encode_tuple(&t).len(), t.wire_size());
    }

    #[test]
    fn tuple_roundtrip() {
        let mut t = Tuple::new(
            "generator",
            vec![
                Value::Int(4),
                Value::Double(1.5),
                Value::fixed_char("hydra", 20),
            ],
        );
        t.inserted_at = SimTime::from_secs(9);
        let back = decode_tuple(encode_tuple(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn out_of_band_stamps_never_hit_the_wire() {
        let mut m = sample_message();
        let plain_len = encode_message(&m).len();
        m.headers.published_at = Some(SimTime::from_secs(3));
        let bytes = encode_message(&m);
        assert_eq!(bytes.len(), plain_len, "stamp contributes zero bytes");
        assert_eq!(decode_message(bytes).unwrap().headers.published_at, None);
        let mut t = Tuple::new("generator", vec![Value::Int(4)]);
        t.published_at = Some(SimTime::from_secs(3));
        let enc = encode_tuple(&t);
        assert_eq!(enc.len(), t.wire_size());
        assert_eq!(decode_tuple(enc).unwrap().published_at, None);
    }

    #[test]
    fn text_and_bytes_bodies_roundtrip() {
        let h = Headers::new(MessageId(1), "t", SimTime::ZERO);
        let m = Message::text(h.clone(), "hello");
        assert_eq!(decode_message(encode_message(&m)).unwrap(), m);
        let m = Message {
            headers: h,
            properties: BTreeMap::new(),
            body: Body::Bytes(vec![1, 2, 3, 255]),
        };
        assert_eq!(decode_message(encode_message(&m)).unwrap(), m);
    }

    #[test]
    fn correlation_id_roundtrip() {
        let mut m = sample_message();
        m.headers.correlation_id = Some(424242);
        assert_eq!(decode_message(encode_message(&m)).unwrap(), m);
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let m = sample_message();
        let full = encode_message(&m);
        for cut in 0..full.len() {
            let r = decode_message(full.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xEE);
        let mut b = buf.freeze();
        assert_eq!(decode_value(&mut b), Err(CodecError::BadTag(0xEE)));
    }

    #[test]
    fn char_padding_normalises() {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &Value::fixed_char("ab", 6));
        let mut b = buf.freeze();
        let v = decode_value(&mut b).unwrap();
        assert_eq!(v, Value::fixed_char("ab", 6));
    }

    #[test]
    fn error_display() {
        assert_eq!(CodecError::Truncated.to_string(), "buffer truncated");
        assert!(CodecError::BadTag(7).to_string().contains("0x07"));
    }
}
