//! Property tests: the codec round-trips every representable message and
//! tuple, and the wire-size model always matches the true encoded length.

use proptest::prelude::*;
use simcore::SimTime;
use wire::{
    decode_message, decode_tuple, encode_message, encode_tuple, Body, DeliveryMode, Headers,
    Message, MessageId, Tuple, Value,
};

/// ASCII-ish strings without trailing spaces (CHAR(n) strips trailing pad
/// spaces on decode, so trailing-space content is intentionally not
/// representable).
fn arb_char_content(max_width: u16) -> impl Strategy<Value = (String, u16)> {
    (0..=max_width).prop_flat_map(move |width| {
        proptest::string::string_regex(&format!("[a-zA-Z0-9_ ]{{0,{width}}}"))
            .unwrap()
            .prop_map(move |s| (s.trim_end_matches(' ').to_owned(), width))
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        // Finite floats only: NaN breaks PartialEq-based round-trip
        // assertions, and the middlewares never transmit NaN telemetry.
        proptest::num::f32::NORMAL.prop_map(Value::Float),
        proptest::num::f64::NORMAL.prop_map(Value::Double),
        "[a-zA-Z0-9 _.,:-]{0,64}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        arb_char_content(32).prop_map(|(content, width)| Value::Char { content, width }),
    ]
}

fn arb_body() -> impl Strategy<Value = Body> {
    prop_oneof![
        proptest::collection::btree_map("[a-z_]{1,12}", arb_value(), 0..12).prop_map(Body::Map),
        "[ -~]{0,256}".prop_map(Body::Text),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(Body::Bytes),
    ]
}

prop_compose! {
    fn arb_message()(
        id in any::<u64>(),
        dest in "[a-z./]{1,40}",
        ts in 0u64..u64::MAX / 2,
        prio in 0u8..10,
        persistent in any::<bool>(),
        corr in proptest::option::of(any::<u64>()),
        props in proptest::collection::btree_map("[a-z]{1,8}", arb_value(), 0..6),
        body in arb_body(),
    ) -> Message {
        let mut headers = Headers::new(MessageId(id), dest, SimTime::from_micros(ts));
        headers.priority = prio;
        headers.delivery_mode = if persistent {
            DeliveryMode::Persistent
        } else {
            DeliveryMode::NonPersistent
        };
        headers.correlation_id = corr;
        Message { headers, properties: props, body }
    }
}

prop_compose! {
    fn arb_tuple()(
        table in "[a-z_]{1,24}",
        values in proptest::collection::vec(arb_value(), 0..16),
        ts in 0u64..u64::MAX / 2,
    ) -> Tuple {
        let mut t = Tuple::new(table, values);
        t.inserted_at = SimTime::from_micros(ts);
        t
    }
}

proptest! {
    #[test]
    fn message_roundtrip(m in arb_message()) {
        let encoded = encode_message(&m);
        prop_assert_eq!(encoded.len(), m.wire_size());
        let back = decode_message(encoded).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn tuple_roundtrip(t in arb_tuple()) {
        let encoded = encode_tuple(&t);
        prop_assert_eq!(encoded.len(), t.wire_size());
        let back = decode_tuple(encoded).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn truncation_always_errors_never_panics(m in arb_message(), frac in 0.0f64..1.0) {
        let encoded = encode_message(&m);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(decode_message(encoded.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any byte soup must decode to Ok or Err without panicking.
        let _ = decode_message(bytes::Bytes::from(bytes.clone()));
        let _ = decode_tuple(bytes::Bytes::from(bytes));
    }

    #[test]
    fn sql_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match (a.sql_cmp(&b), b.sql_cmp(&a)) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y.reverse()),
            (None, None) => {}
            (x, y) => prop_assert!(false, "asymmetric comparability: {:?} vs {:?}", x, y),
        }
        // Reflexivity up to NaN (excluded by the generator).
        if a.sql_cmp(&a).is_some() {
            prop_assert_eq!(a.sql_cmp(&a), Some(Ordering::Equal));
        }
    }
}
