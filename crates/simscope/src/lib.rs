#![warn(missing_docs)]
//! # simscope — kernel-plane observability for the gridmon stack
//!
//! Everything that existed before this crate attributes *virtual* time:
//! `simtrace` follows messages through the simulated system, `simprof`
//! charges simulated CPU work to components. Nobody could say where the
//! simulator's own *wall-clock* time goes — which is the number that
//! matters for ROADMAP item 1's 10–100× events/sec kernel overhaul.
//! simscope closes that gap:
//!
//! * [`Site`] — the fixed taxonomy of instrumented hot paths: kernel
//!   event dispatch, queue push/pop, simnet fabric delivery, `OsModel`
//!   CPU metering, JMS selector matching.
//! * [`WallScope`] — a kernel service (same gating shape as
//!   `simtrace::TraceCollector` and `simprof::Profiler`) accumulating
//!   wall-clock nanoseconds per site. Instrumentation sites look it up
//!   with `Context::try_service_mut`; when the service is absent each
//!   site costs one failed type-map probe and nothing else. Reading a
//!   monotonic clock never touches the RNG, the queue, or any actor
//!   state, so scoped runs are byte-identical to plain runs at a fixed
//!   seed (proptest-enforced in `tests/simulation_invariants.rs`).
//! * [`HotpathReport`] — the `gridmon-hotpath/1` exchange format:
//!   line-oriented JSON (hand-rolled, like `gridmon-bench`) plus a
//!   collapsed-stack rendering that reuses simprof's flamegraph format.
//! * [`calibrate_probe_ns`] — measures the cost of one start/record
//!   timing probe pair on this machine, so readers can subtract the
//!   observer overhead from the attributed totals.
//!
//! The kernel's own sites (dispatch, queue push/pop) cannot use the
//! service — `simcore` sits below this crate — so they accumulate into
//! `Simulation::hotpath()` / `OsModel`'s internal counters and are
//! merged into the report by `gridmon-core::run_experiment`.

mod report;

pub use report::{HotpathReport, SiteRow, SCHEMA};

use simcore::{Context, WallAccum};
use std::time::Instant;

/// Instrumented hot-path sites, in fixed report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Kernel event dispatch (actor `handle` callbacks).
    KernelDispatch,
    /// Event-heap push.
    KernelQueuePush,
    /// Event-heap pop.
    KernelQueuePop,
    /// `simnet` fabric send: MTU segmentation, latency/loss draws,
    /// delivery scheduling.
    NetFabricSend,
    /// `OsModel` CPU metering (`execute_metered`).
    OsExecute,
    /// JMS selector matching inside the broker publish/forward paths.
    JmsMatch,
}

/// Number of [`Site`] variants.
pub const SITE_COUNT: usize = 6;

impl Site {
    /// All sites in report order.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::KernelDispatch,
        Site::KernelQueuePush,
        Site::KernelQueuePop,
        Site::NetFabricSend,
        Site::OsExecute,
        Site::JmsMatch,
    ];

    /// Stable dotted name used in reports and collapsed stacks.
    pub fn name(self) -> &'static str {
        match self {
            Site::KernelDispatch => "kernel.dispatch",
            Site::KernelQueuePush => "kernel.queue.push",
            Site::KernelQueuePop => "kernel.queue.pop",
            Site::NetFabricSend => "net.fabric.send",
            Site::OsExecute => "os.execute",
            Site::JmsMatch => "jms.match",
        }
    }

    fn index(self) -> usize {
        match self {
            Site::KernelDispatch => 0,
            Site::KernelQueuePush => 1,
            Site::KernelQueuePop => 2,
            Site::NetFabricSend => 3,
            Site::OsExecute => 4,
            Site::JmsMatch => 5,
        }
    }
}

/// Kernel service accumulating wall-clock time per instrumented site.
/// Register it (`Simulation::add_service`) to arm the `start`/`record`
/// probes in simnet and narada; leave it absent for a plain run.
#[derive(Debug, Default)]
pub struct WallScope {
    sites: [WallAccum; SITE_COUNT],
}

impl WallScope {
    /// Empty accumulator set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one timed operation into a site.
    #[inline]
    pub fn record(&mut self, site: Site, nanos: u64) {
        self.sites[site.index()].add(nanos);
    }

    /// Totals for one site.
    pub fn get(&self, site: Site) -> WallAccum {
        self.sites[site.index()]
    }

    /// Merge per-shard scopes: wall-clock totals are pure sums. The
    /// merged *counts* are deterministic at a fixed seed; the nanosecond
    /// totals are wall-clock and therefore run-to-run noise by design
    /// (the documented carve-out from byte-identity).
    pub fn merged(parts: impl IntoIterator<Item = WallScope>) -> WallScope {
        let mut out = WallScope::new();
        for p in parts {
            for (i, acc) in p.sites.into_iter().enumerate() {
                out.sites[i].merge(acc);
            }
        }
        out
    }
}

/// Start a timing probe: returns `Some(Instant)` only if a [`WallScope`]
/// is registered, so an un-scoped run never reads the clock.
#[inline]
pub fn start(ctx: &mut Context<'_>) -> Option<Instant> {
    ctx.try_service_mut::<WallScope>().map(|_| Instant::now())
}

/// Close a timing probe opened by [`start`], attributing the elapsed
/// wall-clock nanoseconds to `site`. No-op when `t0` is `None`.
#[inline]
pub fn record(ctx: &mut Context<'_>, site: Site, t0: Option<Instant>) {
    if let Some(t0) = t0 {
        let nanos = t0.elapsed().as_nanos() as u64;
        if let Some(scope) = ctx.try_service_mut::<WallScope>() {
            scope.record(site, nanos);
        }
    }
}

/// Measure the wall-clock cost of one start/record probe pair (two
/// monotonic clock reads plus an elapsed conversion) in nanoseconds, so
/// report readers can subtract observer overhead: a site with N counted
/// operations carries roughly `N * probe_overhead_ns` of measurement
/// cost inside its total.
pub fn calibrate_probe_ns() -> u64 {
    const ITERS: u32 = 10_000;
    let outer = Instant::now();
    let mut sink = 0u64;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        sink = sink.wrapping_add(t0.elapsed().as_nanos() as u64);
    }
    let total = outer.elapsed().as_nanos() as u64;
    std::hint::black_box(sink);
    total / u64::from(ITERS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FnActor, Payload, SimDuration, Simulation};

    #[test]
    fn site_names_are_unique_and_stable() {
        let names: Vec<&str> = Site::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), SITE_COUNT);
        assert_eq!(Site::ALL[Site::JmsMatch.index()], Site::JmsMatch);
    }

    #[test]
    fn probes_noop_without_service() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(FnActor(|_m: Payload, ctx: &mut simcore::Context| {
            let t0 = start(ctx);
            assert_eq!(t0, None);
            record(ctx, Site::NetFabricSend, t0);
        }));
        sim.schedule(SimDuration::ZERO, a, Box::new(()));
        sim.run_to_completion(10);
    }

    #[test]
    fn probes_accumulate_with_service() {
        let mut sim = Simulation::new(2);
        sim.add_service(WallScope::new());
        let a = sim.add_actor(FnActor(|_m: Payload, ctx: &mut simcore::Context| {
            let t0 = start(ctx);
            assert!(t0.is_some());
            record(ctx, Site::JmsMatch, t0);
        }));
        for i in 0..3u64 {
            sim.schedule(SimDuration::from_secs(i), a, Box::new(()));
        }
        sim.run_to_completion(10);
        let scope = sim.service::<WallScope>().unwrap();
        assert_eq!(scope.get(Site::JmsMatch).count, 3);
        assert_eq!(scope.get(Site::NetFabricSend).count, 0);
    }

    #[test]
    fn merged_sums_counts_and_nanos() {
        let mut a = WallScope::new();
        a.record(Site::JmsMatch, 10);
        a.record(Site::JmsMatch, 20);
        let mut b = WallScope::new();
        b.record(Site::JmsMatch, 5);
        b.record(Site::OsExecute, 7);
        let m = WallScope::merged([a, b]);
        assert_eq!(m.get(Site::JmsMatch).count, 3);
        assert_eq!(m.get(Site::JmsMatch).nanos, 35);
        assert_eq!(m.get(Site::OsExecute).count, 1);
        assert_eq!(m.get(Site::KernelDispatch).count, 0);
    }

    #[test]
    fn calibration_returns_small_positive_overhead() {
        let ns = calibrate_probe_ns();
        // A clock-read pair costs somewhere between sub-ns (aggressively
        // optimized) and a few microseconds (VM with slow vDSO).
        assert!(ns < 100_000, "probe overhead implausibly large: {ns}ns");
    }
}
