//! The `gridmon-hotpath/1` exchange format: per-site wall-clock totals
//! for one run, as line-oriented JSON (hand-rolled, mirroring the
//! `gridmon-bench` report: one key per line so diffs and parsers stay
//! trivial) plus a collapsed-stack rendering in simprof's flamegraph
//! format (`path;to;frame <micros>`).

/// Schema tag embedded in every report.
pub const SCHEMA: &str = "gridmon-hotpath/1";

/// Wall-clock totals for one instrumented site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// Dotted site name (see [`crate::Site::name`]).
    pub site: String,
    /// Total wall-clock nanoseconds attributed to the site.
    pub nanos: u64,
    /// Number of timed operations.
    pub count: u64,
}

/// One run's hot-path attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathReport {
    /// Schema tag (`gridmon-hotpath/1`).
    pub schema: String,
    /// Run name (e.g. `bench/narada-tcp`).
    pub run: String,
    /// Measured cost of one timing probe pair on the producing machine,
    /// in nanoseconds — the observer overhead baked into each counted
    /// operation.
    pub probe_overhead_ns: u64,
    /// Total wall-clock seconds of the run (attributed + unattributed).
    pub wall_secs: f64,
    /// Per-site totals, in [`crate::Site::ALL`] order.
    pub sites: Vec<SiteRow>,
}

impl HotpathReport {
    /// Empty report for `run`, stamped with this machine's probe
    /// overhead.
    pub fn new(run: &str, wall_secs: f64) -> Self {
        HotpathReport {
            schema: SCHEMA.to_owned(),
            run: run.to_owned(),
            probe_overhead_ns: crate::calibrate_probe_ns(),
            wall_secs,
            sites: Vec::new(),
        }
    }

    /// Append one site's totals.
    pub fn push(&mut self, site: &str, accum: simcore::WallAccum) {
        self.sites.push(SiteRow {
            site: site.to_owned(),
            nanos: accum.nanos,
            count: accum.count,
        });
    }

    /// Totals for one site by name.
    pub fn site(&self, name: &str) -> Option<&SiteRow> {
        self.sites.iter().find(|s| s.site == name)
    }

    /// A site's total with the measurement overhead (`count *
    /// probe_overhead_ns`) subtracted.
    pub fn corrected_nanos(&self, row: &SiteRow) -> u64 {
        row.nanos
            .saturating_sub(row.count.saturating_mul(self.probe_overhead_ns))
    }

    /// Serialise; stable key order, one key per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"run\": \"{}\",\n", self.run));
        out.push_str(&format!(
            "  \"probe_overhead_ns\": {},\n",
            self.probe_overhead_ns
        ));
        out.push_str(&format!("  \"wall_secs\": {:.6},\n", self.wall_secs));
        out.push_str("  \"sites\": [\n");
        for (i, s) in self.sites.iter().enumerate() {
            let comma = if i + 1 == self.sites.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"site\": \"{}\", \"nanos\": {}, \"count\": {} }}{}\n",
                s.site, s.nanos, s.count, comma
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Parse a report produced by [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut report = HotpathReport {
            schema: String::new(),
            run: String::new(),
            probe_overhead_ns: 0,
            wall_secs: 0.0,
            sites: Vec::new(),
        };
        for line in text.lines() {
            let line = line.trim();
            if let Some(v) = str_field(line, "site") {
                report.sites.push(SiteRow {
                    site: v,
                    nanos: num_field(line, "nanos")? as u64,
                    count: num_field(line, "count")? as u64,
                });
            } else if let Some(v) = str_field(line, "schema") {
                report.schema = v;
            } else if let Some(v) = str_field(line, "run") {
                report.run = v;
            } else if line.starts_with("\"probe_overhead_ns\"") {
                report.probe_overhead_ns = num_field(line, "probe_overhead_ns")? as u64;
            } else if line.starts_with("\"wall_secs\"") {
                report.wall_secs = num_field(line, "wall_secs")?;
            }
        }
        if report.schema != SCHEMA {
            return Err(format!(
                "unsupported hotpath schema {:?} (expected {SCHEMA:?})",
                report.schema
            ));
        }
        Ok(report)
    }

    /// Collapsed stacks in simprof's flamegraph format. Queue push/pop
    /// are kernel-loop roots; every non-kernel site nests under
    /// `kernel.dispatch` (that is where actor callbacks run), and
    /// dispatch self-time is the remainder after subtracting those
    /// children. Values are microseconds.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        let mut dispatch_total = 0u64;
        let mut child_total = 0u64;
        for s in &self.sites {
            match s.site.as_str() {
                "kernel.dispatch" => dispatch_total = s.nanos,
                "kernel.queue.push" | "kernel.queue.pop" => {
                    out.push_str(&format!("{} {}\n", s.site, s.nanos / 1_000));
                }
                _ => {
                    child_total += s.nanos;
                    out.push_str(&format!("kernel.dispatch;{} {}\n", s.site, s.nanos / 1_000));
                }
            }
        }
        out.push_str(&format!(
            "kernel.dispatch {}\n",
            dispatch_total.saturating_sub(child_total) / 1_000
        ));
        out
    }
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

fn num_field(line: &str, key: &str) -> Result<f64, String> {
    let marker = format!("\"{key}\": ");
    let start = line
        .find(&marker)
        .ok_or_else(|| format!("missing {key:?} in {line:?}"))?
        + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("bad number for {key:?} in {line:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::WallAccum;

    fn sample() -> HotpathReport {
        let mut r = HotpathReport {
            schema: SCHEMA.to_owned(),
            run: "bench/narada-tcp".to_owned(),
            probe_overhead_ns: 30,
            wall_secs: 1.5,
            sites: Vec::new(),
        };
        r.push(
            "kernel.dispatch",
            WallAccum {
                nanos: 900_000_000,
                count: 1_000,
            },
        );
        r.push(
            "kernel.queue.push",
            WallAccum {
                nanos: 100_000_000,
                count: 1_200,
            },
        );
        r.push(
            "kernel.queue.pop",
            WallAccum {
                nanos: 50_000_000,
                count: 1_200,
            },
        );
        r.push(
            "net.fabric.send",
            WallAccum {
                nanos: 300_000_000,
                count: 400,
            },
        );
        r.push(
            "jms.match",
            WallAccum {
                nanos: 200_000_000,
                count: 300,
            },
        );
        r
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let parsed = HotpathReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And regeneration is byte-stable.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let text = sample().to_json().replace("gridmon-hotpath/1", "other/9");
        assert!(HotpathReport::parse(&text).is_err());
    }

    #[test]
    fn collapsed_subtracts_children_from_dispatch() {
        let r = sample();
        let c = r.collapsed();
        assert!(c.contains("kernel.queue.push 100000\n"));
        assert!(c.contains("kernel.dispatch;net.fabric.send 300000\n"));
        assert!(c.contains("kernel.dispatch;jms.match 200000\n"));
        // 900ms dispatch - 500ms children = 400ms self.
        assert!(c.ends_with("kernel.dispatch 400000\n"));
    }

    #[test]
    fn corrected_nanos_subtracts_probe_overhead() {
        let r = sample();
        let row = r.site("jms.match").unwrap();
        assert_eq!(r.corrected_nanos(row), 200_000_000 - 300 * 30);
    }
}
