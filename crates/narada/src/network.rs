//! The Broker Network Map: full-mesh broker deployments with a Broker
//! Discovery Node (the paper's "unit controller" that assigned addresses
//! to the other broker nodes), plus Dijkstra shortest-path routing used to
//! validate that the full mesh is the optimal topology at this scale.

use crate::broker::{Broker, BrokerControl, StatsHandle};
use crate::config::NaradaConfig;
use simcore::{Actor, ActorId, Context, Payload, SimDuration, Simulation};
use simnet::{Endpoint, NetworkFabric, Transport};
use simos::{NodeId, ProcessId};

/// A deployed broker network.
pub struct BrokerNetwork {
    /// Broker actor ids, by broker index.
    pub brokers: Vec<ActorId>,
    /// Broker endpoints, by broker index.
    pub endpoints: Vec<Endpoint>,
    /// Stats handles, by broker index.
    pub stats: Vec<StatsHandle>,
    /// The discovery node actor.
    pub bdn: ActorId,
}

impl BrokerNetwork {
    /// Deploy brokers on the given `(node, process)` pairs, fully meshed
    /// over TCP, and register them with a Broker Discovery Node. Peer
    /// assignments arrive via the BDN after `assign_delay` (the unit
    /// controller handing out addresses).
    pub fn deploy(
        sim: &mut Simulation,
        cfg: &NaradaConfig,
        hosts: &[(NodeId, ProcessId)],
        assign_delay: SimDuration,
    ) -> BrokerNetwork {
        let mut brokers = Vec::new();
        let mut endpoints = Vec::new();
        let mut stats = Vec::new();
        for &(node, proc) in hosts {
            let b = Broker::new(cfg.clone(), node, proc);
            stats.push(b.stats_handle());
            sim.on_node(node.0);
            let id = sim.add_actor(b);
            brokers.push(id);
            endpoints.push(Endpoint::new(node, id));
        }
        // Full mesh of TCP links.
        let mut links = vec![Vec::new(); hosts.len()];
        {
            let net = sim
                .service_mut::<NetworkFabric>()
                .expect("NetworkFabric service registered");
            for i in 0..hosts.len() {
                for j in (i + 1)..hosts.len() {
                    let conn = net.open(
                        simcore::SimTime::ZERO,
                        Transport::Tcp,
                        endpoints[i],
                        endpoints[j],
                    );
                    links[i].push((j as u16, conn));
                    links[j].push((i as u16, conn));
                }
            }
        }
        // The BDN assigns peers after the assignment delay. It lives on
        // the first broker host (the paper's unit controller machine).
        sim.on_node(hosts[0].0 .0);
        let bdn = sim.add_actor(BrokerDiscoveryNode {
            brokers: endpoints.clone(),
        });
        for (ix, peers) in links.into_iter().enumerate() {
            sim.schedule(
                assign_delay,
                brokers[ix],
                Box::new(BrokerControl::SetPeers {
                    my_ix: ix as u16,
                    peers,
                }),
            );
        }
        BrokerNetwork {
            brokers,
            endpoints,
            stats,
            bdn,
        }
    }
}

/// Query message for the BDN.
pub struct DiscoverBrokers {
    /// Actor to answer.
    pub reply_to: ActorId,
}

/// Answer: the known broker endpoints.
pub struct BrokerList(pub Vec<Endpoint>);

/// The Broker Discovery Node: knows every broker in the network map and
/// answers discovery queries (new brokers / clients finding a broker).
pub struct BrokerDiscoveryNode {
    brokers: Vec<Endpoint>,
}

impl Actor for BrokerDiscoveryNode {
    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        if let Ok(q) = msg.downcast::<DiscoverBrokers>() {
            ctx.send_now(q.reply_to, BrokerList(self.brokers.clone()));
        }
    }
    fn name(&self) -> &str {
        "broker-discovery-node"
    }
}

/// Dijkstra shortest paths over a broker topology given as an adjacency
/// list with link weights (microseconds). Returns the distance from
/// `src` to every broker (`u64::MAX` if unreachable).
///
/// NaradaBrokering's BNM finds shortest routes between brokers; with the
/// full-mesh deployments used in the paper every route is one hop, and
/// this function is what the ablation uses to verify that claim.
pub fn shortest_paths(adj: &[Vec<(usize, u64)>], src: usize) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![u64::MAX; adj.len()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d.saturating_add(w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_simple_graph() {
        // 0 —1→ 1 —1→ 2, plus a direct 0→2 edge of weight 5.
        let adj = vec![
            vec![(1, 1), (2, 5)],
            vec![(0, 1), (2, 1)],
            vec![(0, 5), (1, 1)],
        ];
        assert_eq!(shortest_paths(&adj, 0), vec![0, 1, 2]);
        assert_eq!(shortest_paths(&adj, 2), vec![2, 1, 0]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let adj = vec![vec![(1, 1)], vec![(0, 1)], vec![]];
        let d = shortest_paths(&adj, 0);
        assert_eq!(d[2], u64::MAX);
    }

    #[test]
    fn full_mesh_is_single_hop() {
        // 4-broker full mesh with uniform weights: every pair distance 1.
        let n = 4;
        let adj: Vec<Vec<(usize, u64)>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(|j| (j, 1)).collect())
            .collect();
        for i in 0..n {
            let d = shortest_paths(&adj, i);
            for (j, &dist) in d.iter().enumerate() {
                assert_eq!(dist, u64::from(i != j));
            }
        }
    }
}
