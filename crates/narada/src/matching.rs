//! The broker's subscription registry and matching engine.
//!
//! Topic-indexed: a published message is evaluated against the selectors
//! of that topic's subscriptions only. Selector evaluation cost is
//! returned to the caller so the broker charges it to its CPU.

use jms::{AckMode, Selector};
use simcore::SimDuration;
use simnet::ConnId;
use std::collections::HashMap;
use wire::Message;

/// One live subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Connection that owns it.
    pub conn: ConnId,
    /// Client-chosen id, unique within the connection.
    pub sub_id: u32,
    /// Compiled selector.
    pub selector: Selector,
    /// Acknowledge mode of the consuming session.
    pub ack_mode: AckMode,
    /// Next delivery sequence number for this subscription.
    next_seq: u64,
}

/// A match produced for one published message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchedDelivery {
    /// Destination connection.
    pub conn: ConnId,
    /// Subscription id on that connection.
    pub sub_id: u32,
    /// Assigned delivery sequence.
    pub deliver_seq: u64,
    /// Acknowledge mode of the subscription.
    pub ack_mode: AckMode,
}

/// Topic-indexed subscription store, plus point-to-point queues.
#[derive(Default)]
pub struct MatchingEngine {
    by_topic: HashMap<String, Vec<Subscription>>,
    /// PTP queues: receivers share the queue; each message goes to one.
    by_queue: HashMap<String, (Vec<Subscription>, usize)>,
    subscription_count: usize,
}

impl MatchingEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a subscription.
    pub fn subscribe(
        &mut self,
        topic: impl Into<String>,
        conn: ConnId,
        sub_id: u32,
        selector: Selector,
        ack_mode: AckMode,
    ) {
        self.by_topic
            .entry(topic.into())
            .or_default()
            .push(Subscription {
                conn,
                sub_id,
                selector,
                ack_mode,
                next_seq: 0,
            });
        self.subscription_count += 1;
    }

    /// Register a queue receiver (JMS point-to-point mode): each message
    /// sent to the queue is delivered to exactly one eligible receiver,
    /// round-robin.
    pub fn subscribe_queue(
        &mut self,
        queue: impl Into<String>,
        conn: ConnId,
        sub_id: u32,
        selector: Selector,
        ack_mode: AckMode,
    ) {
        self.by_queue
            .entry(queue.into())
            .or_default()
            .0
            .push(Subscription {
                conn,
                sub_id,
                selector,
                ack_mode,
                next_seq: 0,
            });
        self.subscription_count += 1;
    }

    /// Remove one subscription.
    pub fn unsubscribe(&mut self, conn: ConnId, sub_id: u32) {
        for subs in self.by_topic.values_mut() {
            let before = subs.len();
            subs.retain(|s| !(s.conn == conn && s.sub_id == sub_id));
            self.subscription_count -= before - subs.len();
        }
        for (subs, _) in self.by_queue.values_mut() {
            let before = subs.len();
            subs.retain(|s| !(s.conn == conn && s.sub_id == sub_id));
            self.subscription_count -= before - subs.len();
        }
    }

    /// Remove everything owned by a connection (client disconnect).
    pub fn drop_connection(&mut self, conn: ConnId) {
        for subs in self.by_topic.values_mut() {
            let before = subs.len();
            subs.retain(|s| s.conn != conn);
            self.subscription_count -= before - subs.len();
        }
        for (subs, _) in self.by_queue.values_mut() {
            let before = subs.len();
            subs.retain(|s| s.conn != conn);
            self.subscription_count -= before - subs.len();
        }
    }

    /// Total live subscriptions.
    pub fn len(&self) -> usize {
        self.subscription_count
    }

    /// True if no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.subscription_count == 0
    }

    /// Whether any subscription exists for `topic` (interest gossip).
    pub fn has_interest(&self, topic: &str) -> bool {
        self.by_topic.get(topic).is_some_and(|v| !v.is_empty())
    }

    /// Subscriptions registered on `topic` — every one of them has its
    /// selector evaluated per published message.
    pub fn topic_len(&self, topic: &str) -> usize {
        self.by_topic.get(topic).map_or(0, |v| v.len())
    }

    /// Topics with at least one subscriber.
    pub fn interested_topics(&self) -> Vec<String> {
        let mut ts: Vec<String> = self
            .by_topic
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        ts.sort_unstable();
        ts
    }

    /// Match a message against a queue: at most one delivery, round-robin
    /// over receivers whose selector matches. Returns the delivery (if an
    /// eligible receiver exists) and the evaluation cost.
    pub fn match_queue(
        &mut self,
        queue: &str,
        message: &Message,
    ) -> (Option<MatchedDelivery>, SimDuration) {
        let mut cost = SimDuration::ZERO;
        let Some((subs, rr)) = self.by_queue.get_mut(queue) else {
            return (None, cost);
        };
        let n = subs.len();
        for probe_ix in 0..n {
            let ix = (*rr + probe_ix) % n;
            let sub = &mut subs[ix];
            cost += sub.selector.eval_cost();
            if sub.selector.matches(message) {
                *rr = (ix + 1) % n;
                let deliver_seq = sub.next_seq;
                sub.next_seq += 1;
                return (
                    Some(MatchedDelivery {
                        conn: sub.conn,
                        sub_id: sub.sub_id,
                        deliver_seq,
                        ack_mode: sub.ack_mode,
                    }),
                    cost,
                );
            }
        }
        (None, cost)
    }

    /// Match a message against the topic's subscriptions. Returns the
    /// deliveries plus the CPU cost of the selector evaluations performed.
    pub fn match_message(
        &mut self,
        topic: &str,
        message: &Message,
    ) -> (Vec<MatchedDelivery>, SimDuration) {
        let mut cost = SimDuration::ZERO;
        let mut out = Vec::new();
        if let Some(subs) = self.by_topic.get_mut(topic) {
            for sub in subs.iter_mut() {
                cost += sub.selector.eval_cost();
                if sub.selector.matches(message) {
                    let deliver_seq = sub.next_seq;
                    sub.next_seq += 1;
                    out.push(MatchedDelivery {
                        conn: sub.conn,
                        sub_id: sub.sub_id,
                        deliver_seq,
                        ack_mode: sub.ack_mode,
                    });
                }
            }
        }
        (out, cost)
    }

    /// Hand out the next delivery sequence for one subscription without
    /// matching a message — used when the broker re-injects messages from
    /// stable storage during a post-restart resync. `None` if the
    /// subscription does not exist.
    pub fn assign_seq(&mut self, conn: ConnId, sub_id: u32) -> Option<u64> {
        for subs in self.by_topic.values_mut() {
            for sub in subs.iter_mut() {
                if sub.conn == conn && sub.sub_id == sub_id {
                    let seq = sub.next_seq;
                    sub.next_seq += 1;
                    return Some(seq);
                }
            }
        }
        for (subs, _) in self.by_queue.values_mut() {
            for sub in subs.iter_mut() {
                if sub.conn == conn && sub.sub_id == sub_id {
                    let seq = sub.next_seq;
                    sub.next_seq += 1;
                    return Some(seq);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use wire::{Headers, MessageId};

    fn msg(topic: &str, id: i32) -> Message {
        Message::text(Headers::new(MessageId(1), topic, SimTime::ZERO), "x").with_property("id", id)
    }

    fn conn(n: u32) -> ConnId {
        ConnId(n)
    }

    #[test]
    fn topic_isolation() {
        let mut m = MatchingEngine::new();
        m.subscribe("power", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe("weather", conn(2), 0, Selector::match_all(), AckMode::Auto);
        let (hits, _) = m.match_message("power", &msg("power", 1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].conn, conn(1));
    }

    #[test]
    fn selector_filters() {
        let mut m = MatchingEngine::new();
        m.subscribe(
            "power",
            conn(1),
            0,
            Selector::compile("id < 10000").unwrap(),
            AckMode::Auto,
        );
        let (hits, cost) = m.match_message("power", &msg("power", 5));
        assert_eq!(hits.len(), 1);
        assert!(cost > SimDuration::ZERO);
        let (hits, _) = m.match_message("power", &msg("power", 20000));
        assert!(hits.is_empty());
    }

    #[test]
    fn delivery_sequences_increment_per_subscription() {
        let mut m = MatchingEngine::new();
        m.subscribe("t", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe("t", conn(2), 7, Selector::match_all(), AckMode::Client);
        let (h1, _) = m.match_message("t", &msg("t", 1));
        let (h2, _) = m.match_message("t", &msg("t", 2));
        assert_eq!(h1.iter().map(|d| d.deliver_seq).collect::<Vec<_>>(), [0, 0]);
        assert_eq!(h2.iter().map(|d| d.deliver_seq).collect::<Vec<_>>(), [1, 1]);
        assert_eq!(h2[1].ack_mode, AckMode::Client);
    }

    #[test]
    fn unsubscribe_and_drop_connection() {
        let mut m = MatchingEngine::new();
        m.subscribe("t", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe("t", conn(1), 1, Selector::match_all(), AckMode::Auto);
        m.subscribe("t", conn(2), 0, Selector::match_all(), AckMode::Auto);
        assert_eq!(m.len(), 3);
        m.unsubscribe(conn(1), 0);
        assert_eq!(m.len(), 2);
        m.drop_connection(conn(1));
        assert_eq!(m.len(), 1);
        let (hits, _) = m.match_message("t", &msg("t", 1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].conn, conn(2));
    }

    #[test]
    fn interest_tracking() {
        let mut m = MatchingEngine::new();
        assert!(!m.has_interest("t"));
        m.subscribe("t", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe("a", conn(1), 1, Selector::match_all(), AckMode::Auto);
        assert!(m.has_interest("t"));
        assert_eq!(
            m.interested_topics(),
            vec!["a".to_string(), "t".to_string()]
        );
        m.drop_connection(conn(1));
        assert!(!m.has_interest("t"));
        assert!(m.is_empty());
    }

    #[test]
    fn queue_round_robin_delivers_to_one() {
        let mut m = MatchingEngine::new();
        m.subscribe_queue("jobs", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe_queue("jobs", conn(2), 0, Selector::match_all(), AckMode::Auto);
        let mut targets = Vec::new();
        for i in 0..6 {
            let (hit, _) = m.match_queue("jobs", &msg("jobs", i));
            targets.push(hit.unwrap().conn);
        }
        // Strict alternation between the two receivers.
        assert_eq!(
            targets,
            vec![conn(1), conn(2), conn(1), conn(2), conn(1), conn(2)]
        );
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn queue_selector_skips_ineligible_receivers() {
        let mut m = MatchingEngine::new();
        m.subscribe_queue(
            "jobs",
            conn(1),
            0,
            Selector::compile("id >= 100").unwrap(),
            AckMode::Auto,
        );
        m.subscribe_queue("jobs", conn(2), 0, Selector::match_all(), AckMode::Auto);
        for i in 0..4 {
            let (hit, _) = m.match_queue("jobs", &msg("jobs", i));
            assert_eq!(hit.unwrap().conn, conn(2), "only conn 2 matches id < 100");
        }
        let (hit, _) = m.match_queue("jobs", &msg("jobs", 500));
        assert!(hit.is_some());
    }

    #[test]
    fn queue_empty_or_missing() {
        let mut m = MatchingEngine::new();
        let (hit, cost) = m.match_queue("nope", &msg("nope", 1));
        assert!(hit.is_none());
        assert_eq!(cost, SimDuration::ZERO);
        m.subscribe_queue(
            "q",
            conn(1),
            0,
            Selector::compile("id > 10").unwrap(),
            AckMode::Auto,
        );
        let (hit, cost) = m.match_queue("q", &msg("q", 1));
        assert!(hit.is_none(), "no eligible receiver");
        assert!(cost > SimDuration::ZERO, "but evaluation was paid");
    }

    #[test]
    fn queues_and_topics_are_separate_namespaces() {
        let mut m = MatchingEngine::new();
        m.subscribe("x", conn(1), 0, Selector::match_all(), AckMode::Auto);
        m.subscribe_queue("x", conn(2), 1, Selector::match_all(), AckMode::Auto);
        let (topic_hits, _) = m.match_message("x", &msg("x", 1));
        assert_eq!(topic_hits.len(), 1);
        assert_eq!(topic_hits[0].conn, conn(1));
        let (queue_hit, _) = m.match_queue("x", &msg("x", 1));
        assert_eq!(queue_hit.unwrap().conn, conn(2));
        m.drop_connection(conn(2));
        assert!(m.match_queue("x", &msg("x", 2)).0.is_none());
    }

    #[test]
    fn eval_cost_scales_with_subscriber_count() {
        let mut m = MatchingEngine::new();
        for i in 0..10 {
            m.subscribe(
                "t",
                conn(i),
                0,
                Selector::compile("id < 5").unwrap(),
                AckMode::Auto,
            );
        }
        let (_, cost10) = m.match_message("t", &msg("t", 1));
        let mut m1 = MatchingEngine::new();
        m1.subscribe(
            "t",
            conn(0),
            0,
            Selector::compile("id < 5").unwrap(),
            AckMode::Auto,
        );
        let (_, cost1) = m1.match_message("t", &msg("t", 1));
        assert_eq!(cost10.as_micros(), 10 * cost1.as_micros());
    }
}
