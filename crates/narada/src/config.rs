//! Configuration and CPU cost model for the Narada-like broker.
//!
//! All constants are calibrated for the paper's reference node (Pentium
//! III 866 MHz running Sun HotSpot 1.4.2) and documented against the
//! observation they reproduce. They are *inputs* to the mechanisms — the
//! curves in figs 3–9 emerge from queueing, thread inflation and memory
//! exhaustion, not from these numbers directly.

use jms::AckMode;
use simcore::SimDuration;
use simnet::Transport;
use simos::Bytes;

/// Per-operation CPU costs on the broker and client JVMs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Client: serialize a message (fixed part).
    pub client_serialize_base: SimDuration,
    /// Client: serialize, per byte.
    pub client_serialize_per_byte_ns: u64,
    /// Client: deserialize + listener callback (fixed part).
    pub client_deliver_base: SimDuration,
    /// Client: deserialize, per byte.
    pub client_deliver_per_byte_ns: u64,
    /// Broker: accept + deserialize + topic lookup per inbound message.
    pub broker_publish_base: SimDuration,
    /// Broker: per-byte deserialize/copy cost.
    pub broker_per_byte_ns: u64,
    /// Broker: enqueue + serialize one outbound delivery.
    pub broker_deliver_base: SimDuration,
    /// Broker: process one acknowledgement (UDP reliability layer).
    pub broker_ack_process: SimDuration,
    /// Broker: extra per-message cost of the NIO event-loop path
    /// (selector wakeups, buffer juggling on 1.4-era NIO).
    pub nio_extra: SimDuration,
    /// Broker: cost to accept a connection and start its thread.
    pub broker_accept: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            client_serialize_base: SimDuration::from_micros(120),
            client_serialize_per_byte_ns: 350,
            client_deliver_base: SimDuration::from_micros(150),
            client_deliver_per_byte_ns: 350,
            broker_publish_base: SimDuration::from_micros(350),
            broker_per_byte_ns: 600,
            broker_deliver_base: SimDuration::from_micros(300),
            broker_ack_process: SimDuration::from_micros(2_600),
            nio_extra: SimDuration::from_micros(450),
            broker_accept: SimDuration::from_millis(2),
        }
    }
}

/// UDP reliability layer settings (the JMS-over-UDP adapter).
#[derive(Debug, Clone)]
pub struct UdpReliability {
    /// Publisher waits this long for the broker's publish-ack before
    /// retransmitting.
    pub ack_timeout: SimDuration,
    /// Maximum publish retransmissions before the publisher gives up.
    pub max_retries: u32,
    /// CLIENT_ACKNOWLEDGE: subscriber batches acks and flushes at this
    /// interval; gaps detected at the broker trigger one retransmission.
    pub client_ack_flush: SimDuration,
}

impl Default for UdpReliability {
    fn default() -> Self {
        UdpReliability {
            ack_timeout: SimDuration::from_millis(200),
            max_retries: 2,
            client_ack_flush: SimDuration::from_secs(1),
        }
    }
}

/// Broker memory model.
#[derive(Debug, Clone)]
pub struct BrokerMemory {
    /// Heap retained per live connection (session, buffers).
    pub heap_per_conn: Bytes,
    /// Heap per queued undelivered message.
    pub heap_per_pending_msg: Bytes,
}

impl Default for BrokerMemory {
    fn default() -> Self {
        BrokerMemory {
            heap_per_conn: Bytes::kib(120),
            heap_per_pending_msg: Bytes::kib(2),
        }
    }
}

/// Full configuration for one broker deployment.
#[derive(Debug, Clone, Default)]
pub struct NaradaConfig {
    /// CPU cost model.
    pub costs: CostModel,
    /// UDP reliability settings.
    pub udp: UdpReliability,
    /// Memory model.
    pub memory: BrokerMemory,
    /// Whether the inter-broker layer uses the v1.1.3 broadcast behaviour
    /// (the deficiency the paper found) or correct subscription-aware
    /// routing (the fix the authors expected from the next release).
    pub dbn_broadcast: bool,
}

impl NaradaConfig {
    /// The configuration matching the paper's NaradaBrokering v1.1.3.
    pub fn v1_1_3() -> Self {
        NaradaConfig {
            dbn_broadcast: true,
            ..NaradaConfig::default()
        }
    }

    /// A hypothetical fixed release with subscription-aware routing
    /// (ablation).
    pub fn routed() -> Self {
        NaradaConfig {
            dbn_broadcast: false,
            ..NaradaConfig::default()
        }
    }
}

/// Client-side reconnect behaviour across broker crashes: liveness
/// pings, crash detection, and exponentially backed-off reconnect
/// attempts. `None` in [`ConnSettings`] (the default) disables all of it
/// and reproduces the paper's fail-stop clients exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// How often an idle connection sends a liveness ping.
    pub ping_interval: SimDuration,
    /// Silence longer than this declares the broker dead.
    pub detect_timeout: SimDuration,
    /// First reconnect backoff step.
    pub backoff_initial: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Reconnect attempts before the connection is abandoned for good.
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            ping_interval: SimDuration::from_secs(1),
            detect_timeout: SimDuration::from_secs(5),
            backoff_initial: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(4),
            max_attempts: 10,
        }
    }
}

/// Per-connection client settings (transport + ack mode), i.e. what the
/// paper's Table II varies, plus the optional fault-tolerance layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnSettings {
    /// Underlying transport.
    pub transport: Transport,
    /// JMS acknowledge mode.
    pub ack_mode: AckMode,
    /// Crash detection + reconnect policy (`None` = paper behaviour:
    /// clients never notice a dead broker).
    pub reconnect: Option<ReconnectPolicy>,
}

impl ConnSettings {
    /// TCP + AUTO_ACKNOWLEDGE (the paper's default and recommendation).
    pub fn tcp_auto() -> Self {
        ConnSettings {
            transport: Transport::Tcp,
            ack_mode: AckMode::Auto,
            reconnect: None,
        }
    }

    /// Builder: enable reconnect with the given policy.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NaradaConfig::default();
        assert!(c.costs.broker_publish_base > SimDuration::ZERO);
        assert!(c.udp.max_retries >= 1);
        assert!(!c.dbn_broadcast);
        assert!(NaradaConfig::v1_1_3().dbn_broadcast);
        assert!(!NaradaConfig::routed().dbn_broadcast);
    }

    #[test]
    fn conn_settings_default_shape() {
        let s = ConnSettings::tcp_auto();
        assert_eq!(s.transport, Transport::Tcp);
        assert_eq!(s.ack_mode, AckMode::Auto);
        assert_eq!(s.reconnect, None);
        let r = s.with_reconnect(ReconnectPolicy::default());
        let p = r.reconnect.expect("policy set");
        assert!(p.detect_timeout > p.ping_interval);
        assert!(p.backoff_max >= p.backoff_initial);
        assert!(p.max_attempts >= 1);
    }
}
