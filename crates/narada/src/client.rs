//! Client-side JMS sessions: a [`NaradaClientSet`] manages many logical
//! connections (one per simulated power generator) inside a host actor,
//! exactly like the paper's driver program that forked one thread per
//! generator inside one JVM.
//!
//! Host-actor contract: forward [`simnet::Delivery`] payloads to
//! [`NaradaClientSet::handle_delivery`] and [`ClientTimer`] payloads to
//! [`NaradaClientSet::handle_timer`]; both return [`ClientEvent`]s for the
//! host to act on.

use crate::config::{ConnSettings, NaradaConfig};
use crate::protocol::{publish_bytes, BrokerToClient, ClientToBroker, CONTROL_FRAME_BYTES};
use jms::AckMode;
use simcore::{Context, SimDuration, SimTime};
use simnet::{ConnId, Delivery, Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use telemetry::{ProbeId, RttCollector};
use wire::Message;

/// Timer payload the host actor must route back via `handle_timer`.
pub struct ClientTimer(pub u64);

/// Events surfaced to the host actor.
#[derive(Debug, PartialEq)]
pub enum ClientEvent {
    /// Connection established.
    Connected(ConnId),
    /// Connection refused by the broker (OOM).
    Refused(ConnId, String),
    /// Subscription confirmed.
    Subscribed(ConnId, u32),
    /// A message arrived and was processed by the listener.
    MessageArrived {
        /// Connection it arrived on.
        conn: ConnId,
        /// Subscription it matched.
        sub_id: u32,
        /// Telemetry probe of the originating publish.
        probe: ProbeId,
        /// When the listener callback completed.
        done_at: SimTime,
    },
    /// A UDP publish exhausted its retries and was abandoned.
    PublishAbandoned {
        /// Connection.
        conn: ConnId,
        /// Probe of the lost message.
        probe: ProbeId,
    },
    /// The broker stopped answering and a reconnect attempt began. The
    /// host must redirect its bookkeeping from `old` to `new`.
    Reconnecting {
        /// Connection id being abandoned.
        old: ConnId,
        /// Replacement connection (currently connecting).
        new: ConnId,
    },
    /// A reconnect attempt succeeded; subscriptions were re-created and
    /// buffered/pending publishes re-sent automatically.
    Reconnected(ConnId),
    /// Every reconnect attempt failed; the connection is gone for good.
    ConnectionLost(ConnId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    Ready,
    Refused,
}

struct PendingPub {
    probe: ProbeId,
    message: Message,
    retries: u32,
    timer: u64,
    queue: bool,
}

struct SubRecv {
    /// Highest contiguous delivery seq received.
    cumulative: Option<u64>,
    /// Received seqs above the contiguous prefix.
    out_of_order: BTreeSet<u64>,
    /// Dirty since last ack flush.
    dirty: bool,
}

/// What a reconnecting client must remember to re-create a subscription
/// on a fresh connection.
#[derive(Clone)]
struct SubSpec {
    sub_id: u32,
    topic: String,
    selector: String,
    queue: bool,
    /// CLIENT-ack UDP subscriptions ask the broker for a stable-storage
    /// resync once the re-subscribe is confirmed.
    needs_resync: bool,
}

struct ConnState {
    settings: ConnSettings,
    broker_ep: Endpoint,
    phase: ConnPhase,
    next_pub_seq: u64,
    pending_pubs: HashMap<u64, PendingPub>,
    /// Per-subscription receive tracking (sub_id → state; BTreeMap for
    /// deterministic ack-flush order).
    recv: BTreeMap<u32, SubRecv>,
    ack_flush_armed: bool,
    /// Subscriptions ever created on this logical connection, for
    /// re-subscribe after reconnect.
    subs: Vec<SubSpec>,
    /// Last instant the broker was heard from (reconnect detection).
    last_seen: SimTime,
    /// Reconnect attempts made so far (0 = never lost). Refunded on every
    /// successful connect: the cap bounds one outage, not a lifetime.
    attempt: u32,
    /// True once this logical connection reached `Ready` at least once;
    /// distinguishes a retried *initial* connect (surfaces `Connected`)
    /// from a true reconnect (surfaces `Reconnected` + recovery).
    ever_connected: bool,
    /// Publishes issued while reconnecting, drained on reconnect.
    offline: Vec<(ProbeId, Message, bool)>,
    /// Probes already surfaced to the listener; filters the duplicates a
    /// resync can produce. Only populated when reconnect is enabled.
    seen_probes: std::collections::HashSet<u64>,
}

enum TimerKind {
    PubRetry { conn: ConnId, seq: u64 },
    AckFlush { conn: ConnId },
    Heartbeat { conn: ConnId },
    ReconnectTry { conn: ConnId },
    ReconnectDeadline { conn: ConnId, attempt: u32 },
}

/// A set of client connections owned by one host actor.
pub struct NaradaClientSet {
    cfg: NaradaConfig,
    node: NodeId,
    conns: HashMap<ConnId, ConnState>,
    timers: HashMap<u64, TimerKind>,
    next_timer: u64,
}

impl NaradaClientSet {
    /// New client set for a host actor on `node`.
    pub fn new(cfg: NaradaConfig, node: NodeId) -> Self {
        NaradaClientSet {
            cfg,
            node,
            conns: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
        }
    }

    fn my_ep(&self, ctx: &Context<'_>) -> Endpoint {
        Endpoint::new(self.node, ctx.self_id())
    }

    fn cpu(&self, ctx: &mut Context<'_>, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, simprof::Component::NaradaTransport, effective);
            done
        })
    }

    fn serialize_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_serialize_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_serialize_per_byte_ns).div_ceil(1000),
            )
    }

    fn deliver_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_deliver_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_deliver_per_byte_ns).div_ceil(1000),
            )
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, kind: TimerKind) -> u64 {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, kind);
        ctx.timer(delay, ClientTimer(token));
        token
    }

    /// Open a connection to `broker_ep`. The broker replies ConnectOk /
    /// ConnectRefused, surfaced later as a [`ClientEvent`].
    pub fn connect(
        &mut self,
        ctx: &mut Context<'_>,
        broker_ep: Endpoint,
        settings: ConnSettings,
    ) -> ConnId {
        let me = self.my_ep(ctx);
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            let conn = net.open(ctx.now(), settings.transport, me, broker_ep);
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Connect),
            );
            conn
        });
        self.conns.insert(
            conn,
            ConnState {
                settings,
                broker_ep,
                phase: ConnPhase::Connecting,
                next_pub_seq: 0,
                pending_pubs: HashMap::new(),
                recv: BTreeMap::new(),
                ack_flush_armed: false,
                subs: Vec::new(),
                last_seen: ctx.now(),
                attempt: 0,
                ever_connected: false,
                offline: Vec::new(),
                seen_probes: std::collections::HashSet::new(),
            },
        );
        // With recovery enabled, the *initial* connect gets the same
        // deadline as a reconnect attempt: a Connect frame swallowed by a
        // crashed broker must not strand the client in `Connecting`
        // forever (it retries through the normal backoff machinery).
        if let Some(policy) = settings.reconnect {
            self.arm_timer(
                ctx,
                policy.detect_timeout,
                TimerKind::ReconnectDeadline { conn, attempt: 0 },
            );
        }
        conn
    }

    /// Create a topic subscription on an established connection.
    pub fn subscribe(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        topic: impl Into<String>,
        selector: impl Into<String>,
    ) {
        self.subscribe_inner(ctx, conn, sub_id, topic.into(), selector.into(), false)
    }

    /// Register as a queue receiver (JMS point-to-point mode): each
    /// message sent to the queue reaches exactly one receiver.
    pub fn subscribe_queue(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        queue: impl Into<String>,
        selector: impl Into<String>,
    ) {
        self.subscribe_inner(ctx, conn, sub_id, queue.into(), selector.into(), true)
    }

    fn subscribe_inner(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        topic: String,
        selector: String,
        queue: bool,
    ) {
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        assert_eq!(state.phase, ConnPhase::Ready, "subscribe before ConnectOk");
        state.recv.insert(
            sub_id,
            SubRecv {
                cumulative: None,
                out_of_order: BTreeSet::new(),
                dirty: false,
            },
        );
        let ack_mode = state.settings.ack_mode;
        if state.settings.reconnect.is_some() {
            state.subs.push(SubSpec {
                sub_id,
                topic: topic.clone(),
                selector: selector.clone(),
                queue,
                needs_resync: false,
            });
        }
        let me = self.my_ep(ctx);
        let msg = ClientToBroker::Subscribe {
            sub_id,
            topic,
            selector,
            ack_mode,
            queue,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(ctx, conn, me, CONTROL_FRAME_BYTES + 64, Box::new(msg));
        });
    }

    /// Publish a message to its destination topic. Instruments
    /// `before_sending`/`after_sending` on the shared [`RttCollector`]
    /// and returns the probe id.
    pub fn publish(&mut self, ctx: &mut Context<'_>, conn: ConnId, message: Message) -> ProbeId {
        self.publish_inner(ctx, conn, message, false)
    }

    /// Send a message to a queue (point-to-point mode).
    pub fn send_to_queue(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        message: Message,
    ) -> ProbeId {
        self.publish_inner(ctx, conn, message, true)
    }

    fn publish_inner(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        mut message: Message,
        queue: bool,
    ) -> ProbeId {
        let now = ctx.now();
        let lane = ctx.self_id().index() as u32;
        let probe = ctx.service_mut::<RttCollector>().before_sending(lane, now);
        // Thread the causal trace id through the middleware (out-of-band:
        // not part of the wire encoding, see `wire::Headers::trace`).
        message.headers.trace = Some(simtrace::TraceId(probe.0));
        // Freshness stamp, same out-of-band discipline: carried so the
        // subscriber side can compute delivery age; zero wire bytes.
        message.headers.published_at = Some(now);
        simslo::with_slo(ctx, |slo, at| {
            slo.record_publish(probe, &message.headers.destination, at)
        });
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::PublishBegin,
            );
        });
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        if state.phase == ConnPhase::Connecting && state.settings.reconnect.is_some() {
            // Broker presumed dead and a reconnect is in flight: buffer
            // the publish; it is re-sent (delayed, not dropped) once the
            // replacement connection comes up.
            state.offline.push((probe, message, queue));
            simfault::with_faults(ctx, |inj, _| inj.stats.delayed += 1);
            return probe;
        }
        assert_eq!(state.phase, ConnPhase::Ready, "publish before ConnectOk");
        self.send_publish(ctx, conn, probe, message, queue);
        probe
    }

    /// Assign a publish seq and put the message on the wire. Shared by the
    /// normal publish path and the offline-buffer drain after reconnect.
    fn send_publish(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        probe: ProbeId,
        message: Message,
        queue: bool,
    ) {
        let actor = ctx.self_id().index() as u64;
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        let seq = state.next_pub_seq;
        state.next_pub_seq += 1;
        let transport = state.settings.transport;
        let bytes = publish_bytes(&message);

        // Serialization on the client CPU.
        let ser_done = self.cpu(ctx, self.serialize_cost(bytes));

        if transport == Transport::Udp {
            // JMS-over-UDP: publish() is synchronous until the broker ack.
            let timeout = self.cfg.udp.ack_timeout;
            let timer = self.arm_timer(ctx, timeout, TimerKind::PubRetry { conn, seq });
            let state = self.conns.get_mut(&conn).expect("still here");
            state.pending_pubs.insert(
                seq,
                PendingPub {
                    probe,
                    message: message.clone(),
                    retries: 0,
                    timer,
                    queue,
                },
            );
        } else {
            // TCP family: publish() returns once the write completes.
            ctx.service_mut::<RttCollector>()
                .after_sending(probe, ser_done);
            simtrace::with_trace(ctx, |tr, _| {
                tr.record(
                    ser_done,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::PublishEnd,
                );
            });
        }

        let me = self.my_ep(ctx);
        let pub_msg = ClientToBroker::Publish {
            probe,
            seq,
            message,
            retransmit: false,
            queue,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(ctx, conn, me, bytes, Box::new(pub_msg), ser_done);
        });
    }

    /// Handle a network delivery addressed to the host actor. Returns the
    /// events the host should react to.
    pub fn handle_delivery(
        &mut self,
        ctx: &mut Context<'_>,
        delivery: Delivery,
    ) -> Vec<ClientEvent> {
        let Delivery {
            conn,
            bytes,
            payload,
            ..
        } = delivery;
        let Ok(b2c) = payload.downcast::<BrokerToClient>() else {
            return Vec::new();
        };
        // Any broker frame counts as liveness for crash detection.
        if let Some(state) = self.conns.get_mut(&conn) {
            state.last_seen = ctx.now();
        }
        let mut events = Vec::new();
        match *b2c {
            BrokerToClient::ConnectOk => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                state.phase = ConnPhase::Ready;
                let reconnect = state.settings.reconnect;
                // A successful (re)connect refunds the attempt budget: the
                // cap bounds one outage, not the connection's lifetime.
                let was_reconnect = state.ever_connected && state.attempt > 0;
                state.attempt = 0;
                state.ever_connected = true;
                if was_reconnect {
                    events.push(ClientEvent::Reconnected(conn));
                    simfault::with_faults(ctx, |inj, _| inj.stats.reconnects += 1);
                    self.resubscribe_all(ctx, conn);
                    self.republish_pending(ctx, conn);
                    self.drain_offline(ctx, conn);
                } else {
                    events.push(ClientEvent::Connected(conn));
                }
                if let Some(policy) = reconnect {
                    self.arm_timer(ctx, policy.ping_interval, TimerKind::Heartbeat { conn });
                }
            }
            BrokerToClient::ConnectRefused { reason } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.phase = ConnPhase::Refused;
                    events.push(ClientEvent::Refused(conn, reason));
                }
            }
            BrokerToClient::SubscribeOk { sub_id } => {
                events.push(ClientEvent::Subscribed(conn, sub_id));
                let me = self.my_ep(ctx);
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Some(spec) = state.subs.iter_mut().find(|s| s.sub_id == sub_id) {
                        if spec.needs_resync {
                            // Re-subscribe confirmed: ask the broker to
                            // replay this subscription's stable log.
                            spec.needs_resync = false;
                            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                                net.send(
                                    ctx,
                                    conn,
                                    me,
                                    CONTROL_FRAME_BYTES,
                                    Box::new(ClientToBroker::Resync { sub_id }),
                                );
                            });
                        }
                    }
                }
            }
            BrokerToClient::Pong => {}
            BrokerToClient::PublishAck { seq } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Some(p) = state.pending_pubs.remove(&seq) {
                        // publish() completes now: UDP PRT includes the
                        // network round trip plus broker ack processing.
                        let now = ctx.now();
                        ctx.service_mut::<RttCollector>()
                            .after_sending(p.probe, now);
                        self.timers.remove(&p.timer);
                        let actor = ctx.self_id().index() as u64;
                        let probe = p.probe;
                        simtrace::with_trace(ctx, |tr, at| {
                            tr.record(
                                at,
                                Some(simtrace::TraceId(probe.0)),
                                actor,
                                simtrace::EventKind::PublishEnd,
                            );
                        });
                    }
                }
            }
            BrokerToClient::Deliver {
                sub_id,
                probe,
                deliver_seq,
                message,
                retransmit: _,
            } => {
                let now = ctx.now();
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                let Some(recv) = state.recv.get_mut(&sub_id) else {
                    return events;
                };
                // Duplicate filter.
                let already = recv.cumulative.is_some_and(|c| deliver_seq <= c)
                    || recv.out_of_order.contains(&deliver_seq);
                if already {
                    return events;
                }
                recv.out_of_order.insert(deliver_seq);
                // Advance the contiguous prefix.
                loop {
                    let next = recv.cumulative.map_or(0, |c| c + 1);
                    if recv.out_of_order.remove(&next) {
                        recv.cumulative = Some(next);
                    } else {
                        break;
                    }
                }
                recv.dirty = true;
                let transport = state.settings.transport;
                let ack_mode = state.settings.ack_mode;
                // A resync after reconnect re-delivers under a fresh seq
                // space; dedup those by probe (reconnect-enabled only, so
                // the paper-mode hot path stays untouched).
                let fresh = state.settings.reconnect.is_none() || state.seen_probes.insert(probe.0);

                // Listener callback: deserialize + user code.
                if fresh {
                    ctx.service_mut::<RttCollector>()
                        .before_receiving(probe, now);
                }
                let done = self.cpu(ctx, self.deliver_cost(bytes));
                if fresh {
                    ctx.service_mut::<RttCollector>()
                        .after_receiving(probe, done);
                    let actor = ctx.self_id().index() as u64;
                    simtrace::with_trace(ctx, |tr, _| {
                        let id = Some(simtrace::TraceId(probe.0));
                        tr.record(now, id, actor, simtrace::EventKind::Available);
                        tr.record(done, id, actor, simtrace::EventKind::Delivered);
                    });
                    // Freshness plane: the subscribing application has
                    // the reading at `done` (same instant the RTT probe
                    // completes); the carried stamp cross-checks the
                    // publisher-side record.
                    simslo::with_slo(ctx, |slo, _| {
                        slo.record_delivery(
                            probe,
                            actor as u32,
                            done,
                            message.headers.published_at,
                        );
                    });
                    events.push(ClientEvent::MessageArrived {
                        conn,
                        sub_id,
                        probe,
                        done_at: done,
                    });
                }

                // Acknowledgements (UDP reliability layer).
                if transport == Transport::Udp {
                    match ack_mode {
                        AckMode::Auto | AckMode::DupsOk => {
                            self.flush_acks(ctx, conn, done);
                        }
                        AckMode::Client => {
                            let state = self.conns.get_mut(&conn).expect("still here");
                            if !state.ack_flush_armed {
                                state.ack_flush_armed = true;
                                let flush = self.cfg.udp.client_ack_flush;
                                self.arm_timer(ctx, flush, TimerKind::AckFlush { conn });
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Handle a [`ClientTimer`] delivered to the host actor.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_>, timer: ClientTimer) -> Vec<ClientEvent> {
        let Some(kind) = self.timers.remove(&timer.0) else {
            return Vec::new(); // stale (already acked)
        };
        match kind {
            TimerKind::PubRetry { conn, seq } => {
                let max_retries = self.cfg.udp.max_retries;
                let mut timeout = self.cfg.udp.ack_timeout;
                let Some(state) = self.conns.get_mut(&conn) else {
                    return Vec::new();
                };
                let Some(p) = state.pending_pubs.get_mut(&seq) else {
                    return Vec::new(); // acked meanwhile
                };
                if p.retries >= max_retries {
                    match state.settings.reconnect {
                        Some(policy) if state.phase == ConnPhase::Ready => {
                            if ctx.now().saturating_since(state.last_seen) > policy.detect_timeout {
                                // Liveness failure: keep the pending
                                // publish (republished after reconnect)
                                // and fail over.
                                return self.begin_reconnect(ctx, conn);
                            }
                            // The broker was heard from inside the
                            // liveness window: a late publish-ack is
                            // congestion, not a crash. Failing over here
                            // feeds a reconnect storm (every reconnect
                            // republishes its pendings, adding more load
                            // and more late acks); retransmit at a
                            // gentler cadence instead and let the
                            // silence detector decide about the broker.
                            timeout = timeout.saturating_mul(4);
                        }
                        _ => {
                            let probe = p.probe;
                            state.pending_pubs.remove(&seq);
                            return vec![ClientEvent::PublishAbandoned { conn, probe }];
                        }
                    }
                }
                p.retries += 1;
                let probe = p.probe;
                let message = p.message.clone();
                let queue = p.queue;
                let attempt = p.retries;
                let actor = ctx.self_id().index() as u64;
                simtrace::with_trace(ctx, |tr, at| {
                    tr.record(
                        at,
                        Some(simtrace::TraceId(probe.0)),
                        actor,
                        simtrace::EventKind::Retransmit { attempt },
                    );
                    tr.count(simtrace::Counter::Retries, 1);
                });
                let timer = self.arm_timer(ctx, timeout, TimerKind::PubRetry { conn, seq });
                let state = self.conns.get_mut(&conn).expect("still here");
                if let Some(p) = state.pending_pubs.get_mut(&seq) {
                    p.timer = timer;
                }
                let bytes = publish_bytes(&message);
                // Retransmission re-serializes from the buffered form:
                // cheaper than first serialization.
                let done = self.cpu(ctx, self.cfg.costs.client_serialize_base);
                let me = self.my_ep(ctx);
                let msg = ClientToBroker::Publish {
                    probe,
                    seq,
                    message,
                    retransmit: true,
                    queue,
                };
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send_at(ctx, conn, me, bytes, Box::new(msg), done);
                });
                Vec::new()
            }
            TimerKind::AckFlush { conn } => {
                let now = ctx.now();
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.ack_flush_armed = false;
                }
                self.flush_acks(ctx, conn, now);
                Vec::new()
            }
            TimerKind::Heartbeat { conn } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Vec::new(); // conn replaced or closed
                };
                let Some(policy) = state.settings.reconnect else {
                    return Vec::new();
                };
                if state.phase != ConnPhase::Ready {
                    return Vec::new();
                }
                if ctx.now().saturating_since(state.last_seen) > policy.detect_timeout {
                    return self.begin_reconnect(ctx, conn);
                }
                let me = self.my_ep(ctx);
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send(
                        ctx,
                        conn,
                        me,
                        CONTROL_FRAME_BYTES,
                        Box::new(ClientToBroker::Ping),
                    );
                });
                self.arm_timer(ctx, policy.ping_interval, TimerKind::Heartbeat { conn });
                Vec::new()
            }
            TimerKind::ReconnectTry { conn } => self.begin_reconnect(ctx, conn),
            TimerKind::ReconnectDeadline { conn, attempt } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Vec::new();
                };
                if state.phase != ConnPhase::Connecting || state.attempt != attempt {
                    return Vec::new(); // connected meanwhile or superseded
                }
                let policy = state.settings.reconnect.expect("reconnecting conn");
                if attempt >= policy.max_attempts {
                    // Give up for good; everything unflushed is lost. Say
                    // goodbye so a slow-but-alive broker frees the thread.
                    let me = self.my_ep(ctx);
                    ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                        net.send(
                            ctx,
                            conn,
                            me,
                            CONTROL_FRAME_BYTES,
                            Box::new(ClientToBroker::Disconnect),
                        );
                    });
                    let state = self.conns.remove(&conn).expect("checked above");
                    let mut events = vec![ClientEvent::ConnectionLost(conn)];
                    let mut seqs: Vec<u64> = state.pending_pubs.keys().copied().collect();
                    seqs.sort_unstable();
                    for seq in seqs {
                        let probe = state.pending_pubs[&seq].probe;
                        events.push(ClientEvent::PublishAbandoned { conn, probe });
                    }
                    for (probe, _, _) in &state.offline {
                        events.push(ClientEvent::PublishAbandoned {
                            conn,
                            probe: *probe,
                        });
                    }
                    return events;
                }
                // Exponential backoff with equal jitter before the next
                // attempt. The jitter de-synchronizes the reconnect herd
                // after a broker restart: hundreds of clients detect the
                // crash within one ping interval of each other, and
                // identical backoff schedules would slam the recovering
                // broker with simultaneous Connects, pushing ConnectOk
                // latency past the attempt deadline for everyone.
                let shift = (attempt.saturating_sub(1)).min(20);
                let base = policy
                    .backoff_initial
                    .saturating_mul(1u64 << shift)
                    .min(policy.backoff_max);
                let backoff = base / 2 + ctx.rng().duration_between(SimDuration::ZERO, base / 2);
                self.arm_timer(ctx, backoff, TimerKind::ReconnectTry { conn });
                Vec::new()
            }
        }
    }

    /// Abandon `old` and open a replacement connection to the same broker
    /// endpoint, carrying over subscriptions, pending publishes and the
    /// offline buffer. Receive state resets: the restarted broker assigns
    /// delivery seqs from scratch.
    fn begin_reconnect(&mut self, ctx: &mut Context<'_>, old: ConnId) -> Vec<ClientEvent> {
        let Some(mut state) = self.conns.remove(&old) else {
            return Vec::new();
        };
        let Some(policy) = state.settings.reconnect else {
            self.conns.insert(old, state);
            return Vec::new();
        };
        state.attempt += 1;
        state.phase = ConnPhase::Connecting;
        state.ack_flush_armed = false;
        // Best-effort goodbye on the abandoned connection: if the broker
        // is actually up (slow, not dead), this frees its service thread.
        // Without it every superseded connect attempt leaks a broker
        // thread and the reconnect herd exhausts the accept capacity.
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(
                ctx,
                old,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Disconnect),
            );
        });
        for recv in state.recv.values_mut() {
            recv.cumulative = None;
            recv.out_of_order.clear();
            recv.dirty = false;
        }
        simfault::with_faults(ctx, |inj, _| inj.stats.reconnect_attempts += 1);
        telemetry::with_metrics(ctx, |m, _| m.add_counter("narada.reconnect_attempts", 1));
        let broker_ep = state.broker_ep;
        let transport = state.settings.transport;
        let new = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            let c = net.open(ctx.now(), transport, me, broker_ep);
            net.send(
                ctx,
                c,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Connect),
            );
            c
        });
        let attempt = state.attempt;
        self.conns.insert(new, state);
        self.arm_timer(
            ctx,
            policy.detect_timeout,
            TimerKind::ReconnectDeadline { conn: new, attempt },
        );
        vec![ClientEvent::Reconnecting { old, new }]
    }

    /// Re-create every subscription of a reconnected connection, flagging
    /// CLIENT-ack UDP topic subs for a stable-storage resync.
    fn resubscribe_all(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let me = self.my_ep(ctx);
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let ack_mode = state.settings.ack_mode;
        let transport = state.settings.transport;
        let durable = transport == Transport::Udp && ack_mode == AckMode::Client;
        let ConnState { subs, recv, .. } = state;
        let mut msgs = Vec::new();
        for spec in subs.iter_mut() {
            spec.needs_resync = durable && !spec.queue;
            recv.insert(
                spec.sub_id,
                SubRecv {
                    cumulative: None,
                    out_of_order: BTreeSet::new(),
                    dirty: false,
                },
            );
            msgs.push(ClientToBroker::Subscribe {
                sub_id: spec.sub_id,
                topic: spec.topic.clone(),
                selector: spec.selector.clone(),
                ack_mode,
                queue: spec.queue,
            });
        }
        for msg in msgs {
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send(ctx, conn, me, CONTROL_FRAME_BYTES + 64, Box::new(msg));
            });
        }
    }

    /// Re-send every still-unacked UDP publish on a reconnected
    /// connection, keeping the original seqs (the broker's dup filter
    /// reset with the crash).
    fn republish_pending(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let Some(state) = self.conns.get(&conn) else {
            return;
        };
        let mut seqs: Vec<u64> = state.pending_pubs.keys().copied().collect();
        seqs.sort_unstable();
        let n = seqs.len() as u64;
        for seq in seqs {
            let timeout = self.cfg.udp.ack_timeout;
            let timer = self.arm_timer(ctx, timeout, TimerKind::PubRetry { conn, seq });
            let state = self.conns.get_mut(&conn).expect("still here");
            let p = state.pending_pubs.get_mut(&seq).expect("listed above");
            p.retries = 0;
            p.timer = timer;
            let probe = p.probe;
            let message = p.message.clone();
            let queue = p.queue;
            let bytes = publish_bytes(&message);
            let done = self.cpu(ctx, self.cfg.costs.client_serialize_base);
            let me = self.my_ep(ctx);
            let msg = ClientToBroker::Publish {
                probe,
                seq,
                message,
                retransmit: true,
                queue,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, me, bytes, Box::new(msg), done);
            });
        }
        if n > 0 {
            simfault::with_faults(ctx, |inj, _| inj.stats.republished += n);
        }
    }

    /// Drain the offline publish buffer of a reconnected connection.
    fn drain_offline(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let offline = std::mem::take(&mut state.offline);
        for (probe, message, queue) in offline {
            self.send_publish(ctx, conn, probe, message, queue);
        }
    }

    /// Send ack state for every dirty subscription on `conn`.
    fn flush_acks(&mut self, ctx: &mut Context<'_>, conn: ConnId, at: SimTime) {
        let me = self.my_ep(ctx);
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let mut to_send = Vec::new();
        for recv in state.recv.values_mut() {
            if !recv.dirty {
                continue;
            }
            recv.dirty = false;
            to_send.push((
                recv.cumulative.unwrap_or(0),
                recv.out_of_order.iter().copied().collect::<Vec<u64>>(),
            ));
        }
        for (cumulative_seq, extra) in to_send {
            let ack = ClientToBroker::Ack {
                cumulative_seq,
                extra,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, me, CONTROL_FRAME_BYTES, Box::new(ack), at);
            });
        }
    }

    /// Close a connection: the broker frees its service thread and drops
    /// its subscriptions; further use of `conn` is a protocol error.
    pub fn disconnect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        if self.conns.remove(&conn).is_none() {
            return;
        }
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Disconnect),
            );
        });
    }

    /// Phase of a connection, for the host's bookkeeping.
    pub fn is_ready(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Ready)
    }

    /// Was the connection refused?
    pub fn is_refused(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Refused)
    }

    /// Number of connections in the set.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no connections were opened.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}
