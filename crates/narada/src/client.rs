//! Client-side JMS sessions: a [`NaradaClientSet`] manages many logical
//! connections (one per simulated power generator) inside a host actor,
//! exactly like the paper's driver program that forked one thread per
//! generator inside one JVM.
//!
//! Host-actor contract: forward [`simnet::Delivery`] payloads to
//! [`NaradaClientSet::handle_delivery`] and [`ClientTimer`] payloads to
//! [`NaradaClientSet::handle_timer`]; both return [`ClientEvent`]s for the
//! host to act on.

use crate::config::{ConnSettings, NaradaConfig};
use crate::protocol::{publish_bytes, BrokerToClient, ClientToBroker, CONTROL_FRAME_BYTES};
use jms::AckMode;
use simcore::{Context, SimDuration, SimTime};
use simnet::{ConnId, Delivery, Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use telemetry::{ProbeId, RttCollector};
use wire::Message;

/// Timer payload the host actor must route back via `handle_timer`.
pub struct ClientTimer(pub u64);

/// Events surfaced to the host actor.
#[derive(Debug, PartialEq)]
pub enum ClientEvent {
    /// Connection established.
    Connected(ConnId),
    /// Connection refused by the broker (OOM).
    Refused(ConnId, String),
    /// Subscription confirmed.
    Subscribed(ConnId, u32),
    /// A message arrived and was processed by the listener.
    MessageArrived {
        /// Connection it arrived on.
        conn: ConnId,
        /// Subscription it matched.
        sub_id: u32,
        /// Telemetry probe of the originating publish.
        probe: ProbeId,
        /// When the listener callback completed.
        done_at: SimTime,
    },
    /// A UDP publish exhausted its retries and was abandoned.
    PublishAbandoned {
        /// Connection.
        conn: ConnId,
        /// Probe of the lost message.
        probe: ProbeId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    Ready,
    Refused,
}

struct PendingPub {
    probe: ProbeId,
    message: Message,
    retries: u32,
    timer: u64,
    queue: bool,
}

struct SubRecv {
    /// Highest contiguous delivery seq received.
    cumulative: Option<u64>,
    /// Received seqs above the contiguous prefix.
    out_of_order: BTreeSet<u64>,
    /// Dirty since last ack flush.
    dirty: bool,
}

struct ConnState {
    settings: ConnSettings,
    phase: ConnPhase,
    next_pub_seq: u64,
    pending_pubs: HashMap<u64, PendingPub>,
    /// Per-subscription receive tracking (sub_id → state; BTreeMap for
    /// deterministic ack-flush order).
    recv: BTreeMap<u32, SubRecv>,
    ack_flush_armed: bool,
}

enum TimerKind {
    PubRetry { conn: ConnId, seq: u64 },
    AckFlush { conn: ConnId },
}

/// A set of client connections owned by one host actor.
pub struct NaradaClientSet {
    cfg: NaradaConfig,
    node: NodeId,
    conns: HashMap<ConnId, ConnState>,
    timers: HashMap<u64, TimerKind>,
    next_timer: u64,
}

impl NaradaClientSet {
    /// New client set for a host actor on `node`.
    pub fn new(cfg: NaradaConfig, node: NodeId) -> Self {
        NaradaClientSet {
            cfg,
            node,
            conns: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
        }
    }

    fn my_ep(&self, ctx: &Context<'_>) -> Endpoint {
        Endpoint::new(self.node, ctx.self_id())
    }

    fn cpu(&self, ctx: &mut Context<'_>, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| os.execute(node, ctx.now(), cost))
    }

    fn serialize_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_serialize_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_serialize_per_byte_ns).div_ceil(1000),
            )
    }

    fn deliver_cost(&self, bytes: usize) -> SimDuration {
        self.cfg.costs.client_deliver_base
            + SimDuration::from_micros(
                (bytes as u64 * self.cfg.costs.client_deliver_per_byte_ns).div_ceil(1000),
            )
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, kind: TimerKind) -> u64 {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, kind);
        ctx.timer(delay, ClientTimer(token));
        token
    }

    /// Open a connection to `broker_ep`. The broker replies ConnectOk /
    /// ConnectRefused, surfaced later as a [`ClientEvent`].
    pub fn connect(
        &mut self,
        ctx: &mut Context<'_>,
        broker_ep: Endpoint,
        settings: ConnSettings,
    ) -> ConnId {
        let me = self.my_ep(ctx);
        let conn = ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            let conn = net.open(ctx.now(), settings.transport, me, broker_ep);
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Connect),
            );
            conn
        });
        self.conns.insert(
            conn,
            ConnState {
                settings,
                phase: ConnPhase::Connecting,
                next_pub_seq: 0,
                pending_pubs: HashMap::new(),
                recv: BTreeMap::new(),
                ack_flush_armed: false,
            },
        );
        conn
    }

    /// Create a topic subscription on an established connection.
    pub fn subscribe(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        topic: impl Into<String>,
        selector: impl Into<String>,
    ) {
        self.subscribe_inner(ctx, conn, sub_id, topic.into(), selector.into(), false)
    }

    /// Register as a queue receiver (JMS point-to-point mode): each
    /// message sent to the queue reaches exactly one receiver.
    pub fn subscribe_queue(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        queue: impl Into<String>,
        selector: impl Into<String>,
    ) {
        self.subscribe_inner(ctx, conn, sub_id, queue.into(), selector.into(), true)
    }

    fn subscribe_inner(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        topic: String,
        selector: String,
        queue: bool,
    ) {
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        assert_eq!(state.phase, ConnPhase::Ready, "subscribe before ConnectOk");
        state.recv.insert(
            sub_id,
            SubRecv {
                cumulative: None,
                out_of_order: BTreeSet::new(),
                dirty: false,
            },
        );
        let ack_mode = state.settings.ack_mode;
        let me = self.my_ep(ctx);
        let msg = ClientToBroker::Subscribe {
            sub_id,
            topic,
            selector,
            ack_mode,
            queue,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(ctx, conn, me, CONTROL_FRAME_BYTES + 64, Box::new(msg));
        });
    }

    /// Publish a message to its destination topic. Instruments
    /// `before_sending`/`after_sending` on the shared [`RttCollector`]
    /// and returns the probe id.
    pub fn publish(&mut self, ctx: &mut Context<'_>, conn: ConnId, message: Message) -> ProbeId {
        self.publish_inner(ctx, conn, message, false)
    }

    /// Send a message to a queue (point-to-point mode).
    pub fn send_to_queue(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        message: Message,
    ) -> ProbeId {
        self.publish_inner(ctx, conn, message, true)
    }

    fn publish_inner(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        mut message: Message,
        queue: bool,
    ) -> ProbeId {
        let now = ctx.now();
        let probe = ctx.service_mut::<RttCollector>().before_sending(now);
        // Thread the causal trace id through the middleware (out-of-band:
        // not part of the wire encoding, see `wire::Headers::trace`).
        message.headers.trace = Some(simtrace::TraceId(probe.0));
        let actor = ctx.self_id().index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::PublishBegin,
            );
        });
        let state = self.conns.get_mut(&conn).expect("unknown connection");
        assert_eq!(state.phase, ConnPhase::Ready, "publish before ConnectOk");
        let seq = state.next_pub_seq;
        state.next_pub_seq += 1;
        let transport = state.settings.transport;
        let bytes = publish_bytes(&message);

        // Serialization on the client CPU.
        let ser_done = self.cpu(ctx, self.serialize_cost(bytes));

        if transport == Transport::Udp {
            // JMS-over-UDP: publish() is synchronous until the broker ack.
            let timeout = self.cfg.udp.ack_timeout;
            let timer = self.arm_timer(ctx, timeout, TimerKind::PubRetry { conn, seq });
            let state = self.conns.get_mut(&conn).expect("still here");
            state.pending_pubs.insert(
                seq,
                PendingPub {
                    probe,
                    message: message.clone(),
                    retries: 0,
                    timer,
                    queue,
                },
            );
        } else {
            // TCP family: publish() returns once the write completes.
            ctx.service_mut::<RttCollector>()
                .after_sending(probe, ser_done);
            simtrace::with_trace(ctx, |tr, _| {
                tr.record(
                    ser_done,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::PublishEnd,
                );
            });
        }

        let me = self.my_ep(ctx);
        let pub_msg = ClientToBroker::Publish {
            probe,
            seq,
            message,
            retransmit: false,
            queue,
        };
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(ctx, conn, me, bytes, Box::new(pub_msg), ser_done);
        });
        probe
    }

    /// Handle a network delivery addressed to the host actor. Returns the
    /// events the host should react to.
    pub fn handle_delivery(
        &mut self,
        ctx: &mut Context<'_>,
        delivery: Delivery,
    ) -> Vec<ClientEvent> {
        let Delivery {
            conn,
            bytes,
            payload,
            ..
        } = delivery;
        let Ok(b2c) = payload.downcast::<BrokerToClient>() else {
            return Vec::new();
        };
        let mut events = Vec::new();
        match *b2c {
            BrokerToClient::ConnectOk => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.phase = ConnPhase::Ready;
                    events.push(ClientEvent::Connected(conn));
                }
            }
            BrokerToClient::ConnectRefused { reason } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.phase = ConnPhase::Refused;
                    events.push(ClientEvent::Refused(conn, reason));
                }
            }
            BrokerToClient::SubscribeOk { sub_id } => {
                events.push(ClientEvent::Subscribed(conn, sub_id));
            }
            BrokerToClient::PublishAck { seq } => {
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Some(p) = state.pending_pubs.remove(&seq) {
                        // publish() completes now: UDP PRT includes the
                        // network round trip plus broker ack processing.
                        let now = ctx.now();
                        ctx.service_mut::<RttCollector>()
                            .after_sending(p.probe, now);
                        self.timers.remove(&p.timer);
                        let actor = ctx.self_id().index() as u64;
                        let probe = p.probe;
                        simtrace::with_trace(ctx, |tr, at| {
                            tr.record(
                                at,
                                Some(simtrace::TraceId(probe.0)),
                                actor,
                                simtrace::EventKind::PublishEnd,
                            );
                        });
                    }
                }
            }
            BrokerToClient::Deliver {
                sub_id,
                probe,
                deliver_seq,
                message: _message,
                retransmit: _,
            } => {
                let now = ctx.now();
                let Some(state) = self.conns.get_mut(&conn) else {
                    return events;
                };
                let Some(recv) = state.recv.get_mut(&sub_id) else {
                    return events;
                };
                // Duplicate filter.
                let already = recv.cumulative.is_some_and(|c| deliver_seq <= c)
                    || recv.out_of_order.contains(&deliver_seq);
                if already {
                    return events;
                }
                recv.out_of_order.insert(deliver_seq);
                // Advance the contiguous prefix.
                loop {
                    let next = recv.cumulative.map_or(0, |c| c + 1);
                    if recv.out_of_order.remove(&next) {
                        recv.cumulative = Some(next);
                    } else {
                        break;
                    }
                }
                recv.dirty = true;
                let transport = state.settings.transport;
                let ack_mode = state.settings.ack_mode;

                // Listener callback: deserialize + user code.
                ctx.service_mut::<RttCollector>()
                    .before_receiving(probe, now);
                let done = self.cpu(ctx, self.deliver_cost(bytes));
                ctx.service_mut::<RttCollector>()
                    .after_receiving(probe, done);
                let actor = ctx.self_id().index() as u64;
                simtrace::with_trace(ctx, |tr, _| {
                    let id = Some(simtrace::TraceId(probe.0));
                    tr.record(now, id, actor, simtrace::EventKind::Available);
                    tr.record(done, id, actor, simtrace::EventKind::Delivered);
                });
                events.push(ClientEvent::MessageArrived {
                    conn,
                    sub_id,
                    probe,
                    done_at: done,
                });

                // Acknowledgements (UDP reliability layer).
                if transport == Transport::Udp {
                    match ack_mode {
                        AckMode::Auto | AckMode::DupsOk => {
                            self.flush_acks(ctx, conn, done);
                        }
                        AckMode::Client => {
                            let state = self.conns.get_mut(&conn).expect("still here");
                            if !state.ack_flush_armed {
                                state.ack_flush_armed = true;
                                let flush = self.cfg.udp.client_ack_flush;
                                self.arm_timer(ctx, flush, TimerKind::AckFlush { conn });
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Handle a [`ClientTimer`] delivered to the host actor.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_>, timer: ClientTimer) -> Vec<ClientEvent> {
        let Some(kind) = self.timers.remove(&timer.0) else {
            return Vec::new(); // stale (already acked)
        };
        match kind {
            TimerKind::PubRetry { conn, seq } => {
                let max_retries = self.cfg.udp.max_retries;
                let timeout = self.cfg.udp.ack_timeout;
                let Some(state) = self.conns.get_mut(&conn) else {
                    return Vec::new();
                };
                let Some(p) = state.pending_pubs.get_mut(&seq) else {
                    return Vec::new(); // acked meanwhile
                };
                if p.retries >= max_retries {
                    let probe = p.probe;
                    state.pending_pubs.remove(&seq);
                    return vec![ClientEvent::PublishAbandoned { conn, probe }];
                }
                p.retries += 1;
                let probe = p.probe;
                let message = p.message.clone();
                let queue = p.queue;
                let attempt = p.retries;
                let actor = ctx.self_id().index() as u64;
                simtrace::with_trace(ctx, |tr, at| {
                    tr.record(
                        at,
                        Some(simtrace::TraceId(probe.0)),
                        actor,
                        simtrace::EventKind::Retransmit { attempt },
                    );
                    tr.count(simtrace::Counter::Retries, 1);
                });
                let timer = self.arm_timer(ctx, timeout, TimerKind::PubRetry { conn, seq });
                let state = self.conns.get_mut(&conn).expect("still here");
                if let Some(p) = state.pending_pubs.get_mut(&seq) {
                    p.timer = timer;
                }
                let bytes = publish_bytes(&message);
                // Retransmission re-serializes from the buffered form:
                // cheaper than first serialization.
                let done = self.cpu(ctx, self.cfg.costs.client_serialize_base);
                let me = self.my_ep(ctx);
                let msg = ClientToBroker::Publish {
                    probe,
                    seq,
                    message,
                    retransmit: true,
                    queue,
                };
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send_at(ctx, conn, me, bytes, Box::new(msg), done);
                });
                Vec::new()
            }
            TimerKind::AckFlush { conn } => {
                let now = ctx.now();
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.ack_flush_armed = false;
                }
                self.flush_acks(ctx, conn, now);
                Vec::new()
            }
        }
    }

    /// Send ack state for every dirty subscription on `conn`.
    fn flush_acks(&mut self, ctx: &mut Context<'_>, conn: ConnId, at: SimTime) {
        let me = self.my_ep(ctx);
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let mut to_send = Vec::new();
        for recv in state.recv.values_mut() {
            if !recv.dirty {
                continue;
            }
            recv.dirty = false;
            to_send.push((
                recv.cumulative.unwrap_or(0),
                recv.out_of_order.iter().copied().collect::<Vec<u64>>(),
            ));
        }
        for (cumulative_seq, extra) in to_send {
            let ack = ClientToBroker::Ack {
                cumulative_seq,
                extra,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, me, CONTROL_FRAME_BYTES, Box::new(ack), at);
            });
        }
    }

    /// Close a connection: the broker frees its service thread and drops
    /// its subscriptions; further use of `conn` is a protocol error.
    pub fn disconnect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        if self.conns.remove(&conn).is_none() {
            return;
        }
        let me = self.my_ep(ctx);
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send(
                ctx,
                conn,
                me,
                CONTROL_FRAME_BYTES,
                Box::new(ClientToBroker::Disconnect),
            );
        });
    }

    /// Phase of a connection, for the host's bookkeeping.
    pub fn is_ready(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Ready)
    }

    /// Was the connection refused?
    pub fn is_refused(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .is_some_and(|c| c.phase == ConnPhase::Refused)
    }

    /// Number of connections in the set.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no connections were opened.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}
