#![warn(missing_docs)]
//! # narada — a NaradaBrokering-like JMS broker
//!
//! A from-scratch reproduction of the middleware behaviours the paper
//! measures in NaradaBrokering v1.1.3:
//!
//! * JMS topics with selector-filtered subscriptions ([`matching`]).
//! * Thread-per-connection brokers whose accept path spends real (modelled)
//!   memory — connection refusals at scale emerge from the OS model, not a
//!   hard-coded limit ([`broker`]).
//! * Transport adapters: TCP, NIO and JMS-over-UDP with its per-message
//!   acknowledgement protocol — the cause of the paper's surprising UDP
//!   results ([`client`], [`broker`]).
//! * The Broker Network Map with full-mesh deployment, a Broker Discovery
//!   Node, Dijkstra routing, and the v1.1.3 broadcast deficiency behind
//!   the paper's DBN findings ([`network`]).

pub mod broker;
pub mod client;
pub mod config;
pub mod matching;
pub mod network;
pub mod protocol;

pub use broker::{Broker, BrokerControl, BrokerStats, StatsHandle};
pub use client::{ClientEvent, ClientTimer, NaradaClientSet};
pub use config::{ConnSettings, CostModel, NaradaConfig, ReconnectPolicy, UdpReliability};
pub use matching::{MatchedDelivery, MatchingEngine, Subscription};
pub use network::{BrokerDiscoveryNode, BrokerList, BrokerNetwork, DiscoverBrokers};
