//! The broker actor: connection acceptance (thread-per-connection),
//! subscription matching, delivery, the UDP reliability layer, and
//! forwarding across the broker network.

use crate::config::NaradaConfig;
use crate::matching::{MatchedDelivery, MatchingEngine};
use crate::protocol::{
    deliver_bytes, BrokerToBroker, BrokerToClient, ClientToBroker, CONTROL_FRAME_BYTES,
};
use jms::{AckMode, Selector};
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime};
use simnet::{ConnId, Delivery, Endpoint, NetworkFabric, Transport};
use simos::{NodeId, OsModel, ProcessId};
use std::collections::HashMap;
use telemetry::ProbeId;
use wire::Message;

/// Control messages delivered directly (not over the network) from the
/// deployment layer.
pub enum BrokerControl {
    /// Configure the broker-network peer links of this broker.
    SetPeers {
        /// This broker's index in the network.
        my_ix: u16,
        /// (peer index, connection to it).
        peers: Vec<(u16, ConnId)>,
    },
}

/// Broker statistics, readable after a run via [`Broker::stats_handle`].
#[derive(Debug, Default, Clone)]
pub struct BrokerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused (OOM).
    pub refused: u64,
    /// Messages published to this broker by clients.
    pub published: u64,
    /// Deliveries sent to local subscribers.
    pub delivered: u64,
    /// Messages forwarded to peer brokers.
    pub forwarded: u64,
    /// Messages received from peer brokers.
    pub from_peers: u64,
    /// Acknowledgements processed.
    pub acks: u64,
    /// Duplicate publishes filtered.
    pub dup_publishes: u64,
    /// Deliveries retransmitted (CLIENT-ack gap recovery).
    pub retransmissions: u64,
    /// Times this broker's JVM was crashed by fault injection.
    pub crashes: u64,
    /// Messages re-delivered from stable storage after a restart.
    pub resynced: u64,
}

/// Shared handle for reading a broker's stats after the simulation.
pub type StatsHandle = std::rc::Rc<std::cell::RefCell<BrokerStats>>;

struct ConnState {
    transport: Transport,
    /// Highest publish seq seen (duplicate filter).
    last_pub_seq: Option<u64>,
    /// Pending (unacked) deliveries for CLIENT-ack UDP gap recovery,
    /// keyed by delivery seq. Bounded by the ack flush interval.
    pending: HashMap<u64, PendingDelivery>,
    /// Highest delivery seq ever sent on this connection.
    max_sent_seq: Option<u64>,
}

struct PendingDelivery {
    sub_id: u32,
    probe: ProbeId,
    message: Message,
    retransmitted: bool,
}

/// A message preserved across a crash for one durable (CLIENT-ack UDP)
/// subscriber, keyed by the subscriber's actor so it survives the
/// connection id changing on reconnect.
struct StableEntry {
    sub_id: u32,
    probe: ProbeId,
    message: Message,
}

/// What the broker remembers about a durable subscription across a
/// crash: enough to keep capturing matching publishes into stable
/// storage while the subscriber is still reconnecting.
struct DurableSub {
    sub_id: u32,
    topic: String,
    selector: Selector,
    attached: bool,
}

/// The broker actor.
pub struct Broker {
    cfg: NaradaConfig,
    node: NodeId,
    proc: ProcessId,
    endpoint: Endpoint, // actor id filled in on_start
    engine: MatchingEngine,
    conns: HashMap<ConnId, ConnState>,
    my_ix: u16,
    peers: Vec<(u16, ConnId)>,
    /// Broker-local topic interning table: route-map entries are dense
    /// `TopicId`s instead of heap strings, so the per-forward interest
    /// check is an integer compare. Wire messages still carry strings —
    /// the table never leaves this broker.
    topics: wire::TopicTable,
    /// Peer broker index → topics it has local interest in (routed mode).
    peer_interests: HashMap<u16, Vec<wire::TopicId>>,
    /// Next sequence number for messages this broker originates.
    next_fwd_seq: u64,
    /// Flood dedup: (origin broker, seq) already processed.
    seen_forwards: std::collections::HashSet<(u16, u64)>,
    /// True while the JVM is fault-crashed: all network input is dropped.
    crashed: bool,
    /// Crash-surviving message log, keyed by subscriber actor index.
    stable: std::collections::BTreeMap<u64, Vec<StableEntry>>,
    /// Durable (CLIENT-ack UDP topic) subscriptions remembered across
    /// crashes, keyed by subscriber actor index.
    durable_subs: std::collections::BTreeMap<u64, Vec<DurableSub>>,
    stats: StatsHandle,
}

impl Broker {
    /// Create a broker to be hosted on `node` inside process `proc`.
    pub fn new(cfg: NaradaConfig, node: NodeId, proc: ProcessId) -> Self {
        Broker {
            cfg,
            node,
            proc,
            endpoint: Endpoint::new(node, ActorId::NONE),
            engine: MatchingEngine::new(),
            conns: HashMap::new(),
            my_ix: 0,
            peers: Vec::new(),
            topics: wire::TopicTable::new(),
            peer_interests: HashMap::new(),
            next_fwd_seq: 0,
            seen_forwards: std::collections::HashSet::new(),
            crashed: false,
            stable: std::collections::BTreeMap::new(),
            durable_subs: std::collections::BTreeMap::new(),
            stats: StatsHandle::default(),
        }
    }

    /// Handle to this broker's statistics (clone before `add_actor`).
    pub fn stats_handle(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// The node this broker runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn cpu(&self, ctx: &mut Context<'_>, comp: simprof::Component, cost: SimDuration) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), cost);
            simprof::charge(ctx, comp, effective);
            done
        })
    }

    /// One CPU submission covering deserialize+route plus selector
    /// matching; the profiler splits the effective cost between
    /// `narada.route` and `narada.match` in proportion to the base
    /// parts, so attribution conserves exactly.
    fn cpu_matched(
        &self,
        ctx: &mut Context<'_>,
        total: SimDuration,
        match_part: SimDuration,
    ) -> SimTime {
        let node = self.node;
        ctx.with_service::<OsModel, _>(|os, ctx| {
            let (done, effective) = os.execute_metered(node, ctx.now(), total);
            simprof::charge_split(
                ctx,
                simprof::Component::NaradaRoute,
                simprof::Component::NaradaMatch,
                effective,
                match_part,
                total,
            );
            done
        })
    }

    fn per_byte(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros((bytes as u64 * self.cfg.costs.broker_per_byte_ns).div_ceil(1000))
    }

    fn send_to_client(
        &self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        bytes: usize,
        msg: BrokerToClient,
        at: SimTime,
    ) {
        let ep = self.endpoint;
        ctx.with_service::<NetworkFabric, _>(|net, ctx| {
            net.send_at(ctx, conn, ep, bytes, Box::new(msg), at);
        });
    }

    fn on_connect(&mut self, ctx: &mut Context<'_>, conn: ConnId, transport: Transport) {
        let accept_result = ctx.with_service::<OsModel, _>(|os, _| {
            os.spawn_thread(self.proc).and_then(|()| {
                match os.alloc(self.proc, self.cfg.memory.heap_per_conn) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        os.kill_thread(self.proc);
                        Err(e)
                    }
                }
            })
        });
        match accept_result {
            Ok(()) => {
                // Connection setup spawned a service thread: scheduler
                // churn the profiler counts against `simos.sched`.
                simprof::hit(ctx, simprof::Component::OsSched);
                let done = self.cpu(
                    ctx,
                    simprof::Component::NaradaRoute,
                    self.cfg.costs.broker_accept,
                );
                self.conns.insert(
                    conn,
                    ConnState {
                        transport,
                        last_pub_seq: None,
                        pending: HashMap::new(),
                        max_sent_seq: None,
                    },
                );
                self.stats.borrow_mut().accepted += 1;
                self.send_to_client(
                    ctx,
                    conn,
                    CONTROL_FRAME_BYTES,
                    BrokerToClient::ConnectOk,
                    done,
                );
            }
            Err(e) => {
                self.stats.borrow_mut().refused += 1;
                let now = ctx.now();
                self.send_to_client(
                    ctx,
                    conn,
                    CONTROL_FRAME_BYTES,
                    BrokerToClient::ConnectRefused {
                        reason: e.to_string(),
                    },
                    now,
                );
            }
        }
    }

    fn on_disconnect(&mut self, ctx: &mut Context<'_>, conn: ConnId) {
        if self.conns.remove(&conn).is_some() {
            let heap = self.cfg.memory.heap_per_conn;
            ctx.with_service::<OsModel, _>(|os, _| {
                os.kill_thread(self.proc);
                os.free(self.proc, heap);
            });
            simprof::hit(ctx, simprof::Component::OsSched);
            self.engine.drop_connection(conn);
            self.gossip_interests(ctx);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_subscribe(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        sub_id: u32,
        topic: String,
        selector: String,
        ack_mode: AckMode,
        queue: bool,
    ) {
        let selector = Selector::compile(&selector).unwrap_or_else(|e| {
            // Real JMS raises InvalidSelectorException at subscribe time;
            // the study never sends invalid selectors, so treat as fatal.
            panic!("invalid selector {selector:?}: {e}")
        });
        let had_interest = self.engine.has_interest(&topic);
        // CLIENT-ack UDP topic subscriptions double as durable ones: the
        // broker remembers them across crashes so it can keep capturing
        // matching publishes into stable storage while the subscriber is
        // still reconnecting, then resync on request.
        let transport = self.conns.get(&conn).map(|c| c.transport);
        if !queue && ack_mode == AckMode::Client && transport == Some(Transport::Udp) {
            let peer = ctx
                .service::<NetworkFabric>()
                .peer_of(conn, self.endpoint)
                .actor
                .index() as u64;
            let subs = self.durable_subs.entry(peer).or_default();
            match subs.iter_mut().find(|d| d.sub_id == sub_id) {
                Some(d) => {
                    d.topic = topic.clone();
                    d.selector = selector.clone();
                    d.attached = true;
                }
                None => subs.push(DurableSub {
                    sub_id,
                    topic: topic.clone(),
                    selector: selector.clone(),
                    attached: true,
                }),
            }
        }
        if queue {
            self.engine
                .subscribe_queue(&topic, conn, sub_id, selector, ack_mode);
        } else {
            self.engine
                .subscribe(&topic, conn, sub_id, selector, ack_mode);
        }
        let done = self.cpu(
            ctx,
            simprof::Component::NaradaRoute,
            self.cfg.costs.broker_accept / 2,
        );
        self.send_to_client(
            ctx,
            conn,
            CONTROL_FRAME_BYTES,
            BrokerToClient::SubscribeOk { sub_id },
            done,
        );
        if !had_interest {
            self.gossip_interests(ctx);
        }
    }

    /// Broadcast our interest set to peers (used by routed mode; harmless
    /// in broadcast mode).
    fn gossip_interests(&mut self, ctx: &mut Context<'_>) {
        if self.peers.is_empty() {
            return;
        }
        let topics = self.engine.interested_topics();
        let my_ix = self.my_ix;
        let ep = self.endpoint;
        let bytes = CONTROL_FRAME_BYTES + topics.iter().map(|t| t.len() + 4).sum::<usize>();
        let now = ctx.now();
        for &(_, conn) in &self.peers {
            let update = BrokerToBroker::InterestUpdate {
                broker: my_ix,
                topics: topics.clone(),
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, ep, bytes, Box::new(update), now);
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_publish(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        probe: ProbeId,
        seq: u64,
        message: Message,
        retransmit: bool,
        queue: bool,
        wire_bytes: usize,
    ) {
        let transport = match self.conns.get(&conn) {
            Some(c) => c.transport,
            None => return, // connection refused / unknown: drop
        };

        // UDP transport reliability: ack every publish, including
        // duplicates (the original ack may have been lost).
        if transport == Transport::Udp {
            let ack_done = self.cpu(
                ctx,
                simprof::Component::NaradaAck,
                self.cfg.costs.broker_ack_process,
            );
            self.send_to_client(
                ctx,
                conn,
                CONTROL_FRAME_BYTES,
                BrokerToClient::PublishAck { seq },
                ack_done,
            );
        }

        // Duplicate filter.
        let state = self.conns.get_mut(&conn).expect("checked above");
        if retransmit {
            if let Some(last) = state.last_pub_seq {
                if seq <= last {
                    self.stats.borrow_mut().dup_publishes += 1;
                    return;
                }
            }
        }
        state.last_pub_seq = Some(state.last_pub_seq.map_or(seq, |l| l.max(seq)));
        self.stats.borrow_mut().published += 1;
        let broker = u32::from(self.my_ix);
        let actor = self.endpoint.actor.index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::BrokerRecv { broker },
            );
            tr.count(simtrace::Counter::BrokerPublishes, 1);
        });

        // Processing cost: deserialize + route + match. Queue sends
        // (point-to-point) deliver to exactly one receiver and are not
        // forwarded through the broker network (queues live on the broker
        // they were created on).
        let topic = message.headers.destination.clone();
        let match_t0 = simscope::start(ctx);
        let (matches, match_cost) = if queue {
            let (hit, cost) = self.engine.match_queue(&topic, &message);
            (hit.into_iter().collect(), cost)
        } else {
            self.engine.match_message(&topic, &message)
        };
        simscope::record(ctx, simscope::Site::JmsMatch, match_t0);
        let mut cost = self.cfg.costs.broker_publish_base + self.per_byte(wire_bytes) + match_cost;
        if transport == Transport::Nio {
            cost += self.cfg.costs.nio_extra;
        }
        let done = simprof::profile_span!(ctx, simprof::Component::NaradaRoute, {
            self.cpu_matched(ctx, cost, match_cost)
        });
        telemetry::with_metrics(ctx, |m, _| {
            m.add_counter(&format!("narada.broker{broker}.publishes"), 1);
            m.observe("narada.publish_cost_us", cost.as_micros());
        });

        // Queue matching early-exits at the first eligible receiver, so
        // misses are only tracked for topic (fan-out) matching.
        let matched = matches.len() as u32;
        let missed = if queue {
            0
        } else {
            (self.engine.topic_len(&topic) as u32).saturating_sub(matched)
        };
        self.record_selector_outcome(ctx, probe, matched, missed);

        if !queue {
            self.capture_orphans(probe, &message, &topic);
        }
        self.dispatch_deliveries(ctx, probe, &message, matches, done);

        if queue {
            return;
        }
        // Forward through the broker network.
        let seq = self.next_fwd_seq;
        self.next_fwd_seq += 1;
        let my_ix = self.my_ix;
        self.seen_forwards.insert((my_ix, seq));
        self.forward_to_peers(ctx, probe, &message, &topic, done, my_ix, seq, my_ix);
    }

    fn record_selector_outcome(
        &self,
        ctx: &mut Context<'_>,
        probe: ProbeId,
        matched: u32,
        missed: u32,
    ) {
        let actor = self.endpoint.actor.index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::SelectorMatch { matched, missed },
            );
            tr.count(simtrace::Counter::SelectorMatches, u64::from(matched));
            tr.count(simtrace::Counter::SelectorMisses, u64::from(missed));
        });
    }

    fn dispatch_deliveries(
        &mut self,
        ctx: &mut Context<'_>,
        probe: ProbeId,
        message: &Message,
        matches: Vec<MatchedDelivery>,
        mut ready_at: SimTime,
    ) {
        let ep = self.endpoint;
        let fanout = matches.len() as u32;
        if fanout > 0 {
            let broker = u32::from(self.my_ix);
            let actor = self.endpoint.actor.index() as u64;
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::BrokerDeliver { broker, fanout },
                );
                tr.count(simtrace::Counter::BrokerDeliveries, u64::from(fanout));
            });
        }
        for m in matches {
            // Each delivery costs serialization on the broker.
            ready_at = self
                .cpu(
                    ctx,
                    simprof::Component::NaradaTransport,
                    self.cfg.costs.broker_deliver_base,
                )
                .max(ready_at);
            let bytes = deliver_bytes(message);
            let transport = self.conns.get(&m.conn).map(|c| c.transport);
            let deliver = BrokerToClient::Deliver {
                sub_id: m.sub_id,
                probe,
                deliver_seq: m.deliver_seq,
                message: message.clone(),
                retransmit: false,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, m.conn, ep, bytes, Box::new(deliver), ready_at);
            });
            self.stats.borrow_mut().delivered += 1;
            // CLIENT-ack over UDP: retain for gap recovery.
            if transport == Some(Transport::Udp) {
                let state = self.conns.get_mut(&m.conn).expect("delivery to live conn");
                state.max_sent_seq = Some(
                    state
                        .max_sent_seq
                        .map_or(m.deliver_seq, |s| s.max(m.deliver_seq)),
                );
                if m.ack_mode == AckMode::Client {
                    state.pending.insert(
                        m.deliver_seq,
                        PendingDelivery {
                            sub_id: m.sub_id,
                            probe,
                            message: message.clone(),
                            retransmitted: false,
                        },
                    );
                }
            }
        }
        // Per-broker queue depth: deliveries awaiting client acks
        // (CLIENT-ack UDP retention). Only computed when the metrics
        // plane is on.
        let broker_ix = self.my_ix;
        let conns = &self.conns;
        telemetry::with_metrics(ctx, |m, _| {
            let depth: usize = conns.values().map(|c| c.pending.len()).sum();
            m.set_gauge(
                &format!("narada.broker{broker_ix}.pending_acks"),
                depth as f64,
            );
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_to_peers(
        &mut self,
        ctx: &mut Context<'_>,
        probe: ProbeId,
        message: &Message,
        topic: &str,
        ready_at: SimTime,
        origin: u16,
        seq: u64,
        from_ix: u16,
    ) {
        if self.peers.is_empty() {
            return;
        }
        let ep = self.endpoint;
        let my_ix = self.my_ix;
        let bytes = deliver_bytes(message);
        let peers: Vec<(u16, ConnId)> = self.peers.clone();
        let mut sent: u32 = 0;
        for (peer_ix, conn) in peers {
            // Never send back where it came from or to the origin.
            if peer_ix == from_ix || peer_ix == origin {
                continue;
            }
            // v1.1.3 deficiency: flood to every peer regardless of
            // interest. Routed mode prunes using gossiped interests and
            // never re-floods (single hop suffices in a full mesh).
            if !self.cfg.dbn_broadcast {
                if my_ix != origin {
                    continue;
                }
                // A topic never interned locally has no registered peer
                // interest; otherwise the check is an id compare.
                let interested = self.topics.get(topic).is_some_and(|tid| {
                    self.peer_interests
                        .get(&peer_ix)
                        .is_some_and(|ts| ts.contains(&tid))
                });
                if !interested {
                    continue;
                }
            }
            let at = self
                .cpu(
                    ctx,
                    simprof::Component::NaradaRoute,
                    self.cfg.costs.broker_deliver_base,
                )
                .max(ready_at);
            let fwd = BrokerToBroker::Forward {
                probe,
                message: message.clone(),
                origin,
                seq,
                from_ix: my_ix,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, ep, bytes, Box::new(fwd), at);
            });
            self.stats.borrow_mut().forwarded += 1;
            sent += 1;
        }
        if sent > 0 {
            let broker = u32::from(my_ix);
            let actor = ep.actor.index() as u64;
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::BrokerForward {
                        broker,
                        peers: sent,
                    },
                );
                tr.count(simtrace::Counter::BrokerForwards, u64::from(sent));
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_peer_forward(
        &mut self,
        ctx: &mut Context<'_>,
        probe: ProbeId,
        message: Message,
        wire_bytes: usize,
        origin: u16,
        seq: u64,
        from_ix: u16,
    ) {
        self.stats.borrow_mut().from_peers += 1;
        // Flood dedup: duplicates still cost deserialization.
        if !self.seen_forwards.insert((origin, seq)) {
            self.stats.borrow_mut().dup_publishes += 1;
            self.cpu(
                ctx,
                simprof::Component::NaradaRoute,
                self.cfg.costs.broker_publish_base / 2 + self.per_byte(wire_bytes),
            );
            return;
        }
        let topic = message.headers.destination.clone();
        let broker = u32::from(self.my_ix);
        let actor = self.endpoint.actor.index() as u64;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                Some(simtrace::TraceId(probe.0)),
                actor,
                simtrace::EventKind::BrokerRecv { broker },
            );
        });
        let match_t0 = simscope::start(ctx);
        let (matches, match_cost) = self.engine.match_message(&topic, &message);
        simscope::record(ctx, simscope::Site::JmsMatch, match_t0);
        let cost = self.cfg.costs.broker_publish_base + self.per_byte(wire_bytes) + match_cost;
        let done = simprof::profile_span!(ctx, simprof::Component::NaradaRoute, {
            self.cpu_matched(ctx, cost, match_cost)
        });
        let matched = matches.len() as u32;
        let missed = (self.engine.topic_len(&topic) as u32).saturating_sub(matched);
        self.record_selector_outcome(ctx, probe, matched, missed);
        self.capture_orphans(probe, &message, &topic);
        self.dispatch_deliveries(ctx, probe, &message, matches, done);
        // v1.1.3 floods onward (the congestion the paper found).
        if self.cfg.dbn_broadcast {
            self.forward_to_peers(ctx, probe, &message, &topic, done, origin, seq, from_ix);
        }
    }

    /// While a durable subscriber is detached (the broker restarted and
    /// the client has not resubscribed yet), matching topic publishes go
    /// to its stable log instead of being lost.
    fn capture_orphans(&mut self, probe: ProbeId, message: &Message, topic: &str) {
        for (&peer, subs) in &self.durable_subs {
            for d in subs {
                if !d.attached && d.topic == topic && d.selector.matches(message) {
                    self.stable.entry(peer).or_default().push(StableEntry {
                        sub_id: d.sub_id,
                        probe,
                        message: message.clone(),
                    });
                }
            }
        }
    }

    /// Fault injection kills the JVM: volatile state (connections,
    /// threads, the matching engine, flood dedup) is lost; CLIENT-ack
    /// pendings move to the stable log keyed by subscriber actor, which
    /// is the durability the resync protocol recovers from.
    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.stats.borrow_mut().crashes += 1;
        let mut conn_ids: Vec<ConnId> = self.conns.keys().copied().collect();
        conn_ids.sort_unstable_by_key(|c| c.0);
        let heap = self.cfg.memory.heap_per_conn;
        for conn in conn_ids {
            let mut state = self.conns.remove(&conn).expect("listed");
            let peer = ctx
                .service::<NetworkFabric>()
                .peer_of(conn, self.endpoint)
                .actor
                .index() as u64;
            let mut seqs: Vec<u64> = state.pending.keys().copied().collect();
            seqs.sort_unstable();
            for seq in seqs {
                let p = state.pending.remove(&seq).expect("listed");
                self.stable.entry(peer).or_default().push(StableEntry {
                    sub_id: p.sub_id,
                    probe: p.probe,
                    message: p.message,
                });
            }
            ctx.with_service::<OsModel, _>(|os, _| {
                os.kill_thread(self.proc);
                os.free(self.proc, heap);
            });
        }
        for subs in self.durable_subs.values_mut() {
            for d in subs.iter_mut() {
                d.attached = false;
            }
        }
        self.engine = MatchingEngine::new();
        self.seen_forwards.clear();
        // next_fwd_seq is deliberately kept: peers' flood dedup keys on
        // (origin, seq), and reusing sequences after a restart would make
        // them silently discard fresh messages.
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        self.gossip_interests(ctx);
    }

    /// Re-deliver everything the stable log holds for this subscriber's
    /// subscription, with fresh delivery sequences from its re-created
    /// subscription. The re-injected messages re-enter the normal
    /// CLIENT-ack pending set so gap recovery covers them too.
    fn on_resync(&mut self, ctx: &mut Context<'_>, conn: ConnId, sub_id: u32) {
        let peer = ctx
            .service::<NetworkFabric>()
            .peer_of(conn, self.endpoint)
            .actor
            .index() as u64;
        if let Some(subs) = self.durable_subs.get_mut(&peer) {
            if let Some(d) = subs.iter_mut().find(|d| d.sub_id == sub_id) {
                d.attached = true;
            }
        }
        let Some(entries) = self.stable.get_mut(&peer) else {
            return;
        };
        let mut mine = Vec::new();
        let mut rest = Vec::new();
        for e in entries.drain(..) {
            if e.sub_id == sub_id {
                mine.push(e);
            } else {
                rest.push(e);
            }
        }
        *entries = rest;
        if mine.is_empty() {
            return;
        }
        let ep = self.endpoint;
        let n = mine.len() as u64;
        let mut ready_at = ctx.now();
        for e in mine {
            let Some(seq) = self.engine.assign_seq(conn, sub_id) else {
                continue;
            };
            ready_at = self
                .cpu(
                    ctx,
                    simprof::Component::NaradaTransport,
                    self.cfg.costs.broker_deliver_base,
                )
                .max(ready_at);
            let bytes = deliver_bytes(&e.message);
            let deliver = BrokerToClient::Deliver {
                sub_id,
                probe: e.probe,
                deliver_seq: seq,
                message: e.message.clone(),
                retransmit: true,
            };
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, ep, bytes, Box::new(deliver), ready_at);
            });
            {
                let mut st = self.stats.borrow_mut();
                st.delivered += 1;
                st.resynced += 1;
            }
            if let Some(state) = self.conns.get_mut(&conn) {
                state.max_sent_seq = Some(state.max_sent_seq.map_or(seq, |s| s.max(seq)));
                state.pending.insert(
                    seq,
                    PendingDelivery {
                        sub_id,
                        probe: e.probe,
                        message: e.message,
                        retransmitted: false,
                    },
                );
            }
        }
        simfault::with_faults(ctx, |inj, _| inj.stats.recovered += n);
        simtrace::with_trace(ctx, |tr, _| {
            tr.count(simtrace::Counter::FaultRecoveries, n);
        });
    }

    fn on_ack(&mut self, ctx: &mut Context<'_>, conn: ConnId, cumulative: u64, extra: Vec<u64>) {
        self.stats.borrow_mut().acks += 1;
        let done = self.cpu(
            ctx,
            simprof::Component::NaradaAck,
            self.cfg.costs.broker_ack_process,
        );
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.pending.is_empty() {
            return;
        }
        // Everything at or below the cumulative seq (or listed) is acked.
        state
            .pending
            .retain(|&seq, _| seq > cumulative && !extra.contains(&seq));
        // Gap recovery: anything still pending below the connection's max
        // sent seq was evidently lost — retransmit once, then give up.
        let max_sent = state.max_sent_seq.unwrap_or(0);
        let mut to_retx: Vec<u64> = state
            .pending
            .iter()
            .filter(|(&seq, p)| seq < max_sent && !p.retransmitted)
            .map(|(&s, _)| s)
            .collect();
        to_retx.sort_unstable();
        let mut drop_list: Vec<u64> = state
            .pending
            .iter()
            .filter(|(&seq, p)| seq < max_sent && p.retransmitted)
            .map(|(&s, _)| s)
            .collect();
        drop_list.sort_unstable();
        for seq in drop_list {
            state.pending.remove(&seq);
        }
        let ep = self.endpoint;
        for seq in to_retx {
            let p = state.pending.get_mut(&seq).expect("just selected");
            p.retransmitted = true;
            let probe = p.probe;
            let deliver = BrokerToClient::Deliver {
                sub_id: p.sub_id,
                probe,
                deliver_seq: seq,
                message: p.message.clone(),
                retransmit: true,
            };
            let bytes = deliver_bytes(&p.message);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                net.send_at(ctx, conn, ep, bytes, Box::new(deliver), done);
            });
            self.stats.borrow_mut().retransmissions += 1;
            let actor = ep.actor.index() as u64;
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    Some(simtrace::TraceId(probe.0)),
                    actor,
                    simtrace::EventKind::Retransmit { attempt: 1 },
                );
                tr.count(simtrace::Counter::Retries, 1);
            });
        }
    }
}

impl Actor for Broker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.endpoint = Endpoint::new(self.node, ctx.self_id());
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        // Direct control from the deployment layer.
        let msg = match msg.downcast::<BrokerControl>() {
            Ok(ctrl) => {
                match *ctrl {
                    BrokerControl::SetPeers { my_ix, peers } => {
                        self.my_ix = my_ix;
                        self.peers = peers;
                        self.gossip_interests(ctx);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        // Fault injection: crash/restart signals arrive directly from the
        // fault driver, not over the network, so a crashed broker still
        // hears its own restart.
        let msg = match msg.downcast::<simfault::FaultSignal>() {
            Ok(sig) => {
                match *sig {
                    simfault::FaultSignal::BrokerCrash => self.on_crash(ctx),
                    simfault::FaultSignal::BrokerRestart => self.on_restart(ctx),
                    simfault::FaultSignal::RegistryRestart => {}
                }
                return;
            }
            Err(m) => m,
        };
        // Network deliveries.
        let Ok(delivery) = msg.downcast::<Delivery>() else {
            return; // unknown message type: ignore
        };
        if self.crashed {
            // A dead JVM: every frame aimed at it evaporates.
            simfault::with_faults(ctx, |inj, _| inj.stats.crash_drops += 1);
            simtrace::with_trace(ctx, |tr, _| {
                tr.count(simtrace::Counter::FaultDrops, 1);
            });
            return;
        }
        let Delivery {
            conn,
            bytes,
            payload,
            ..
        } = *delivery;
        let payload = match payload.downcast::<ClientToBroker>() {
            Ok(c2b) => {
                match *c2b {
                    ClientToBroker::Connect => {
                        let transport = ctx.service::<NetworkFabric>().transport(conn);
                        self.on_connect(ctx, conn, transport);
                    }
                    ClientToBroker::Disconnect => self.on_disconnect(ctx, conn),
                    ClientToBroker::Subscribe {
                        sub_id,
                        topic,
                        selector,
                        ack_mode,
                        queue,
                    } => self.on_subscribe(ctx, conn, sub_id, topic, selector, ack_mode, queue),
                    ClientToBroker::Unsubscribe { sub_id } => {
                        self.engine.unsubscribe(conn, sub_id);
                        self.gossip_interests(ctx);
                    }
                    ClientToBroker::Publish {
                        probe,
                        seq,
                        message,
                        retransmit,
                        queue,
                    } => self.on_publish(ctx, conn, probe, seq, message, retransmit, queue, bytes),
                    ClientToBroker::Ack {
                        cumulative_seq,
                        extra,
                    } => self.on_ack(ctx, conn, cumulative_seq, extra),
                    ClientToBroker::Ping => {
                        // Only connections this incarnation accepted get an
                        // answer; pings on pre-crash connections go
                        // unanswered and trigger client-side detection.
                        if self.conns.contains_key(&conn) {
                            let now = ctx.now();
                            self.send_to_client(
                                ctx,
                                conn,
                                CONTROL_FRAME_BYTES,
                                BrokerToClient::Pong,
                                now,
                            );
                        }
                    }
                    ClientToBroker::Resync { sub_id } => self.on_resync(ctx, conn, sub_id),
                }
                return;
            }
            Err(p) => p,
        };
        if let Ok(b2b) = payload.downcast::<BrokerToBroker>() {
            match *b2b {
                BrokerToBroker::Forward {
                    probe,
                    message,
                    origin,
                    seq,
                    from_ix,
                } => self.on_peer_forward(ctx, probe, message, bytes, origin, seq, from_ix),
                BrokerToBroker::InterestUpdate { broker, topics } => {
                    let interned = topics.iter().map(|t| self.topics.intern(t)).collect();
                    self.peer_interests.insert(broker, interned);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "narada-broker"
    }
}
