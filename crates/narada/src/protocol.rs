//! Wire protocol between Narada clients and brokers, and between brokers.
//!
//! These enums travel as [`simnet::Delivery`] payloads. Sizes on the wire
//! are computed from the carried message (`wire::Message::wire_size`) plus
//! small fixed framing for control messages.

use jms::AckMode;
use telemetry::ProbeId;
use wire::{Message, MessageId};

/// Framing bytes for control messages (type tag + ids).
pub const CONTROL_FRAME_BYTES: usize = 32;
/// Framing added to data messages by the Narada event envelope.
pub const EVENT_ENVELOPE_BYTES: usize = 48;

/// Client → broker.
pub enum ClientToBroker {
    /// Open a JMS connection (broker spawns a service thread or refuses).
    Connect,
    /// Close the connection (broker frees the thread).
    Disconnect,
    /// Create a subscription on this connection.
    Subscribe {
        /// Client-chosen id, unique per connection.
        sub_id: u32,
        /// Destination name.
        topic: String,
        /// Selector source text (compiled broker-side, as real JMS does).
        selector: String,
        /// Acknowledge mode of the consuming session.
        ack_mode: AckMode,
        /// True for a JMS queue receiver (point-to-point mode); false for
        /// a topic subscription.
        queue: bool,
    },
    /// Tear down a subscription.
    Unsubscribe {
        /// Id from `Subscribe`.
        sub_id: u32,
    },
    /// Publish a message to its destination.
    Publish {
        /// Telemetry probe (carried, not transmitted in the byte count —
        /// it stands in for the sender timestamp the real payload holds).
        probe: ProbeId,
        /// Per-connection sequence number (gap detection over UDP).
        seq: u64,
        /// The message.
        message: Message,
        /// True if this is a retransmission (duplicates are filtered).
        retransmit: bool,
        /// True for a queue send (point-to-point); false for pub/sub.
        queue: bool,
    },
    /// Subscriber acknowledges deliveries (UDP reliability / CLIENT mode).
    Ack {
        /// Highest contiguous delivery sequence received.
        cumulative_seq: u64,
        /// Individually acked out-of-order sequences beyond it.
        extra: Vec<u64>,
    },
    /// Liveness probe sent by reconnect-enabled clients; a broker that is
    /// up answers [`BrokerToClient::Pong`], a crashed one stays silent.
    Ping,
    /// After reconnecting, a CLIENT-ack subscriber asks the broker to
    /// re-deliver everything its crashed predecessor left unacknowledged
    /// in stable storage for this subscription.
    Resync {
        /// Id of the (re-created) subscription to resync.
        sub_id: u32,
    },
}

/// Broker → client.
pub enum BrokerToClient {
    /// Connection accepted.
    ConnectOk,
    /// Connection refused (the paper's "out of memory to create new
    /// threads" shows up here).
    ConnectRefused {
        /// Human-readable reason.
        reason: String,
    },
    /// Subscription established.
    SubscribeOk {
        /// Id from the request.
        sub_id: u32,
    },
    /// Broker's publish acknowledgement (UDP reliability: the publisher's
    /// synchronous `publish()` completes when this arrives).
    PublishAck {
        /// Sequence being acknowledged.
        seq: u64,
    },
    /// A message delivery to a subscriber.
    Deliver {
        /// Matching subscription.
        sub_id: u32,
        /// Telemetry probe carried through the pipeline.
        probe: ProbeId,
        /// Broker-assigned per-(connection,subscription) delivery sequence.
        deliver_seq: u64,
        /// The message.
        message: Message,
        /// True if this is a retransmission.
        retransmit: bool,
    },
    /// Liveness answer to [`ClientToBroker::Ping`].
    Pong,
}

/// Broker → broker (the Broker Network Map layer).
pub enum BrokerToBroker {
    /// Forward a published message through the broker network. v1.1.3
    /// floods: each broker re-forwards to every peer except the sender,
    /// deduplicating on (origin, seq) — the "data congestion" the paper
    /// observed.
    Forward {
        /// Telemetry probe.
        probe: ProbeId,
        /// The message.
        message: Message,
        /// Originating broker index.
        origin: u16,
        /// Per-origin sequence number (dedup key).
        seq: u64,
        /// Broker that sent this copy (suppresses immediate back-flow).
        from_ix: u16,
    },
    /// Gossip: a broker's subscription interest set changed. Carries the
    /// full topic list (small in these experiments); with
    /// subscription-aware routing enabled brokers use it to prune
    /// forwarding.
    InterestUpdate {
        /// Broker index whose interests these are.
        broker: u16,
        /// Topics with at least one local subscriber.
        topics: Vec<String>,
    },
}

/// Duplicate-filter key for deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeliveryKey {
    /// Subscription.
    pub sub_id: u32,
    /// Delivery sequence.
    pub deliver_seq: u64,
}

/// Convenience: wire size of a published message including envelope.
pub fn publish_bytes(message: &Message) -> usize {
    message.wire_size() + EVENT_ENVELOPE_BYTES
}

/// Convenience: wire size of a delivery.
pub fn deliver_bytes(message: &Message) -> usize {
    message.wire_size() + EVENT_ENVELOPE_BYTES
}

/// A message id that is unique per (connection, seq); used in logs.
pub fn seq_message_id(conn_ix: u32, seq: u64) -> MessageId {
    MessageId(((conn_ix as u64) << 40) | (seq & 0xFF_FFFF_FFFF))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use wire::Headers;

    #[test]
    fn byte_helpers_add_envelope() {
        let m = Message::text(Headers::new(MessageId(1), "t", SimTime::ZERO), "body");
        assert_eq!(publish_bytes(&m), m.wire_size() + EVENT_ENVELOPE_BYTES);
        assert_eq!(deliver_bytes(&m), m.wire_size() + EVENT_ENVELOPE_BYTES);
    }

    #[test]
    fn seq_message_ids_unique_across_conns() {
        let a = seq_message_id(1, 7);
        let b = seq_message_id(2, 7);
        let c = seq_message_id(1, 8);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
