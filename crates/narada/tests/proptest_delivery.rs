//! Property test: over reliable transports, every published message is
//! delivered exactly once to every subscription whose selector matches —
//! for arbitrary fleets of publishers, subscribers and selector bounds.

use narada::{Broker, ClientEvent, ClientTimer, ConnSettings, NaradaClientSet, NaradaConfig};
use proptest::prelude::*;
use simcore::{Actor, Context, Payload, SimDuration, SimTime, Simulation};
use simnet::{ConnId, Delivery, Endpoint, FabricConfig, NetworkFabric, Transport};
use simos::{NodeId, NodeSpec, OsModel, ProcessSpec, VmstatLog};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use telemetry::RttCollector;
use wire::{Headers, Message, MessageId, Value};

#[derive(Debug, Clone)]
struct Scenario {
    transport: Transport,
    /// Subscriber selector upper bounds: subscription i matches id < bound.
    sub_bounds: Vec<i32>,
    /// Published message ids (one publisher connection per scenario).
    pub_ids: Vec<i32>,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(Transport::Tcp), Just(Transport::Nio)],
        proptest::collection::vec(0i32..100, 1..5),
        proptest::collection::vec(0i32..100, 1..30),
        any::<u64>(),
    )
        .prop_map(|(transport, sub_bounds, pub_ids, seed)| Scenario {
            transport,
            sub_bounds,
            pub_ids,
            seed,
        })
}

type Arrivals = Rc<RefCell<HashMap<(usize, i32), u32>>>; // (sub_ix, msg_id) -> count

struct Host {
    scenario: Scenario,
    broker_ep: Endpoint,
    set: Option<NaradaClientSet>,
    sub_conns: Vec<ConnId>,
    pub_conn: Option<ConnId>,
    subscribed: usize,
    arrivals: Arrivals,
    sub_of_conn: HashMap<ConnId, usize>,
    id_of_probe: HashMap<u64, i32>,
}

struct PublishAll;

impl Actor for Host {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let settings = ConnSettings {
            transport: self.scenario.transport,
            ack_mode: jms::AckMode::Auto,
            reconnect: None,
        };
        let mut set = NaradaClientSet::new(NaradaConfig::v1_1_3(), NodeId(1));
        for i in 0..self.scenario.sub_bounds.len() {
            let c = set.connect(ctx, self.broker_ep, settings);
            self.sub_conns.push(c);
            self.sub_of_conn.insert(c, i);
        }
        self.pub_conn = Some(set.connect(ctx, self.broker_ep, settings));
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        ClientEvent::Connected(conn) => {
                            if let Some(&ix) = self.sub_of_conn.get(&conn) {
                                let bound = self.scenario.sub_bounds[ix];
                                let set = self.set.as_mut().unwrap();
                                set.subscribe(ctx, conn, 0, "t", format!("id < {bound}"));
                            }
                        }
                        ClientEvent::Subscribed(_, _) => {
                            self.subscribed += 1;
                            if self.subscribed == self.scenario.sub_bounds.len() {
                                ctx.timer(SimDuration::from_millis(200), PublishAll);
                            }
                        }
                        ClientEvent::MessageArrived { conn, probe, .. } => {
                            let ix = self.sub_of_conn[&conn];
                            let id = self.id_of_probe[&probe.0];
                            *self.arrivals.borrow_mut().entry((ix, id)).or_insert(0) += 1;
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<PublishAll>().is_ok() {
            let conn = self.pub_conn.expect("connected");
            let ids = self.scenario.pub_ids.clone();
            for (n, id) in ids.into_iter().enumerate() {
                let m = Message::text(Headers::new(MessageId(n as u64), "t", ctx.now()), "x")
                    .with_property("id", Value::Int(id));
                let probe = set.publish(ctx, conn, m);
                self.id_of_probe.insert(probe.0, id);
            }
        }
    }
}

fn run(scenario: &Scenario) -> HashMap<(usize, i32), u32> {
    let mut sim = Simulation::new(scenario.seed);
    let mut os = OsModel::new();
    let n0 = os.add_node(NodeSpec::hydra("hydra1", 0.0005));
    let _n1 = os.add_node(NodeSpec::hydra("hydra2", 0.0001));
    let proc = os.add_process(n0, ProcessSpec::jvm_1g());
    sim.add_service(os);
    sim.add_service(NetworkFabric::new(
        FabricConfig {
            udp_loss_prob: 0.0,
            ..FabricConfig::default()
        },
        2,
    ));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());
    let broker = sim.add_actor(Broker::new(NaradaConfig::v1_1_3(), n0, proc));
    let arrivals: Arrivals = Default::default();
    sim.add_actor(Host {
        scenario: scenario.clone(),
        broker_ep: Endpoint::new(n0, broker),
        set: None,
        sub_conns: Vec::new(),
        pub_conn: None,
        subscribed: 0,
        arrivals: arrivals.clone(),
        sub_of_conn: HashMap::new(),
        id_of_probe: HashMap::new(),
    });
    sim.run_until(SimTime::from_secs(60));
    let out = arrivals.borrow().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exactly_once_per_matching_subscription(scenario in arb_scenario()) {
        let arrivals = run(&scenario);
        // Expected: subscription i receives message id iff id < bound_i,
        // exactly once. Count per (sub, id) pair, accounting for
        // duplicate ids in the publish list.
        let mut expected: HashMap<(usize, i32), u32> = HashMap::new();
        for (i, &bound) in scenario.sub_bounds.iter().enumerate() {
            for &id in &scenario.pub_ids {
                if id < bound {
                    *expected.entry((i, id)).or_insert(0) += 1;
                }
            }
        }
        prop_assert_eq!(arrivals, expected);
    }
}
