//! End-to-end broker tests on a simulated two-node cluster: publish →
//! match → deliver → acknowledge across every transport the paper tests.

use jms::AckMode;
use narada::{
    Broker, BrokerNetwork, ClientEvent, ClientTimer, ConnSettings, NaradaClientSet, NaradaConfig,
};
use simcore::{Actor, Context, Payload, SimDuration, SimTime, Simulation};
use simnet::{ConnId, Delivery, Endpoint, FabricConfig, NetworkFabric, Transport};
use simos::{Bytes, NodeId, NodeSpec, OsModel, ProcessId, ProcessSpec, VmstatLog};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::RttCollector;
use wire::{Headers, Message, MessageId, Value};

/// Build a world with `n` Hydra nodes; returns (sim, node ids).
fn build_world(n: usize, fabric: FabricConfig, seed: u64) -> (Simulation, Vec<NodeId>) {
    let mut sim = Simulation::new(seed);
    let mut os = OsModel::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| os.add_node(NodeSpec::hydra(format!("hydra{}", i + 1), 0.0005)))
        .collect();
    sim.add_service(os);
    sim.add_service(NetworkFabric::new(fabric, n));
    sim.add_service(RttCollector::new());
    sim.add_service(VmstatLog::new());
    (sim, nodes)
}

fn jvm(sim: &mut Simulation, node: NodeId) -> ProcessId {
    sim.service_mut::<OsModel>()
        .unwrap()
        .add_process(node, ProcessSpec::jvm_1g())
}

/// Counters shared with the test body.
#[derive(Default)]
struct Shared {
    connected: u32,
    refused: u32,
    arrived: u32,
    abandoned: u32,
}

/// A scripted driver: opens `pub_conns` publisher connections and one
/// subscriber connection, subscribes, then publishes `msgs_per_conn`
/// messages per publisher at `interval`, with message ids 0,1,2,… per
/// connection.
struct Driver {
    node: NodeId,
    broker_ep: Endpoint,
    settings: ConnSettings,
    selector: String,
    pub_conns: usize,
    msgs_per_conn: u32,
    interval: SimDuration,
    set: Option<NaradaClientSet>,
    cfg: NaradaConfig,
    sub_conn: Option<ConnId>,
    publishers: Vec<ConnId>,
    shared: Rc<RefCell<Shared>>,
    next_msg_id: u64,
}

struct PublishTick {
    conn_ix: usize,
    remaining: u32,
    msg_ix: u32,
}

impl Driver {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: NodeId,
        broker_ep: Endpoint,
        settings: ConnSettings,
        selector: &str,
        pub_conns: usize,
        msgs_per_conn: u32,
        cfg: NaradaConfig,
        shared: Rc<RefCell<Shared>>,
    ) -> Self {
        Driver {
            node,
            broker_ep,
            settings,
            selector: selector.to_owned(),
            pub_conns,
            msgs_per_conn,
            interval: SimDuration::from_millis(200),
            set: None,
            cfg,
            sub_conn: None,
            publishers: Vec::new(),
            shared,
            next_msg_id: 0,
        }
    }

    fn monitoring_message(&mut self, topic: &str, id: i32) -> Message {
        self.next_msg_id += 1;
        Message::map(
            Headers::new(MessageId(self.next_msg_id), topic, SimTime::ZERO),
            [
                ("power".to_string(), Value::Double(850.5)),
                ("voltage".to_string(), Value::Float(229.9)),
            ],
        )
        .with_property("id", id)
    }
}

impl Actor for Driver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = NaradaClientSet::new(self.cfg.clone(), self.node);
        // Subscriber connection first.
        let sub = set.connect(ctx, self.broker_ep, self.settings);
        self.sub_conn = Some(sub);
        for _ in 0..self.pub_conns {
            let c = set.connect(ctx, self.broker_ep, self.settings);
            self.publishers.push(c);
        }
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                let events = set.handle_delivery(ctx, *d);
                for ev in events {
                    match ev {
                        ClientEvent::Connected(conn) => {
                            self.shared.borrow_mut().connected += 1;
                            if Some(conn) == self.sub_conn {
                                set.subscribe(ctx, conn, 0, "power.monitor", &self.selector);
                            }
                        }
                        ClientEvent::Refused(_, _) => {
                            self.shared.borrow_mut().refused += 1;
                        }
                        ClientEvent::Subscribed(_, _) => {
                            // Start all publishers.
                            for ix in 0..self.publishers.len() {
                                ctx.timer(
                                    SimDuration::from_millis(50 * (ix as u64 + 1)),
                                    PublishTick {
                                        conn_ix: ix,
                                        remaining: self.msgs_per_conn,
                                        msg_ix: 0,
                                    },
                                );
                            }
                        }
                        ClientEvent::MessageArrived { .. } => {
                            self.shared.borrow_mut().arrived += 1;
                        }
                        ClientEvent::PublishAbandoned { .. } => {
                            self.shared.borrow_mut().abandoned += 1;
                        }
                        // Reconnect machinery is off (reconnect: None).
                        ClientEvent::Reconnecting { .. }
                        | ClientEvent::Reconnected(_)
                        | ClientEvent::ConnectionLost(_) => unreachable!("reconnect disabled"),
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ClientTimer>() {
            Ok(t) => {
                for ev in set.handle_timer(ctx, *t) {
                    if let ClientEvent::PublishAbandoned { .. } = ev {
                        self.shared.borrow_mut().abandoned += 1;
                    }
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(tick) = msg.downcast::<PublishTick>() {
            let PublishTick {
                conn_ix,
                remaining,
                msg_ix,
            } = *tick;
            if remaining == 0 {
                return;
            }
            let conn = self.publishers[conn_ix];
            if set.is_ready(conn) {
                let m = self.monitoring_message("power.monitor", msg_ix as i32);
                let set = self.set.as_mut().unwrap();
                set.publish(ctx, conn, m);
                ctx.timer(
                    self.interval,
                    PublishTick {
                        conn_ix,
                        remaining: remaining - 1,
                        msg_ix: msg_ix + 1,
                    },
                );
            } else {
                // Not ready yet; retry shortly.
                ctx.timer(SimDuration::from_millis(100), *tick);
            }
        }
    }
}

fn quiet_fabric() -> FabricConfig {
    FabricConfig {
        udp_loss_prob: 0.0,
        ..FabricConfig::default()
    }
}

/// One broker on node 0, one driver on node 1.
fn single_broker_run(
    settings: ConnSettings,
    selector: &str,
    msgs: u32,
    fabric: FabricConfig,
) -> (Simulation, Rc<RefCell<Shared>>) {
    let (mut sim, nodes) = build_world(2, fabric, 11);
    let broker_proc = jvm(&mut sim, nodes[0]);
    let broker = Broker::new(NaradaConfig::v1_1_3(), nodes[0], broker_proc);
    let broker_id = sim.add_actor(broker);
    let broker_ep = Endpoint::new(nodes[0], broker_id);
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver::new(
        nodes[1],
        broker_ep,
        settings,
        selector,
        1,
        msgs,
        NaradaConfig::v1_1_3(),
        shared.clone(),
    ));
    sim.run_until(SimTime::from_secs(120));
    (sim, shared)
}

#[test]
fn tcp_publish_subscribe_end_to_end() {
    let (sim, shared) =
        single_broker_run(ConnSettings::tcp_auto(), "id < 10000", 10, quiet_fabric());
    let s = shared.borrow();
    assert_eq!(s.connected, 2);
    assert_eq!(s.arrived, 10);
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 10);
    assert_eq!(summary.received, 10);
    assert_eq!(summary.loss_rate, 0.0);
    // Uncontended TCP RTT on the testbed: single-digit milliseconds.
    assert!(
        summary.rtt_mean_ms > 0.5 && summary.rtt_mean_ms < 20.0,
        "rtt = {}",
        summary.rtt_mean_ms
    );
    // Decomposition: all three phases short, PT dominated by broker hop.
    assert!(summary.prt_mean_ms < 5.0);
    assert!(summary.srt_mean_ms < 5.0);
    assert!(
        (summary.rtt_mean_ms - (summary.prt_mean_ms + summary.pt_mean_ms + summary.srt_mean_ms))
            .abs()
            < 0.01
    );
}

#[test]
fn selector_filters_messages() {
    let (sim, shared) = single_broker_run(ConnSettings::tcp_auto(), "id < 5", 10, quiet_fabric());
    assert_eq!(shared.borrow().arrived, 5, "ids 0..4 match id < 5");
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 10);
    assert_eq!(summary.received, 5);
}

#[test]
fn udp_publish_is_slower_than_tcp() {
    let (tcp_sim, _) = single_broker_run(ConnSettings::tcp_auto(), "", 20, quiet_fabric());
    let udp = ConnSettings {
        transport: Transport::Udp,
        ack_mode: AckMode::Auto,
        reconnect: None,
    };
    let (udp_sim, shared) = single_broker_run(udp, "", 20, quiet_fabric());
    assert_eq!(shared.borrow().arrived, 20, "no loss at p=0");
    let tcp = tcp_sim.service::<RttCollector>().unwrap().summary();
    let udp = udp_sim.service::<RttCollector>().unwrap().summary();
    // The synchronous publish-ack makes UDP's PRT (and RTT) larger.
    assert!(
        udp.prt_mean_ms > tcp.prt_mean_ms * 2.0,
        "udp PRT {} vs tcp PRT {}",
        udp.prt_mean_ms,
        tcp.prt_mean_ms
    );
    assert!(udp.rtt_mean_ms > tcp.rtt_mean_ms);
}

#[test]
fn nio_slightly_slower_than_tcp() {
    let nio = ConnSettings {
        transport: Transport::Nio,
        ack_mode: AckMode::Auto,
        reconnect: None,
    };
    let (nio_sim, shared) = single_broker_run(nio, "", 20, quiet_fabric());
    assert_eq!(shared.borrow().arrived, 20);
    let (tcp_sim, _) = single_broker_run(ConnSettings::tcp_auto(), "", 20, quiet_fabric());
    let nio = nio_sim.service::<RttCollector>().unwrap().summary();
    let tcp = tcp_sim.service::<RttCollector>().unwrap().summary();
    assert!(
        nio.rtt_mean_ms > tcp.rtt_mean_ms,
        "nio {} should exceed tcp {}",
        nio.rtt_mean_ms,
        tcp.rtt_mean_ms
    );
    assert!(nio.rtt_mean_ms < tcp.rtt_mean_ms * 2.0, "but not wildly");
}

#[test]
fn udp_loss_surfaces_in_summary() {
    let fabric = FabricConfig {
        udp_loss_prob: 0.05, // exaggerated for a short test
        ..FabricConfig::default()
    };
    let udp = ConnSettings {
        transport: Transport::Udp,
        ack_mode: AckMode::Auto,
        reconnect: None,
    };
    let (sim, _) = single_broker_run(udp, "", 200, fabric);
    let s = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(s.sent, 200);
    assert!(s.received < 200, "some deliveries must drop at 5% loss");
    assert!(s.received > 150, "publish retransmit keeps most");
    assert!(s.loss_rate > 0.0);
}

#[test]
fn client_ack_recovers_losses() {
    let fabric = FabricConfig {
        udp_loss_prob: 0.05,
        ..FabricConfig::default()
    };
    let cli = ConnSettings {
        transport: Transport::Udp,
        ack_mode: AckMode::Client,
        reconnect: None,
    };
    let (cli_sim, _) = single_broker_run(cli, "", 200, fabric.clone());
    let auto = ConnSettings {
        transport: Transport::Udp,
        ack_mode: AckMode::Auto,
        reconnect: None,
    };
    let (auto_sim, _) = single_broker_run(auto, "", 200, fabric);
    let cli = cli_sim.service::<RttCollector>().unwrap().summary();
    let auto = auto_sim.service::<RttCollector>().unwrap().summary();
    assert!(
        cli.loss_rate < auto.loss_rate,
        "CLIENT-ack gap recovery should reduce loss: {} vs {}",
        cli.loss_rate,
        auto.loss_rate
    );
}

#[test]
fn broker_refuses_connections_when_out_of_memory() {
    let (mut sim, nodes) = build_world(2, quiet_fabric(), 17);
    // A tiny process: native pool fits only a handful of threads.
    let proc = sim.service_mut::<OsModel>().unwrap().add_process(
        nodes[0],
        ProcessSpec {
            heap_cap: Bytes::mib(1500),
            stack_size: Bytes::mib(64),
            baseline: Bytes::mib(16),
        },
    );
    let broker = Broker::new(NaradaConfig::v1_1_3(), nodes[0], proc);
    let stats = broker.stats_handle();
    let broker_id = sim.add_actor(broker);
    let broker_ep = Endpoint::new(nodes[0], broker_id);
    let shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver::new(
        nodes[1],
        broker_ep,
        ConnSettings::tcp_auto(),
        "",
        20, // 21 connections total vs ~4 thread slots
        1,
        NaradaConfig::v1_1_3(),
        shared.clone(),
    ));
    sim.run_until(SimTime::from_secs(60));
    let s = shared.borrow();
    assert!(s.refused > 0, "some connections must be refused");
    assert!(s.connected > 0, "but the first few are accepted");
    assert_eq!(u64::from(s.refused), stats.borrow().refused);
}

#[test]
fn dbn_broadcast_reaches_uninterested_brokers_routed_does_not() {
    for (broadcast, expect_waste) in [(true, true), (false, false)] {
        let (mut sim, nodes) = build_world(4, quiet_fabric(), 23);
        let procs: Vec<ProcessId> = (0..3).map(|i| jvm(&mut sim, nodes[i])).collect();
        let cfg = if broadcast {
            NaradaConfig::v1_1_3()
        } else {
            NaradaConfig::routed()
        };
        let hosts: Vec<(NodeId, ProcessId)> = (0..3).map(|i| (nodes[i], procs[i])).collect();
        let network = BrokerNetwork::deploy(&mut sim, &cfg, &hosts, SimDuration::from_millis(10));
        // Driver connects to broker 0 only; brokers 1 and 2 have no
        // subscribers.
        let shared = Rc::new(RefCell::new(Shared::default()));
        sim.add_actor(Driver::new(
            nodes[3],
            network.endpoints[0],
            ConnSettings::tcp_auto(),
            "",
            1,
            10,
            cfg.clone(),
            shared.clone(),
        ));
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(shared.borrow().arrived, 10, "local delivery always works");
        let waste: u64 =
            network.stats[1].borrow().from_peers + network.stats[2].borrow().from_peers;
        if expect_waste {
            assert!(
                waste >= 20,
                "v1.1.3 broadcasts every message to every peer (got {waste})"
            );
        } else {
            assert_eq!(waste, 0, "routed mode prunes uninterested brokers");
        }
    }
}

#[test]
fn cross_broker_delivery_works() {
    // Subscriber on broker 1, publisher on broker 0: message must cross
    // the broker network.
    let (mut sim, nodes) = build_world(4, quiet_fabric(), 29);
    let procs: Vec<ProcessId> = (0..2).map(|i| jvm(&mut sim, nodes[i])).collect();
    let cfg = NaradaConfig::v1_1_3();
    let hosts: Vec<(NodeId, ProcessId)> = (0..2).map(|i| (nodes[i], procs[i])).collect();
    let network = BrokerNetwork::deploy(&mut sim, &cfg, &hosts, SimDuration::from_millis(10));

    // Subscriber driver (no publishers) on broker 1.
    let sub_shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver::new(
        nodes[2],
        network.endpoints[1],
        ConnSettings::tcp_auto(),
        "",
        0,
        0,
        cfg.clone(),
        sub_shared.clone(),
    ));
    // Publisher driver on broker 0 (its own subscriber conn also gets the
    // messages; the interesting count is the cross-broker one).
    let pub_shared = Rc::new(RefCell::new(Shared::default()));
    sim.add_actor(Driver::new(
        nodes[3],
        network.endpoints[0],
        ConnSettings::tcp_auto(),
        "",
        1,
        10,
        cfg,
        pub_shared.clone(),
    ));
    sim.run_until(SimTime::from_secs(60));
    assert_eq!(
        sub_shared.borrow().arrived,
        10,
        "messages crossed the broker network"
    );
    assert_eq!(pub_shared.borrow().arrived, 10, "local subscriber too");
}

/// Point-to-point mode: two queue receivers split the messages; every
/// message reaches exactly one of them.
struct QueueDriver {
    node: NodeId,
    broker_ep: Endpoint,
    cfg: NaradaConfig,
    set: Option<NaradaClientSet>,
    sender: Option<ConnId>,
    receivers: Vec<ConnId>,
    per_receiver: Rc<RefCell<Vec<u32>>>,
    to_send: u32,
}

struct SendTick(u32);

impl Actor for QueueDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = NaradaClientSet::new(self.cfg.clone(), self.node);
        self.sender = Some(set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto()));
        for _ in 0..2 {
            self.receivers
                .push(set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto()));
        }
        self.set = Some(set);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        ClientEvent::Connected(conn) => {
                            if let Some(ix) = self.receivers.iter().position(|&c| c == conn) {
                                let set = self.set.as_mut().unwrap();
                                set.subscribe_queue(ctx, conn, 0, "jobs", "");
                                if ix == self.receivers.len() - 1 {
                                    ctx.timer(SimDuration::from_millis(500), SendTick(0));
                                }
                            }
                        }
                        ClientEvent::MessageArrived { conn, .. } => {
                            let ix = self
                                .receivers
                                .iter()
                                .position(|&c| c == conn)
                                .expect("arrived at a receiver");
                            self.per_receiver.borrow_mut()[ix] += 1;
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<narada::ClientTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if let Ok(tick) = msg.downcast::<SendTick>() {
            let n = tick.0;
            if n >= self.to_send {
                return;
            }
            let sender = self.sender.expect("connected");
            if set.is_ready(sender) {
                let m = wire::Message::text(
                    wire::Headers::new(wire::MessageId(u64::from(n)), "jobs", ctx.now()),
                    "work item",
                )
                .with_property("id", n as i32);
                set.send_to_queue(ctx, sender, m);
                ctx.timer(SimDuration::from_millis(100), SendTick(n + 1));
            } else {
                ctx.timer(SimDuration::from_millis(100), *tick);
            }
        }
    }
}

#[test]
fn ptp_queue_splits_work_between_receivers() {
    let (mut sim, nodes) = build_world(2, quiet_fabric(), 67);
    let proc = jvm(&mut sim, nodes[0]);
    let broker = Broker::new(NaradaConfig::v1_1_3(), nodes[0], proc);
    let broker_id = sim.add_actor(broker);
    let per_receiver: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(vec![0, 0]));
    sim.add_actor(QueueDriver {
        node: nodes[1],
        broker_ep: Endpoint::new(nodes[0], broker_id),
        cfg: NaradaConfig::v1_1_3(),
        set: None,
        sender: None,
        receivers: Vec::new(),
        per_receiver: per_receiver.clone(),
        to_send: 20,
    });
    sim.run_until(SimTime::from_secs(30));
    let counts = per_receiver.borrow();
    assert_eq!(counts[0] + counts[1], 20, "every message delivered once");
    assert_eq!(counts[0], 10, "round-robin split");
    assert_eq!(counts[1], 10);
    let summary = sim.service::<RttCollector>().unwrap().summary();
    assert_eq!(summary.sent, 20);
    assert_eq!(summary.received, 20, "PTP: one delivery per message");
}

/// Connection churn: a broker at its thread ceiling accepts new
/// connections again once old ones disconnect (resources are freed).
struct ChurnDriver {
    node: NodeId,
    broker_ep: Endpoint,
    cfg: NaradaConfig,
    set: Option<NaradaClientSet>,
    first_wave: Vec<ConnId>,
    outcomes: Rc<RefCell<(u32, u32)>>, // (accepted, refused)
    phase: u8,
}

struct NextPhase;

impl Actor for ChurnDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut set = NaradaClientSet::new(self.cfg.clone(), self.node);
        // Phase 1: fill the broker to its ceiling (the tiny test process
        // below fits ~6 threads).
        for _ in 0..6 {
            self.first_wave
                .push(set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto()));
        }
        self.set = Some(set);
        ctx.timer(SimDuration::from_secs(2), NextPhase);
    }

    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        let set = self.set.as_mut().expect("started");
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                for ev in set.handle_delivery(ctx, *d) {
                    match ev {
                        ClientEvent::Connected(_) => self.outcomes.borrow_mut().0 += 1,
                        ClientEvent::Refused(_, _) => self.outcomes.borrow_mut().1 += 1,
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<narada::ClientTimer>() {
            Ok(t) => {
                set.handle_timer(ctx, *t);
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<NextPhase>().is_ok() {
            match self.phase {
                0 => {
                    // Phase 2: a 7th connection must be refused.
                    set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto());
                    self.phase = 1;
                    ctx.timer(SimDuration::from_secs(2), NextPhase);
                }
                1 => {
                    // Phase 3: free two connections…
                    let a = self.first_wave[0];
                    let b = self.first_wave[1];
                    set.disconnect(ctx, a);
                    set.disconnect(ctx, b);
                    self.phase = 2;
                    ctx.timer(SimDuration::from_secs(2), NextPhase);
                }
                _ => {
                    // …then two more connections must be accepted again.
                    set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto());
                    set.connect(ctx, self.broker_ep, ConnSettings::tcp_auto());
                }
            }
        }
    }
}

#[test]
fn disconnect_frees_broker_threads_for_new_connections() {
    let (mut sim, nodes) = build_world(2, quiet_fabric(), 71);
    // Tiny native pool: exactly 6 thread slots (native pool = 2048 − 256
    // OS − 1500 heap = 292 MiB; 292 / 48 = 6.08).
    let proc = sim.service_mut::<OsModel>().unwrap().add_process(
        nodes[0],
        ProcessSpec {
            heap_cap: Bytes::mib(1500),
            stack_size: Bytes::mib(48),
            baseline: Bytes::mib(16),
        },
    );
    let broker = Broker::new(NaradaConfig::v1_1_3(), nodes[0], proc);
    let broker_id = sim.add_actor(broker);
    let outcomes: Rc<RefCell<(u32, u32)>> = Default::default();
    sim.add_actor(ChurnDriver {
        node: nodes[1],
        broker_ep: Endpoint::new(nodes[0], broker_id),
        cfg: NaradaConfig::v1_1_3(),
        set: None,
        first_wave: Vec::new(),
        outcomes: outcomes.clone(),
        phase: 0,
    });
    sim.run_until(SimTime::from_secs(20));
    let (accepted, refused) = *outcomes.borrow();
    assert_eq!(refused, 1, "the 7th connection is refused at the ceiling");
    assert_eq!(
        accepted, 8,
        "6 initial + 2 after churn are accepted (threads were freed)"
    );
}
