//! Property tests for the network fabric: conservation, per-connection
//! FIFO for ordered transports, and latency sanity under random traffic.

use proptest::prelude::*;
use simcore::{Actor, ActorId, Context, Payload, SimDuration, SimTime, Simulation};
use simnet::{ConnId, Delivery, Endpoint, FabricConfig, NetworkFabric, Transport};
use simos::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

type Log = Rc<RefCell<Vec<(u32, u64, usize)>>>; // (conn, time_us, tag)

struct Recorder {
    log: Log,
}

impl Actor for Recorder {
    fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
        if let Ok(d) = msg.downcast::<Delivery>() {
            let tag = *d.payload.downcast::<usize>().unwrap();
            self.log
                .borrow_mut()
                .push((d.conn.0, ctx.now().as_micros(), tag));
        }
    }
}

/// One randomized traffic plan: (conn_ix, send_delay_us, bytes).
#[derive(Debug, Clone)]
struct Plan {
    transport: Transport,
    conns: usize,
    sends: Vec<(usize, u64, usize)>,
    loss: f64,
    seed: u64,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        prop_oneof![
            Just(Transport::Tcp),
            Just(Transport::Nio),
            Just(Transport::Udp),
            Just(Transport::Http),
        ],
        1usize..4,
        proptest::collection::vec((0usize..4, 0u64..200_000, 1usize..4000), 1..60),
        0.0f64..0.3,
        any::<u64>(),
    )
        .prop_map(|(transport, conns, mut sends, loss, seed)| {
            for s in &mut sends {
                s.0 %= conns;
            }
            Plan {
                transport,
                conns,
                sends,
                loss,
                seed,
            }
        })
}

fn run_plan(plan: &Plan) -> (Vec<(u32, u64, usize)>, simnet::FabricStats) {
    let mut sim = Simulation::new(plan.seed);
    let cfg = FabricConfig {
        udp_loss_prob: plan.loss,
        ..FabricConfig::default()
    };
    sim.add_service(NetworkFabric::new(cfg, 2));
    let log: Log = Default::default();
    let rx = sim.add_actor(Recorder { log: log.clone() });
    struct Sender {
        plan: Plan,
        rx: ActorId,
        conns: Vec<ConnId>,
    }
    impl Actor for Sender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let me = Endpoint::new(NodeId(0), ctx.self_id());
            let peer = Endpoint::new(NodeId(1), self.rx);
            let transport = self.plan.transport;
            self.conns = (0..self.plan.conns)
                .map(|_| {
                    ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                        net.open(ctx.now(), transport, me, peer)
                    })
                })
                .collect();
            for (tag, &(c, delay, _bytes)) in self.plan.sends.iter().enumerate() {
                ctx.timer(SimDuration::from_micros(delay), (tag, c));
            }
        }
        fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
            if let Ok(t) = msg.downcast::<(usize, usize)>() {
                let (tag, c) = *t;
                let me = Endpoint::new(NodeId(0), ctx.self_id());
                let bytes = self.plan.sends[tag].2;
                let conn = self.conns[c];
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    net.send(ctx, conn, me, bytes, Box::new(tag));
                });
            }
        }
    }
    sim.add_actor(Sender {
        plan: plan.clone(),
        rx,
        conns: Vec::new(),
    });
    sim.run_until(SimTime::from_secs(3600));
    let stats = sim.service::<NetworkFabric>().unwrap().stats();
    let out = log.borrow().clone();
    (out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_ordering(plan in arb_plan()) {
        let (deliveries, stats) = run_plan(&plan);
        // Conservation: sent = delivered + dropped, and only UDP drops.
        prop_assert_eq!(stats.frames_sent, plan.sends.len() as u64);
        prop_assert_eq!(stats.frames_delivered + stats.frames_dropped, stats.frames_sent);
        if plan.transport.ordered() {
            prop_assert_eq!(stats.frames_dropped, 0, "only UDP may drop");
            prop_assert_eq!(deliveries.len(), plan.sends.len());
        }
        prop_assert_eq!(deliveries.len() as u64, stats.frames_delivered);
        // Bytes accounting.
        let bytes: usize = plan.sends.iter().map(|s| s.2).sum();
        prop_assert_eq!(stats.bytes_sent as usize, bytes);
        // Per-connection FIFO for ordered transports: on each connection,
        // delivery order equals per-connection send order (tags were
        // assigned in global send-schedule order; sort per conn by send
        // time to get the expected sequence).
        if plan.transport.ordered() {
            for c in 0..plan.conns {
                // The fabric assigns ConnIds in open order starting at 0,
                // and the sender opens its connections first.
                let conn_id = c as u32;
                let mut expected: Vec<(u64, usize)> = plan
                    .sends
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.0 == c)
                    .map(|(tag, s)| (s.1, tag))
                    .collect();
                expected.sort_unstable();
                // Same-instant sends on one conn keep schedule order
                // (stable by tag, which the sort above provides via the
                // tuple's second element).
                let got: Vec<usize> = deliveries
                    .iter()
                    .filter(|d| d.0 == conn_id)
                    .map(|d| d.2)
                    .collect();
                let expected_tags: Vec<usize> = expected.into_iter().map(|e| e.1).collect();
                prop_assert_eq!(got, expected_tags, "conn {} FIFO", c);
            }
        }
        // Delivery times are at least base latency after the send time.
        for &(_, at, tag) in &deliveries {
            let sent = plan.sends[tag].1;
            prop_assert!(at > sent, "delivery {at} after send {sent}");
        }
    }

    #[test]
    fn udp_loss_rate_tracks_configuration(
        loss in 0.01f64..0.4,
        n in 200usize..600,
        seed in any::<u64>(),
    ) {
        let plan = Plan {
            transport: Transport::Udp,
            conns: 1,
            sends: (0..n).map(|i| (0, i as u64 * 1000, 100)).collect(),
            loss,
            seed,
        };
        let (deliveries, stats) = run_plan(&plan);
        let measured = stats.frames_dropped as f64 / stats.frames_sent as f64;
        // Binomial concentration: allow generous slack for small n.
        let sigma = (loss * (1.0 - loss) / n as f64).sqrt();
        prop_assert!(
            (measured - loss).abs() < 5.0 * sigma + 0.02,
            "loss {measured} vs configured {loss}"
        );
        prop_assert_eq!(deliveries.len() as u64, stats.frames_delivered);
    }
}
