//! HTTP request/response modelling on top of TCP connections.
//!
//! R-GMA carries everything over HTTP into Java servlets. The fabric gives
//! us reliable FIFO bytes; this layer adds the HTTP framing overhead and a
//! correlation id so a servlet actor can respond to the right outstanding
//! request. (Persistent connections — HTTP/1.1 keep-alive — are assumed,
//! as Tomcat and the R-GMA clients used them; connection setup is paid
//! once at `open`.)

use crate::addr::Endpoint;
use crate::fabric::{ConnId, NetworkFabric};
use simcore::{Context, Payload, SimTime};

/// Bytes of request line + headers on a typical R-GMA servlet call.
pub const REQUEST_OVERHEAD: usize = 220;
/// Bytes of status line + headers on the response.
pub const RESPONSE_OVERHEAD: usize = 180;

/// An HTTP request as delivered to a servlet actor (inside
/// [`crate::Delivery::payload`]).
pub struct HttpRequest {
    /// Correlation id: echo into the [`HttpResponse`].
    pub req_id: u64,
    /// Resource path (servlet routing).
    pub path: String,
    /// Application payload.
    pub body: Payload,
    /// When the client issued the request.
    pub issued_at: SimTime,
}

/// An HTTP response as delivered back to the client actor.
pub struct HttpResponse {
    /// Correlation id from the request.
    pub req_id: u64,
    /// HTTP-ish status code (200, 503…).
    pub status: u16,
    /// Application payload.
    pub body: Payload,
}

/// Send an HTTP request over `conn` from `from`. `body_bytes` is the
/// entity size; framing overhead is added here.
#[allow(clippy::too_many_arguments)]
pub fn send_request(
    net: &mut NetworkFabric,
    ctx: &mut Context<'_>,
    conn: ConnId,
    from: Endpoint,
    req_id: u64,
    path: impl Into<String>,
    body_bytes: usize,
    body: Payload,
) -> Option<SimTime> {
    let path = path.into();
    let bytes = body_bytes + REQUEST_OVERHEAD + path.len();
    let issued_at = ctx.now();
    net.send(
        ctx,
        conn,
        from,
        bytes,
        Box::new(HttpRequest {
            req_id,
            path,
            body,
            issued_at,
        }),
    )
}

/// Send an HTTP response over `conn` from the server endpoint `from`.
#[allow(clippy::too_many_arguments)]
pub fn send_response(
    net: &mut NetworkFabric,
    ctx: &mut Context<'_>,
    conn: ConnId,
    from: Endpoint,
    req_id: u64,
    status: u16,
    body_bytes: usize,
    body: Payload,
) -> Option<SimTime> {
    let bytes = body_bytes + RESPONSE_OVERHEAD;
    net.send(
        ctx,
        conn,
        from,
        bytes,
        Box::new(HttpResponse {
            req_id,
            status,
            body,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Delivery, FabricConfig, Transport};
    use simcore::{Actor, FnActor, SimDuration, Simulation};
    use simos::NodeId;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A loop-back servlet: answers every request with double its id.
    struct EchoServlet {
        node: NodeId,
    }
    impl Actor for EchoServlet {
        fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
            let d = msg.downcast::<Delivery>().unwrap();
            let req = d.payload.downcast::<HttpRequest>().unwrap();
            let me = Endpoint::new(self.node, ctx.self_id());
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                send_response(
                    net,
                    ctx,
                    d.conn,
                    me,
                    req.req_id,
                    200,
                    64,
                    Box::new(req.req_id * 2),
                );
            });
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let mut sim = Simulation::new(7);
        sim.add_service(NetworkFabric::new(FabricConfig::default(), 2));
        let servlet = sim.add_actor(EchoServlet { node: NodeId(1) });
        let answers: Rc<RefCell<Vec<(u64, u16, u64)>>> = Default::default();
        let answers2 = answers.clone();
        let client = sim.add_actor(FnActor(move |msg: Payload, ctx: &mut Context| {
            if let Ok(d) = msg.downcast::<Delivery>() {
                let resp = d.payload.downcast::<HttpResponse>().unwrap();
                let doubled = *resp.body.downcast::<u64>().unwrap();
                answers2
                    .borrow_mut()
                    .push((resp.req_id, resp.status, doubled));
            } else {
                // Kick-off: open a connection and fire two requests.
                let me = Endpoint::new(NodeId(0), ctx.self_id());
                let srv = Endpoint::new(NodeId(1), servlet);
                ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                    let conn = net.open(ctx.now(), Transport::Http, me, srv);
                    send_request(net, ctx, conn, me, 1, "/rgma/insert", 300, Box::new(()));
                    send_request(net, ctx, conn, me, 2, "/rgma/insert", 300, Box::new(()));
                });
            }
        }));
        sim.schedule(SimDuration::ZERO, client, Box::new("go"));
        sim.run_to_completion(100);
        assert_eq!(*answers.borrow(), vec![(1, 200, 2), (2, 200, 4)]);
    }

    #[test]
    fn overheads_are_charged() {
        let mut sim = Simulation::new(8);
        sim.add_service(NetworkFabric::new(FabricConfig::default(), 2));
        let sink = sim.add_actor(simcore::NullActor);
        let client = sim.add_actor(FnActor(move |_msg: Payload, ctx: &mut Context| {
            let me = Endpoint::new(NodeId(0), ctx.self_id());
            let srv = Endpoint::new(NodeId(1), sink);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Http, me, srv);
                send_request(net, ctx, conn, me, 1, "/x", 100, Box::new(()));
            });
        }));
        sim.schedule(SimDuration::ZERO, client, Box::new(()));
        sim.run_to_completion(10);
        let stats = sim.service::<NetworkFabric>().unwrap().stats();
        assert_eq!(stats.bytes_sent as usize, 100 + REQUEST_OVERHEAD + 2);
    }
}
