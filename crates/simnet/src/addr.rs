//! Network addressing: which actor on which node owns a socket.

use simcore::ActorId;
use simos::NodeId;
use std::fmt;

/// A network endpoint: an actor bound to a port on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Hosting node (selects the NIC charged for transmissions).
    pub node: NodeId,
    /// Actor receiving [`crate::Delivery`] events.
    pub actor: ActorId,
    /// Port, for human-readable traces and multi-socket actors.
    pub port: u16,
}

impl Endpoint {
    /// Endpoint on the default port.
    pub fn new(node: NodeId, actor: ActorId) -> Self {
        Endpoint {
            node,
            actor,
            port: 0,
        }
    }

    /// Endpoint with an explicit port.
    pub fn with_port(node: NodeId, actor: ActorId, port: u16) -> Self {
        Endpoint { node, actor, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.node, self.port, self.actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_eq() {
        let e = Endpoint::with_port(NodeId(3), ActorId::from_index(7), 8080);
        assert_eq!(format!("{e}"), "node3:8080@actor#7");
        assert_eq!(e, e);
        assert_ne!(e, Endpoint::new(NodeId(3), ActorId::from_index(7)));
    }
}
