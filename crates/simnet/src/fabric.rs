//! The network fabric: a switched 100 Mbps LAN connecting the cluster
//! nodes, with per-node NIC serialization, propagation/switch latency,
//! jitter, segmentation, and (for UDP) loss.
//!
//! The Hydra testbed was an isolated star: eight nodes on one 100 Mbps
//! switch, measured at 7–8 MB/s effective application throughput. We model
//! each node's NIC as a FIFO transmit server at the effective rate, a fixed
//! propagation + switch forwarding delay, and exponential jitter. Messages
//! larger than the MSS are segmented and pay per-packet overhead.

use crate::addr::Endpoint;
use simcore::{Context, Payload, SimDuration, SimTime};
use std::collections::HashMap;

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Effective per-node NIC throughput, bytes/second (paper: ~7.5 MB/s).
    pub bandwidth_bps: u64,
    /// One-way propagation + switch forwarding latency.
    pub base_latency: SimDuration,
    /// Mean of the exponential jitter added per packet.
    pub jitter_mean: SimDuration,
    /// Maximum segment size (TCP MSS / UDP datagram fragment), bytes.
    pub mss: usize,
    /// Fixed per-packet processing overhead (NIC interrupt + switch).
    pub per_packet_overhead: SimDuration,
    /// Datagram loss probability (applies to UDP sends only — the switch
    /// drops under burst; TCP retransmission is folded into its higher
    /// per-packet cost).
    pub udp_loss_prob: f64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            bandwidth_bps: 7_500_000,
            base_latency: SimDuration::from_micros(150),
            jitter_mean: SimDuration::from_micros(80),
            mss: 1460,
            per_packet_overhead: SimDuration::from_micros(40),
            udp_loss_prob: 0.002,
        }
    }
}

/// Transport flavour of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Blocking TCP: reliable, per-connection FIFO.
    Tcp,
    /// Non-blocking TCP (Java NIO): identical wire behaviour; endpoints
    /// apply different service costs.
    Nio,
    /// UDP datagrams: lossy, unordered.
    Udp,
    /// HTTP over TCP: reliable FIFO plus per-request header overhead
    /// (applied by the HTTP helper layer).
    Http,
}

impl Transport {
    /// Whether the fabric enforces in-order delivery for this transport.
    pub fn ordered(self) -> bool {
        !matches!(self, Transport::Udp)
    }

    /// Whether datagrams may be dropped in the fabric.
    pub fn lossy(self) -> bool {
        matches!(self, Transport::Udp)
    }
}

/// Identifies an open connection.
///
/// Connections opened during the build phase get sequential ids — a
/// replicated sharded build performs the same opens in the same order on
/// every shard, so the numbering agrees everywhere. Connections opened at
/// runtime (after [`NetworkFabric::finish_build`]) happen only on the
/// opener's shard, so their ids are instead packed from the opener's actor
/// index and a per-opener counter: bit 31 set, bits 16..31 the opener's
/// open count, bits 0..16 the opener actor index. Both schemes are pure
/// functions of shard-invariant inputs. The split gives 64 Ki actors and
/// 32 Ki runtime opens per actor — a single UDP client republishing
/// through a long broker outage can legitimately reopen thousands of
/// times, which overflowed the previous 11-bit count field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

const RUNTIME_CONN_BIT: u32 = 0x8000_0000;
const RUNTIME_CONN_COUNT_SHIFT: u32 = 16;
const RUNTIME_CONN_ACTOR_MASK: u32 = (1 << RUNTIME_CONN_COUNT_SHIFT) - 1;

/// The shard-invariant identity of a connection: everything a receiving
/// shard needs to materialize a connection its peer opened. Carried on
/// every [`Delivery`] so cross-shard frames are self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnMeta {
    /// Transport flavour.
    pub transport: Transport,
    /// Opener-side endpoint.
    pub a: Endpoint,
    /// Acceptor-side endpoint.
    pub b: Endpoint,
    /// Connection usable from this instant (handshake done).
    pub ready_at: SimTime,
}

/// One endpoint-to-endpoint connection.
#[derive(Debug, Clone)]
struct Connection {
    transport: Transport,
    a: Endpoint,
    b: Endpoint,
    /// Connection usable from this instant (handshake done).
    ready_at: SimTime,
    /// Last scheduled delivery time in each direction (a→b, b→a), for FIFO.
    /// Each direction is only written by the side that sends on it, so a
    /// connection split across two shards keeps exactly the state a serial
    /// run would.
    last_delivery: [SimTime; 2],
    closed: bool,
}

/// A frame delivered to a receiving actor. The `payload` is the
/// application object; `bytes` is what was charged on the wire.
pub struct Delivery {
    /// Connection the frame arrived on.
    pub conn: ConnId,
    /// Sending endpoint.
    pub from: Endpoint,
    /// Size on the wire.
    pub bytes: usize,
    /// Application payload.
    pub payload: Payload,
    /// When the application handed the frame to the fabric.
    pub sent_at: SimTime,
    /// Connection identity, so a shard receiving this frame can
    /// materialize the connection locally (see
    /// [`NetworkFabric::ensure_conn`]).
    pub meta: ConnMeta,
}

/// Counters for conservation checks (sent = delivered + dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames accepted from applications.
    pub frames_sent: u64,
    /// Frames scheduled for delivery.
    pub frames_delivered: u64,
    /// Frames dropped (UDP loss).
    pub frames_dropped: u64,
    /// Total application bytes accepted.
    pub bytes_sent: u64,
    /// Wire packets transmitted (after segmentation).
    pub packets_sent: u64,
}

/// Per-node NIC state.
#[derive(Debug, Clone, Copy, Default)]
struct Nic {
    tx_busy_until: SimTime,
}

/// The fabric service.
pub struct NetworkFabric {
    cfg: FabricConfig,
    nics: Vec<Nic>,
    conns: HashMap<u32, Connection>,
    /// Sequential id source for build-phase opens.
    build_opens: u32,
    /// Per-opener-actor runtime open counts (id packing).
    runtime_opens: HashMap<u32, u32>,
    /// Set by [`finish_build`](Self::finish_build); switches id allocation
    /// from sequential to opener-derived.
    build_done: bool,
    stats: FabricStats,
}

impl NetworkFabric {
    /// Fabric for `nodes` nodes (NodeId 0..nodes).
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        NetworkFabric {
            cfg,
            nics: vec![Nic::default(); nodes],
            conns: HashMap::new(),
            build_opens: 0,
            runtime_opens: HashMap::new(),
            build_done: false,
            stats: FabricStats::default(),
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The fabric's conservative lookahead: the minimum virtual-time
    /// distance between handing a frame to the fabric and its delivery.
    /// Every delivery pays at least the one-way `base_latency` (plus
    /// transmission time and non-negative jitter), so a shard executing
    /// events in `[t, t + lookahead)` can never receive a frame dated
    /// inside that window from a peer shard still at time ≥ t.
    pub fn lookahead(&self) -> SimDuration {
        self.cfg.base_latency
    }

    /// Mark the end of the deterministic build phase. Connections opened
    /// after this call get opener-derived ids (see [`ConnId`]); called by
    /// the experiment driver once deployment wiring is complete, on every
    /// shard (and on serial runs, for id parity).
    pub fn finish_build(&mut self) {
        self.build_done = true;
    }

    /// Open a connection. TCP-family transports pay a handshake
    /// (1.5 × one-way latency); UDP sockets are ready immediately.
    /// By convention `a` is the opener's endpoint — after
    /// [`finish_build`](Self::finish_build) the id is derived from
    /// `a.actor`.
    pub fn open(&mut self, now: SimTime, transport: Transport, a: Endpoint, b: Endpoint) -> ConnId {
        let handshake = if transport == Transport::Udp {
            SimDuration::ZERO
        } else {
            self.cfg.base_latency.saturating_mul(3) / 2
        };
        let id = if self.build_done {
            let opener = u32::try_from(a.actor.index()).expect("actor index fits in u32");
            assert!(
                opener <= RUNTIME_CONN_ACTOR_MASK,
                "opener actor index too large for runtime ConnId packing"
            );
            let count = self.runtime_opens.entry(opener).or_insert(0);
            let id = RUNTIME_CONN_BIT | (*count << RUNTIME_CONN_COUNT_SHIFT) | opener;
            *count = count
                .checked_add(1)
                .filter(|&c| c < (1 << (31 - RUNTIME_CONN_COUNT_SHIFT)))
                .expect("too many runtime connection opens by one actor");
            ConnId(id)
        } else {
            let id = ConnId(self.build_opens);
            self.build_opens += 1;
            id
        };
        self.conns.insert(
            id.0,
            Connection {
                transport,
                a,
                b,
                ready_at: now + handshake,
                last_delivery: [SimTime::ZERO; 2],
                closed: false,
            },
        );
        id
    }

    /// Materialize a connection another shard opened, from the identity a
    /// cross-shard [`Delivery`] carries. Idempotent; no-op if the
    /// connection already exists (e.g. it was opened locally or seen on an
    /// earlier frame).
    pub fn ensure_conn(&mut self, conn: ConnId, meta: ConnMeta) {
        self.conns.entry(conn.0).or_insert(Connection {
            transport: meta.transport,
            a: meta.a,
            b: meta.b,
            ready_at: meta.ready_at,
            last_delivery: [SimTime::ZERO; 2],
            closed: false,
        });
    }

    /// The shard-invariant identity of a connection.
    pub fn conn_meta(&self, conn: ConnId) -> ConnMeta {
        let c = &self.conns[&conn.0];
        ConnMeta {
            transport: c.transport,
            a: c.a,
            b: c.b,
            ready_at: c.ready_at,
        }
    }

    /// Close a connection; subsequent sends panic (a protocol bug).
    ///
    /// Sharding note: a close is a local bookkeeping change — if the peer
    /// endpoint lives on another shard, that shard's replica of the
    /// connection stays open. This matches the asymmetric knowledge a real
    /// TCP teardown has in flight, and no production protocol sends on a
    /// connection after the peer closed it (doing so is the panic above).
    pub fn close(&mut self, conn: ConnId) {
        self.conns.get_mut(&conn.0).expect("unknown conn").closed = true;
    }

    /// The endpoint opposite `from` on `conn`.
    pub fn peer_of(&self, conn: ConnId, from: Endpoint) -> Endpoint {
        let c = &self.conns[&conn.0];
        if c.a == from {
            c.b
        } else {
            debug_assert_eq!(c.b, from, "endpoint not on this connection");
            c.a
        }
    }

    /// Endpoints of a connection `(a, b)`.
    pub fn endpoints(&self, conn: ConnId) -> (Endpoint, Endpoint) {
        let c = &self.conns[&conn.0];
        (c.a, c.b)
    }

    /// Transport of a connection.
    pub fn transport(&self, conn: ConnId) -> Transport {
        self.conns[&conn.0].transport
    }

    /// Send `bytes` of application payload from `from` over `conn`.
    /// Schedules a [`Delivery`] event at the receiving endpoint's actor
    /// (or silently drops it for UDP loss). Returns the scheduled delivery
    /// time, or `None` if dropped.
    pub fn send(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        from: Endpoint,
        bytes: usize,
        payload: Payload,
    ) -> Option<SimTime> {
        let now = ctx.now();
        self.send_at(ctx, conn, from, bytes, payload, now)
    }

    /// Like [`send`], but the frame reaches the NIC no earlier than
    /// `start_at` (used when the sending process finishes its CPU work at
    /// a future completion time computed by the OS model).
    ///
    /// [`send`]: NetworkFabric::send
    pub fn send_at(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        from: Endpoint,
        bytes: usize,
        payload: Payload,
        start_at: SimTime,
    ) -> Option<SimTime> {
        // Wall-clock attribution of the whole fabric path (segmentation,
        // loss/jitter draws, NIC FIFO, delivery scheduling); no-op unless a
        // simscope::WallScope service is registered.
        let t0 = simscope::start(ctx);
        let out = self.send_at_inner(ctx, conn, from, bytes, payload, start_at);
        simscope::record(ctx, simscope::Site::NetFabricSend, t0);
        out
    }

    fn send_at_inner(
        &mut self,
        ctx: &mut Context<'_>,
        conn: ConnId,
        from: Endpoint,
        bytes: usize,
        payload: Payload,
        start_at: SimTime,
    ) -> Option<SimTime> {
        let now = ctx.now().max(start_at);
        let c = &self.conns[&conn.0];
        assert!(!c.closed, "send on closed connection {conn:?}");
        let (dir, to) = if c.a == from {
            (0, c.b)
        } else {
            debug_assert_eq!(c.b, from, "endpoint not on this connection");
            (1, c.a)
        };
        let transport = c.transport;
        let ready_at = c.ready_at;

        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes as u64;

        // UDP loss: decided before any resources are consumed — the frame
        // still occupies the sender NIC (it was transmitted, then lost).
        let dropped = transport.lossy() && ctx.rng().chance(self.cfg.udp_loss_prob);
        // Injected faults (link bursts, partitions) can claim any
        // transport's frames. Checked second so the kernel RNG draw order
        // is identical with and without an injector installed; the
        // injector draws from its own RNG stream.
        let fault_dropped = !dropped && simfault::should_drop_frame(ctx, from.node, to.node);

        // Segmentation.
        let packets = bytes.div_ceil(self.cfg.mss).max(1) as u64;
        self.stats.packets_sent += packets;
        let tx_time = SimDuration::from_micros(
            (bytes as u64)
                .saturating_mul(1_000_000)
                .div_ceil(self.cfg.bandwidth_bps),
        ) + self.cfg.per_packet_overhead.saturating_mul(packets);

        // NIC FIFO.
        let nic = &mut self.nics[from.node.0 as usize];
        let tx_start = now.max(nic.tx_busy_until).max(ready_at);
        let tx_done = tx_start + tx_time;
        nic.tx_busy_until = tx_done;
        let backlog_us = tx_done.saturating_since(now).as_micros();

        if dropped || fault_dropped {
            self.stats.frames_dropped += 1;
            simtrace::with_trace(ctx, |tr, at| {
                tr.record(
                    at,
                    None,
                    from.actor.index() as u64,
                    simtrace::EventKind::NetSend {
                        conn: u64::from(conn.0),
                        bytes: bytes as u32,
                    },
                );
                tr.record(
                    tx_done,
                    None,
                    from.actor.index() as u64,
                    simtrace::EventKind::NetDrop {
                        conn: u64::from(conn.0),
                    },
                );
                tr.count(simtrace::Counter::NetFramesSent, 1);
                tr.count(simtrace::Counter::NetDrops, 1);
                if fault_dropped {
                    tr.count(simtrace::Counter::FaultDrops, 1);
                }
                tr.gauge_set(simtrace::Gauge::NicBacklogUs, backlog_us);
            });
            simprof::hit(ctx, simprof::Component::NetFabric);
            return None;
        }

        // Propagation + jitter.
        let jitter = ctx.rng().exp_duration(self.cfg.jitter_mean);
        let mut deliver_at = tx_done + self.cfg.base_latency + jitter;

        // FIFO per direction for ordered transports.
        let c = self.conns.get_mut(&conn.0).expect("unknown conn");
        if transport.ordered() {
            deliver_at = deliver_at.max(c.last_delivery[dir] + SimDuration::from_micros(1));
        }
        c.last_delivery[dir] = deliver_at;
        // The conservative-lockstep contract (see `lookahead`): a frame
        // handed over at `now` can never arrive sooner than one base
        // latency later.
        debug_assert!(
            deliver_at >= now + self.cfg.base_latency,
            "delivery inside the lookahead window"
        );
        let meta = ConnMeta {
            transport,
            a: c.a,
            b: c.b,
            ready_at,
        };

        self.stats.frames_delivered += 1;
        simtrace::with_trace(ctx, |tr, at| {
            tr.record(
                at,
                None,
                from.actor.index() as u64,
                simtrace::EventKind::NetSend {
                    conn: u64::from(conn.0),
                    bytes: bytes as u32,
                },
            );
            // Timestamped at the scheduled arrival instant.
            tr.record(
                deliver_at,
                None,
                to.actor.index() as u64,
                simtrace::EventKind::NetDeliver {
                    conn: u64::from(conn.0),
                },
            );
            tr.count(simtrace::Counter::NetFramesSent, 1);
            tr.count(simtrace::Counter::NetFramesDelivered, 1);
            tr.gauge_set(simtrace::Gauge::NicBacklogUs, backlog_us);
        });
        simprof::hit(ctx, simprof::Component::NetFabric);
        simprof::hit(ctx, simprof::Component::NetLink);
        let delay = deliver_at.saturating_since(ctx.now());
        ctx.send_in(
            delay,
            to.actor,
            Delivery {
                conn,
                from,
                bytes,
                payload,
                sent_at: now,
                meta,
            },
        );
        Some(deliver_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Actor, FnActor, Simulation};
    use simos::NodeId;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn ep(node: u16, actor: simcore::ActorId) -> Endpoint {
        Endpoint {
            node: NodeId(node),
            actor,
            port: 0,
        }
    }

    type RecLog = Rc<RefCell<Vec<(u64, usize)>>>;

    struct Recorder {
        log: RecLog,
    }
    impl Actor for Recorder {
        fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
            let d = msg.downcast::<Delivery>().unwrap();
            self.log.borrow_mut().push((ctx.now().as_micros(), d.bytes));
        }
    }

    fn fabric_sim(cfg: FabricConfig) -> (Simulation, RecLog) {
        let mut sim = Simulation::new(42);
        let log: RecLog = Default::default();
        sim.add_actor(Recorder { log: log.clone() }); // ActorId 0 = receiver
        sim.add_service(NetworkFabric::new(cfg, 8));
        (sim, log)
    }

    #[test]
    fn tcp_delivery_includes_tx_latency_and_handshake() {
        let cfg = FabricConfig {
            jitter_mean: SimDuration::ZERO,
            ..FabricConfig::default()
        };
        let (mut sim, log) = fabric_sim(cfg.clone());
        let rx = simcore::ActorId::from_index(0);
        let sender = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            let a = ep(0, ctx.self_id());
            let b = ep(1, rx);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Tcp, a, b);
                net.send(ctx, conn, a, 1000, Box::new(()));
            });
        }));
        sim.schedule(SimDuration::ZERO, sender, Box::new(()));
        sim.run_to_completion(100);
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // handshake 225us + tx (1000B at 7.5MB/s = 134us + 40us pkt) + 150us latency.
        let expected = 225 + 134 + 40 + 150;
        assert_eq!(log[0].0, expected);
    }

    #[test]
    fn nic_serialises_back_to_back_sends() {
        let cfg = FabricConfig {
            jitter_mean: SimDuration::ZERO,
            base_latency: SimDuration::from_micros(100),
            ..FabricConfig::default()
        };
        let (mut sim, log) = fabric_sim(cfg);
        let rx = simcore::ActorId::from_index(0);
        let sender = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            let a = ep(0, ctx.self_id());
            let b = ep(1, rx);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Udp, a, b);
                for _ in 0..3 {
                    net.send(ctx, conn, a, 7500, Box::new(()));
                }
            });
        }));
        sim.schedule(SimDuration::ZERO, sender, Box::new(()));
        sim.run_to_completion(100);
        let log = log.borrow();
        assert_eq!(
            log.len(),
            3,
            "no loss at prob 0 rolls for this seed? see below"
        );
        // 7500B = 1000us tx + 6 packets * 40us = 1240us per frame, serialized:
        // deliveries at ~1340, ~2580, ~3820 (plus jitter=0).
        let times: Vec<u64> = log.iter().map(|e| e.0).collect();
        assert!(times[1] - times[0] >= 1240, "{times:?}");
        assert!(times[2] - times[1] >= 1240, "{times:?}");
    }

    #[test]
    fn tcp_is_fifo_even_with_jitter() {
        let cfg = FabricConfig {
            jitter_mean: SimDuration::from_millis(5),
            ..FabricConfig::default()
        };
        let (mut sim, log) = fabric_sim(cfg);
        let rx = simcore::ActorId::from_index(0);
        let sender = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            let a = ep(0, ctx.self_id());
            let b = ep(1, rx);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Tcp, a, b);
                for i in 0..50usize {
                    net.send(ctx, conn, a, 100 + i, Box::new(()));
                }
            });
        }));
        sim.schedule(SimDuration::ZERO, sender, Box::new(()));
        sim.run_to_completion(1000);
        let log = log.borrow();
        assert_eq!(log.len(), 50);
        let sizes: Vec<usize> = log.iter().map(|e| e.1).collect();
        assert_eq!(sizes, (100..150).collect::<Vec<_>>(), "in-order");
        let times: Vec<u64> = log.iter().map(|e| e.0).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "delivery times monotone");
    }

    #[test]
    fn udp_drops_at_configured_rate() {
        let cfg = FabricConfig {
            udp_loss_prob: 0.10,
            jitter_mean: SimDuration::ZERO,
            ..FabricConfig::default()
        };
        let (mut sim, log) = fabric_sim(cfg);
        let rx = simcore::ActorId::from_index(0);
        let sender = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            let a = ep(0, ctx.self_id());
            let b = ep(1, rx);
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Udp, a, b);
                for _ in 0..2000 {
                    net.send(ctx, conn, a, 200, Box::new(()));
                }
            });
        }));
        sim.schedule(SimDuration::ZERO, sender, Box::new(()));
        sim.run_to_completion(10_000);
        let delivered = log.borrow().len();
        let dropped = 2000 - delivered;
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.10).abs() < 0.03, "loss rate {rate}");
        let stats = sim.service::<NetworkFabric>().unwrap().stats();
        assert_eq!(stats.frames_sent, 2000);
        assert_eq!(
            stats.frames_delivered + stats.frames_dropped,
            stats.frames_sent,
            "conservation"
        );
    }

    #[test]
    fn peer_and_endpoints() {
        let mut net = NetworkFabric::new(FabricConfig::default(), 2);
        let a = ep(0, simcore::ActorId::from_index(1));
        let b = ep(1, simcore::ActorId::from_index(2));
        let conn = net.open(SimTime::ZERO, Transport::Tcp, a, b);
        assert_eq!(net.peer_of(conn, a), b);
        assert_eq!(net.peer_of(conn, b), a);
        assert_eq!(net.endpoints(conn), (a, b));
        assert_eq!(net.transport(conn), Transport::Tcp);
    }

    #[test]
    fn runtime_conn_ids_are_opener_derived() {
        // Before finish_build: sequential ids (replicated build ⇒ parity).
        let mut net = NetworkFabric::new(FabricConfig::default(), 4);
        let a1 = ep(0, simcore::ActorId::from_index(3));
        let a2 = ep(1, simcore::ActorId::from_index(7));
        let b = ep(2, simcore::ActorId::from_index(9));
        let c0 = net.open(SimTime::ZERO, Transport::Tcp, a1, b);
        let c1 = net.open(SimTime::ZERO, Transport::Tcp, a2, b);
        assert_eq!((c0, c1), (ConnId(0), ConnId(1)));

        // After finish_build: ids depend only on (opener actor, opener's
        // own open count), never on global interleaving — so two shards
        // opening in different orders still agree on every id.
        net.finish_build();
        let r0 = net.open(SimTime::ZERO, Transport::Tcp, a1, b);
        let r1 = net.open(SimTime::ZERO, Transport::Tcp, a2, b);
        let r2 = net.open(SimTime::ZERO, Transport::Tcp, a1, b);
        let mut other = NetworkFabric::new(FabricConfig::default(), 4);
        other.open(SimTime::ZERO, Transport::Tcp, a1, b);
        other.open(SimTime::ZERO, Transport::Tcp, a2, b);
        other.finish_build();
        // Opposite interleaving on the "other shard".
        let o1 = other.open(SimTime::ZERO, Transport::Tcp, a2, b);
        let o0 = other.open(SimTime::ZERO, Transport::Tcp, a1, b);
        let o2 = other.open(SimTime::ZERO, Transport::Tcp, a1, b);
        assert_eq!((r0, r1, r2), (o0, o1, o2));
        for id in [r0, r1, r2] {
            assert_ne!(id.0 & RUNTIME_CONN_BIT, 0, "runtime bit set");
        }
        assert_ne!(r0, r2, "same opener, distinct opens");
    }

    #[test]
    fn ensure_conn_is_idempotent() {
        let mut src = NetworkFabric::new(FabricConfig::default(), 2);
        let a = ep(0, simcore::ActorId::from_index(1));
        let b = ep(1, simcore::ActorId::from_index(2));
        let conn = net_open_runtime(&mut src, a, b);
        let meta = src.conn_meta(conn);

        // Receiver shard materializes the connection from the Delivery's
        // sidecar; repeated frames are no-ops.
        let mut dst = NetworkFabric::new(FabricConfig::default(), 2);
        dst.ensure_conn(conn, meta);
        dst.ensure_conn(conn, meta);
        assert_eq!(dst.endpoints(conn), (a, b));
        assert_eq!(dst.transport(conn), meta.transport);
        let round_trip = dst.conn_meta(conn);
        assert_eq!(round_trip.ready_at, meta.ready_at);
        // A locally-known connection is never clobbered.
        let pre = dst.conn_meta(conn);
        dst.ensure_conn(
            conn,
            ConnMeta {
                ready_at: meta.ready_at + SimDuration::from_secs(9),
                ..meta
            },
        );
        assert_eq!(dst.conn_meta(conn).ready_at, pre.ready_at);
    }

    fn net_open_runtime(net: &mut NetworkFabric, a: Endpoint, b: Endpoint) -> ConnId {
        net.finish_build();
        net.open(SimTime::ZERO, Transport::Tcp, a, b)
    }

    #[test]
    #[should_panic(expected = "closed connection")]
    fn send_on_closed_panics() {
        let mut sim = Simulation::new(1);
        sim.add_service(NetworkFabric::new(FabricConfig::default(), 2));
        let a = ep(0, simcore::ActorId::from_index(0));
        let b = ep(1, simcore::ActorId::from_index(0));
        let actor = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            ctx.with_service::<NetworkFabric, _>(|net, ctx| {
                let conn = net.open(ctx.now(), Transport::Tcp, a, b);
                net.close(conn);
                net.send(ctx, conn, a, 10, Box::new(()));
            });
        }));
        sim.schedule(SimDuration::ZERO, actor, Box::new(()));
        sim.run_to_completion(10);
    }
}
