#![warn(missing_docs)]
//! # simnet — the simulated 100 Mbps switched LAN
//!
//! Models the paper's isolated Hydra network: per-node NIC FIFO
//! serialization at the measured effective rate (~7.5 MB/s), switch
//! latency, exponential jitter, MSS segmentation with per-packet overhead,
//! UDP loss, and per-connection FIFO ordering for the TCP family.
//!
//! * [`NetworkFabric`] — the kernel service actors send through.
//! * [`Transport`] — TCP / NIO / UDP / HTTP flavours.
//! * [`Delivery`] — the event a receiving actor gets.
//! * [`http`] — request/response framing for the R-GMA servlet paths.

pub mod addr;
pub mod fabric;
pub mod http;

pub use addr::Endpoint;
pub use fabric::{ConnId, Delivery, FabricConfig, FabricStats, NetworkFabric, Transport};
pub use http::{HttpRequest, HttpResponse};
