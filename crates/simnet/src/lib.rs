#![warn(missing_docs)]
//! # simnet — the simulated 100 Mbps switched LAN
//!
//! Models the paper's isolated Hydra network: per-node NIC FIFO
//! serialization at the measured effective rate (~7.5 MB/s), switch
//! latency, exponential jitter, MSS segmentation with per-packet overhead,
//! UDP loss, and per-connection FIFO ordering for the TCP family.
//!
//! * [`NetworkFabric`] — the kernel service actors send through.
//! * [`Transport`] — TCP / NIO / UDP / HTTP flavours.
//! * [`Delivery`] — the event a receiving actor gets.
//! * [`http`] — request/response framing for the R-GMA servlet paths.
//! * [`partition_nodes`] — the topology partitioner for sharded runs.

pub mod addr;
pub mod fabric;
pub mod http;

pub use addr::Endpoint;
pub use fabric::{ConnId, ConnMeta, Delivery, FabricConfig, FabricStats, NetworkFabric, Transport};
pub use http::{HttpRequest, HttpResponse};

/// Partition `nodes` simulated nodes across `shards` shards, round-robin.
///
/// Returns `node → shard`. Round-robin interleaves the experiment's server
/// nodes (registered first) and client nodes (registered after) across
/// shards, which balances both middleware and driver load; any
/// deterministic map works for correctness since cross-shard traffic only
/// costs mailbox hops, never changes results. Shards may end up empty when
/// `shards > nodes`; the executor tolerates that.
pub fn partition_nodes(nodes: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "at least one shard");
    (0..nodes).map(|n| n % shards).collect()
}

#[cfg(test)]
mod partition_tests {
    use super::partition_nodes;

    #[test]
    fn round_robin_covers_and_balances() {
        let p = partition_nodes(7, 3);
        assert_eq!(p, vec![0, 1, 2, 0, 1, 2, 0]);
        for s in 0..3 {
            let size = p.iter().filter(|&&x| x == s).count();
            assert!((2..=3).contains(&size));
        }
        // More shards than nodes: high shards are simply empty.
        assert_eq!(partition_nodes(2, 4), vec![0, 1]);
    }
}
