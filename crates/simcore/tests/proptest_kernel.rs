//! Property tests for the simulation kernel: global time ordering with
//! deterministic tie-breaks, and RNG stream independence.

use proptest::prelude::*;
use simcore::{ActorId, EventQueue, SimRng, SimTime};

proptest! {
    #[test]
    fn queue_pops_in_time_then_fifo_order(
        times in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), ActorId::from_index(0), Box::new(i));
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            let ix = *ev.payload.downcast::<usize>().unwrap();
            popped.push((ev.at.as_micros(), ix));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn queue_conserves_events(
        times in proptest::collection::vec(0u64..1000, 0..100),
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_micros(t), ActorId::from_index(1), Box::new(()));
        }
        prop_assert_eq!(q.len(), times.len());
        prop_assert_eq!(q.scheduled_total(), times.len() as u64);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, times.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn rng_streams_are_reproducible_and_distinct(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let root = SimRng::new(seed);
        let mut s1 = root.derive(a);
        let mut s1b = root.derive(a);
        let mut s2 = root.derive(b);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v1b: Vec<u64> = (0..8).map(|_| s1b.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        prop_assert_eq!(&v1, &v1b, "same stream id must replay");
        prop_assert_ne!(&v1, &v2, "distinct stream ids must differ");
    }

    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let v = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
            let f = rng.range_f64(-3.5, 7.25);
            prop_assert!((-3.5..7.25).contains(&f));
        }
    }
}
