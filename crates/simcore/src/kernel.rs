//! The simulation kernel: actor slab, event loop, and the [`Context`]
//! through which actors touch the world.

use crate::actor::{Actor, ActorId};
use crate::event::{EventQueue, EventTypeStat, Payload, WallAccum};
use crate::rng::SimRng;
use crate::service::ServiceMap;
use crate::time::{SimDuration, SimTime};
use std::time::Instant;

/// Kernel run statistics: a snapshot built on demand from the always-on
/// event accounting inside the kernel and its queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events dispatched so far.
    pub events_processed: u64,
    /// Events dropped because their target actor was never registered or
    /// has been deactivated.
    pub events_dropped: u64,
    /// Total events ever scheduled (monotonic).
    pub scheduled_total: u64,
    /// Of `scheduled_total`, how many were timer self-sends
    /// ([`Context::timer`]).
    pub timer_scheduled: u64,
    /// Of `scheduled_total`, how many were ordinary messages.
    pub message_scheduled: u64,
    /// High-watermark of pending events.
    pub peak_queue_depth: u64,
    /// Per-payload-type counters, sorted by scheduled count descending then
    /// name.
    pub by_type: Vec<EventTypeStat>,
    /// Queue depth sampled over virtual time, roughly once per virtual
    /// second (coarsened adaptively so the vector stays bounded).
    pub depth_samples: Vec<(SimTime, u64)>,
}

/// Wall-clock totals for the kernel's own hot paths, populated only after
/// [`Simulation::enable_hotpath_timing`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelHotpath {
    /// Time inside actor `handle` callbacks (event dispatch).
    pub dispatch: WallAccum,
    /// Time pushing onto the event heap.
    pub queue_push: WallAccum,
    /// Time popping from the event heap.
    pub queue_pop: WallAccum,
}

/// Depth-over-virtual-time sampling stops coarsening only once the sample
/// vector would exceed this many entries; past it, every other sample is
/// dropped and the interval doubles.
const DEPTH_SAMPLE_CAP: usize = 2048;

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event-count limit was hit (runaway protection).
    EventLimit,
}

type ActorSlot = Option<Box<dyn Actor>>;

/// A complete simulated world.
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    actors: Vec<ActorSlot>,
    services: ServiceMap,
    rng: SimRng,
    events_processed: u64,
    events_dropped: u64,
    /// Events dispatched per actor (diagnostics / hot-actor tracing).
    dispatch_counts: Vec<u64>,
    depth_interval: SimDuration,
    next_depth_sample: SimTime,
    depth_samples: Vec<(SimTime, u64)>,
    dispatch_wall: Option<WallAccum>,
    started: bool,
}

impl Simulation {
    /// New empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            actors: Vec::new(),
            services: ServiceMap::new(),
            rng: SimRng::new(seed),
            events_processed: 0,
            events_dropped: 0,
            dispatch_counts: Vec::new(),
            depth_interval: SimDuration::from_secs(1),
            next_depth_sample: SimTime::ZERO,
            depth_samples: Vec::new(),
            dispatch_wall: None,
            started: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics so far: a snapshot of the always-on event
    /// accounting (per-type counts, timer/message mix, queue-depth
    /// high-watermark and depth-over-time samples).
    pub fn stats(&self) -> KernelStats {
        let scheduled_total = self.queue.scheduled_total();
        let timer_scheduled = self.queue.timer_scheduled();
        KernelStats {
            events_processed: self.events_processed,
            events_dropped: self.events_dropped,
            scheduled_total,
            timer_scheduled,
            message_scheduled: scheduled_total - timer_scheduled,
            peak_queue_depth: self.queue.peak_depth() as u64,
            by_type: self.queue.type_stats(),
            depth_samples: self.depth_samples.clone(),
        }
    }

    /// Turn on wall-clock timing of the kernel's own hot paths (event
    /// dispatch and queue push/pop). Off by default; when off the only cost
    /// is one `Option` discriminant check per site.
    pub fn enable_hotpath_timing(&mut self) {
        if self.dispatch_wall.is_none() {
            self.dispatch_wall = Some(WallAccum::default());
        }
        self.queue.enable_wall_timing();
    }

    /// Wall-clock hot-path totals, if [`enable_hotpath_timing`] was called.
    ///
    /// [`enable_hotpath_timing`]: Simulation::enable_hotpath_timing
    pub fn hotpath(&self) -> Option<KernelHotpath> {
        let dispatch = self.dispatch_wall?;
        let (queue_push, queue_pop) = self.queue.wall_timing().unwrap_or_default();
        Some(KernelHotpath {
            dispatch,
            queue_push,
            queue_pop,
        })
    }

    /// Events dispatched to one actor so far.
    pub fn dispatch_count(&self, id: ActorId) -> u64 {
        self.dispatch_counts.get(id.index()).copied().unwrap_or(0)
    }

    /// The `n` busiest actors as `(id, name, events)`, descending.
    pub fn busiest_actors(&self, n: usize) -> Vec<(ActorId, String, u64)> {
        let mut rows: Vec<(ActorId, String, u64)> = self
            .dispatch_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(ix, &c)| {
                let id = ActorId::from_index(ix);
                let name = self.actors[ix]
                    .as_ref()
                    .map_or_else(|| "<retired>".to_owned(), |a| a.name().to_owned());
                (id, name, c)
            })
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Register an actor; returns its id. Actors registered before the
    /// first `run_*` call get `on_start` at t = 0 in registration order;
    /// actors spawned later (via [`Context::spawn`]) get it immediately.
    pub fn add_actor(&mut self, actor: impl Actor + 'static) -> ActorId {
        let id = ActorId::from_index(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        if self.started {
            self.start_actor(id);
        }
        id
    }

    /// Register a shared service.
    pub fn add_service<S: 'static>(&mut self, svc: S) {
        self.services.insert(svc);
    }

    /// Immutable access to a service (between runs; e.g. to read metrics).
    pub fn service<S: 'static>(&self) -> Option<&S> {
        self.services.get::<S>()
    }

    /// Mutable access to a service (between runs).
    pub fn service_mut<S: 'static>(&mut self) -> Option<&mut S> {
        self.services.get_mut::<S>()
    }

    /// Schedule a message from outside the actor system (e.g. test setup).
    pub fn schedule(&mut self, delay: SimDuration, target: ActorId, payload: Payload) {
        self.queue.schedule(self.now + delay, target, payload);
    }

    /// Schedule at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, target, payload);
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for ix in 0..self.actors.len() {
            self.start_actor(ActorId::from_index(ix));
        }
    }

    fn start_actor(&mut self, id: ActorId) {
        let Some(slot) = self.actors.get_mut(id.index()) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            queue: &mut self.queue,
            services: &mut self.services,
            rng: &mut self.rng,
            actors: &mut self.actors,
            started: self.started,
        };
        actor.on_start(&mut ctx);
        self.actors[id.index()] = Some(actor);
    }

    /// Dispatch exactly one event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.sample_depth();
        let ix = ev.target.index();
        let type_ix = ev.type_ix;
        let taken = self.actors.get_mut(ix).and_then(|s| s.take());
        match taken {
            Some(mut actor) => {
                let t0 = self.dispatch_wall.as_ref().map(|_| Instant::now());
                let mut ctx = Context {
                    now: self.now,
                    self_id: ev.target,
                    queue: &mut self.queue,
                    services: &mut self.services,
                    rng: &mut self.rng,
                    actors: &mut self.actors,
                    started: self.started,
                };
                actor.handle(ev.payload, &mut ctx);
                if let (Some(t0), Some(w)) = (t0, self.dispatch_wall.as_mut()) {
                    w.add(t0.elapsed().as_nanos() as u64);
                }
                // The slot is still None (actors are only ever inserted at
                // fresh indices while running), so this cannot clobber.
                self.actors[ix] = Some(actor);
                self.events_processed += 1;
                self.queue.note_executed(type_ix);
                if self.dispatch_counts.len() <= ix {
                    self.dispatch_counts.resize(ix + 1, 0);
                }
                self.dispatch_counts[ix] += 1;
            }
            None => {
                self.events_dropped += 1;
                self.queue.note_dropped(type_ix);
            }
        }
        true
    }

    /// Record one queue-depth sample if the sampling cadence is due.
    /// Bounded: hitting [`DEPTH_SAMPLE_CAP`] drops every other sample and
    /// doubles the interval.
    fn sample_depth(&mut self) {
        if self.now < self.next_depth_sample {
            return;
        }
        self.depth_samples.push((self.now, self.queue.len() as u64));
        self.next_depth_sample = self.now + self.depth_interval;
        if self.depth_samples.len() >= DEPTH_SAMPLE_CAP {
            let mut keep = false;
            self.depth_samples.retain(|_| {
                keep = !keep;
                keep
            });
            self.depth_interval = self.depth_interval.saturating_mul(2);
        }
    }

    /// Run until the queue is empty or `horizon` is reached. Events at
    /// exactly `horizon` still fire; the clock ends at
    /// `min(horizon, last event time)`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.ensure_started();
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run for a relative span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let horizon = self.now + d;
        self.run_until(horizon)
    }

    /// Run until the queue drains, with a hard event-count limit as runaway
    /// protection.
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        self.ensure_started();
        let start = self.events_processed + self.events_dropped;
        while !self.queue.is_empty() {
            if self.events_processed + self.events_dropped - start >= max_events {
                return RunOutcome::EventLimit;
            }
            self.step();
        }
        RunOutcome::QueueEmpty
    }
}

/// The world as seen from inside an actor callback.
pub struct Context<'a> {
    now: SimTime,
    self_id: ActorId,
    queue: &'a mut EventQueue,
    services: &'a mut ServiceMap,
    rng: &'a mut SimRng,
    actors: &'a mut Vec<ActorSlot>,
    started: bool,
}

impl Context<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Send a message to `target` after `delay`. The value is boxed here;
    /// to forward an already-boxed [`Payload`] use [`send_raw_in`] instead
    /// (passing a `Payload` to this method would nest the box).
    ///
    /// [`send_raw_in`]: Context::send_raw_in
    pub fn send_in<T: std::any::Any>(&mut self, delay: SimDuration, target: ActorId, value: T) {
        self.schedule_typed(delay, target, value, false);
    }

    /// Shared typed scheduling path: captures the payload type name (for the
    /// kernel's per-type event accounting) before boxing erases it.
    fn schedule_typed<T: std::any::Any>(
        &mut self,
        delay: SimDuration,
        target: ActorId,
        value: T,
        timer: bool,
    ) {
        self.queue.schedule_tagged(
            self.now + delay,
            target,
            Box::new(value),
            Some(std::any::type_name::<T>()),
            timer,
        );
    }

    /// Send a message to `target` at the current instant (fires after all
    /// already-queued events for this instant — FIFO tie-break).
    pub fn send_now<T: std::any::Any>(&mut self, target: ActorId, value: T) {
        self.send_in(SimDuration::ZERO, target, value);
    }

    /// Forward an already-boxed payload without re-boxing.
    pub fn send_raw_in(&mut self, delay: SimDuration, target: ActorId, payload: Payload) {
        self.queue.schedule(self.now + delay, target, payload);
    }

    /// Send a message to self after `delay` (a timer). Counted separately
    /// from ordinary messages in the kernel's event accounting.
    pub fn timer<T: std::any::Any>(&mut self, delay: SimDuration, value: T) {
        let me = self.self_id;
        self.schedule_typed(delay, me, value, true);
    }

    /// Spawn a new actor mid-simulation; `on_start` runs immediately.
    pub fn spawn(&mut self, actor: impl Actor + 'static) -> ActorId {
        let id = ActorId::from_index(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        if self.started {
            // Run on_start with a nested context for the new actor.
            let mut newcomer = self.actors[id.index()].take().expect("just inserted");
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                queue: self.queue,
                services: self.services,
                rng: self.rng,
                actors: self.actors,
                started: self.started,
            };
            newcomer.on_start(&mut ctx);
            self.actors[id.index()] = Some(newcomer);
        }
        id
    }

    /// Deactivate an actor: subsequent messages to it are counted as
    /// dropped. Deactivating self is allowed (takes effect after the current
    /// callback returns).
    pub fn retire(&mut self, id: ActorId) {
        if id != self.self_id {
            if let Some(slot) = self.actors.get_mut(id.index()) {
                *slot = None;
            }
        } else {
            // Self-retirement: mark via a tombstone the kernel recognises.
            // The kernel re-inserts the running actor unconditionally, so we
            // instead retire self lazily: replace the (currently empty) slot
            // with a tombstone is impossible; callers should retire
            // themselves by having their owner retire them. Document and
            // ignore.
        }
    }

    /// Exclusive access to a shared service while retaining the ability to
    /// schedule events and touch *other* services from inside the closure.
    ///
    /// Panics if the service is not registered or is already taken
    /// (re-entrant access).
    pub fn with_service<S: 'static, R>(
        &mut self,
        f: impl FnOnce(&mut S, &mut Context<'_>) -> R,
    ) -> R {
        let mut svc = self
            .services
            .take::<S>()
            .unwrap_or_else(|| panic_missing::<S>());
        let r = f(
            &mut svc,
            &mut Context {
                now: self.now,
                self_id: self.self_id,
                queue: self.queue,
                services: self.services,
                rng: self.rng,
                actors: self.actors,
                started: self.started,
            },
        );
        self.services.put(svc);
        r
    }

    /// Plain mutable access to a service when no scheduling is needed.
    pub fn service_mut<S: 'static>(&mut self) -> &mut S {
        self.services
            .get_mut::<S>()
            .unwrap_or_else(|| panic_missing::<S>())
    }

    /// Plain shared access to a service.
    pub fn service<S: 'static>(&self) -> &S {
        self.services
            .get::<S>()
            .unwrap_or_else(|| panic_missing::<S>())
    }

    /// Mutable access to a service that may not be registered (e.g. the
    /// optional trace collector). Returns `None` instead of panicking so
    /// instrumentation can no-op when the service is absent.
    #[inline]
    pub fn try_service_mut<S: 'static>(&mut self) -> Option<&mut S> {
        self.services.get_mut::<S>()
    }
}

#[cold]
fn panic_missing<S>() -> ! {
    panic!(
        "service {} not registered (or re-entrantly taken)",
        std::any::type_name::<S>()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::FnActor;

    #[derive(Debug, PartialEq)]
    struct Tick(u32);

    #[test]
    fn delivers_in_time_order_and_advances_clock() {
        let mut sim = Simulation::new(1);
        let log: std::rc::Rc<std::cell::RefCell<Vec<(u64, u32)>>> = Default::default();
        let log2 = log.clone();
        let a = sim.add_actor(FnActor(move |msg: Payload, ctx: &mut Context| {
            let t = msg.downcast::<Tick>().unwrap();
            log2.borrow_mut().push((ctx.now().as_micros(), t.0));
        }));
        sim.schedule(SimDuration::from_millis(5), a, Box::new(Tick(2)));
        sim.schedule(SimDuration::from_millis(1), a, Box::new(Tick(1)));
        sim.schedule(SimDuration::from_millis(9), a, Box::new(Tick(3)));
        assert_eq!(sim.run_to_completion(100), RunOutcome::QueueEmpty);
        assert_eq!(*log.borrow(), vec![(1_000, 1), (5_000, 2), (9_000, 3)]);
        assert_eq!(sim.now(), SimTime::from_millis(9));
        assert_eq!(sim.stats().events_processed, 3);
    }

    #[test]
    fn timers_chain() {
        struct Ticker {
            remaining: u32,
            fired: std::rc::Rc<std::cell::RefCell<u32>>,
        }
        impl Actor for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), Tick(0));
            }
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                *self.fired.borrow_mut() += 1;
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.timer(SimDuration::from_secs(1), Tick(0));
                }
            }
        }
        let fired = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut sim = Simulation::new(2);
        sim.add_actor(Ticker {
            remaining: 5,
            fired: fired.clone(),
        });
        sim.run_to_completion(100);
        assert_eq!(*fired.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn horizon_stops_and_freezes_clock() {
        let mut sim = Simulation::new(3);
        let a = sim.add_actor(crate::actor::NullActor);
        sim.schedule(SimDuration::from_secs(10), a, Box::new(()));
        let outcome = sim.run_until(SimTime::from_secs(4));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        assert_eq!(sim.pending_events(), 1);
        // Resume past the event.
        assert_eq!(
            sim.run_until(SimTime::from_secs(20)),
            RunOutcome::QueueEmpty
        );
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn event_at_horizon_still_fires() {
        let mut sim = Simulation::new(4);
        let hits: std::rc::Rc<std::cell::RefCell<u32>> = Default::default();
        let h = hits.clone();
        let a = sim.add_actor(FnActor(move |_m: Payload, _c: &mut Context| {
            *h.borrow_mut() += 1;
        }));
        sim.schedule(SimDuration::from_secs(5), a, Box::new(()));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn messages_to_retired_actor_are_dropped() {
        let mut sim = Simulation::new(5);
        let victim = sim.add_actor(crate::actor::NullActor);
        let killer = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            ctx.retire(victim);
        }));
        sim.schedule(SimDuration::from_secs(1), killer, Box::new(()));
        sim.schedule(SimDuration::from_secs(2), victim, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(sim.stats().events_processed, 1);
        assert_eq!(sim.stats().events_dropped, 1);
    }

    #[test]
    fn spawn_mid_run_receives_messages() {
        struct Parent;
        impl Actor for Parent {
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                let child = ctx.spawn(FnActor(|msg: Payload, ctx: &mut Context| {
                    let n = msg.downcast::<u32>().unwrap();
                    assert_eq!(*n, 42);
                    // Store proof in a service.
                    *ctx.service_mut::<u32>() += 1;
                }));
                ctx.send_in(SimDuration::from_secs(1), child, 42u32);
            }
        }
        let mut sim = Simulation::new(6);
        sim.add_service(0u32);
        let p = sim.add_actor(Parent);
        sim.schedule(SimDuration::from_secs(1), p, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(*sim.service::<u32>().unwrap(), 1);
    }

    #[test]
    fn with_service_allows_scheduling_inside() {
        struct Net {
            delivered: u32,
        }
        let mut sim = Simulation::new(7);
        sim.add_service(Net { delivered: 0 });
        let sink = sim.add_actor(FnActor(|_m: Payload, ctx: &mut Context| {
            ctx.with_service::<Net, _>(|net, _| net.delivered += 1);
        }));
        let src = sim.add_actor(FnActor(move |_m: Payload, ctx: &mut Context| {
            ctx.with_service::<Net, _>(|_net, inner| {
                inner.send_in(SimDuration::from_millis(3), sink, ());
            });
        }));
        sim.schedule(SimDuration::ZERO, src, Box::new(()));
        sim.run_to_completion(10);
        assert_eq!(sim.service::<Net>().unwrap().delivered, 1);
    }

    #[test]
    fn run_to_completion_event_limit() {
        struct Forever;
        impl Actor for Forever {
            fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(8);
        let a = sim.add_actor(Forever);
        sim.schedule(SimDuration::ZERO, a, Box::new(()));
        assert_eq!(sim.run_to_completion(50), RunOutcome::EventLimit);
    }

    #[test]
    fn dispatch_counters_track_hot_actors() {
        let mut sim = Simulation::new(12);
        let quiet = sim.add_actor(crate::actor::NullActor);
        let busy = sim.add_actor(crate::actor::NullActor);
        sim.schedule(SimDuration::from_secs(1), quiet, Box::new(()));
        for i in 0..5u64 {
            sim.schedule(SimDuration::from_secs(i + 1), busy, Box::new(()));
        }
        sim.run_to_completion(100);
        assert_eq!(sim.dispatch_count(quiet), 1);
        assert_eq!(sim.dispatch_count(busy), 5);
        let top = sim.busiest_actors(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, busy);
        assert_eq!(top[0].2, 5);
        assert_eq!(sim.dispatch_count(ActorId::from_index(99)), 0);
    }

    #[test]
    fn stats_type_counts_sum_to_scheduled_total() {
        #[derive(Debug)]
        struct Ping;
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::from_secs(1), Tick(0));
            }
            fn handle(&mut self, msg: Payload, ctx: &mut Context<'_>) {
                if msg.downcast_ref::<Tick>().is_some() {
                    let me = ctx.self_id();
                    ctx.send_now(me, Ping);
                }
            }
        }
        let mut sim = Simulation::new(42);
        let e = sim.add_actor(Echo);
        let ghost = ActorId::from_index(77);
        sim.schedule(SimDuration::from_secs(2), ghost, Box::new(()));
        sim.schedule(SimDuration::from_secs(3), e, Box::new(Tick(9)));
        sim.run_to_completion(100);

        let stats = sim.stats();
        let by_type_scheduled: u64 = stats.by_type.iter().map(|t| t.scheduled).sum();
        let by_type_executed: u64 = stats.by_type.iter().map(|t| t.executed).sum();
        let by_type_dropped: u64 = stats.by_type.iter().map(|t| t.dropped).sum();
        assert_eq!(by_type_scheduled, stats.scheduled_total);
        assert_eq!(by_type_executed, stats.events_processed);
        assert_eq!(by_type_dropped, stats.events_dropped);
        assert_eq!(
            stats.timer_scheduled + stats.message_scheduled,
            stats.scheduled_total
        );
        // One timer from on_start; the sim.schedule / send_now paths are
        // messages.
        assert_eq!(stats.timer_scheduled, 1);
        assert_eq!(stats.events_dropped, 1);
        assert!(stats.peak_queue_depth >= 1);
        assert!(!stats.depth_samples.is_empty());
        // Typed sends carry their short type names; raw schedule() is
        // <untyped>.
        assert!(stats.by_type.iter().any(|t| t.name == "Ping"));
        assert!(stats.by_type.iter().any(|t| t.name == "Tick"));
        assert!(stats.by_type.iter().any(|t| t.name == "<untyped>"));
    }

    #[test]
    fn hotpath_timing_is_gated_and_counts_dispatches() {
        let mut sim = Simulation::new(13);
        assert_eq!(sim.hotpath(), None);
        sim.enable_hotpath_timing();
        let a = sim.add_actor(crate::actor::NullActor);
        for i in 0..4u64 {
            sim.schedule(SimDuration::from_secs(i), a, Box::new(()));
        }
        sim.run_to_completion(100);
        let hp = sim.hotpath().unwrap();
        assert_eq!(hp.dispatch.count, 4);
        assert_eq!(hp.queue_push.count, 4);
        assert_eq!(hp.queue_pop.count, 4);
    }

    #[test]
    fn identical_seeds_identical_histories() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Simulation::new(seed);
            let trace: std::rc::Rc<std::cell::RefCell<Vec<u64>>> = Default::default();
            let t2 = trace.clone();
            struct Jitter {
                n: u32,
                trace: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
            }
            impl Actor for Jitter {
                fn on_start(&mut self, ctx: &mut Context<'_>) {
                    let d = ctx.rng().duration_between(
                        SimDuration::from_millis(1),
                        SimDuration::from_millis(100),
                    );
                    ctx.timer(d, ());
                }
                fn handle(&mut self, _msg: Payload, ctx: &mut Context<'_>) {
                    self.trace.borrow_mut().push(ctx.now().as_micros());
                    if self.n > 0 {
                        self.n -= 1;
                        let d = ctx.rng().exp_duration(SimDuration::from_millis(10));
                        ctx.timer(d, ());
                    }
                }
            }
            sim.add_actor(Jitter { n: 20, trace: t2 });
            sim.run_to_completion(1000);
            let v = trace.borrow().clone();
            v
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }
}
